#!/usr/bin/env python
"""HAN on GPU machines: the paper's future work, running.

"We also plan to add a new submodule to support intra-node GPU
collective operations and combine it with the existing inter-node
submodules to adapt HAN to GPU-based machines."

This example allreduces AlexNet-sized gradients on a DGX-style cluster
(one rank per GPU) three ways:

1. HAN with the `gpu` submodule -- NVLink chunk-parallel reduction on
   the node, PCIe staging only at the leaders, pipelined ir+ib across
   nodes;
2. HAN with the host `solo` submodule -- gradients staged to host first;
3. the flat default (tuned ring over host memory).

Run:  python examples/gpu_training.py
"""

from repro.apps.horovod import ALEXNET_LAYER_BYTES, fuse_buckets
from repro.core import HanConfig, HanModule
from repro.hardware import gpu_cluster
from repro.modules import TunedModule
from repro.mpi import MPIRuntime

MiB = 1024 * 1024


def time_allreduces(machine, collective):
    buckets = fuse_buckets(ALEXNET_LAYER_BYTES)
    runtime = MPIRuntime(machine)

    def prog(comm):
        for bucket in buckets:
            yield from collective(comm, bucket)

    runtime.run(prog)
    return runtime.engine.now


def main():
    machine = gpu_cluster(num_nodes=4, ppn=4)
    total = sum(ALEXNET_LAYER_BYTES)
    print(f"machine: {machine.num_nodes} nodes x {machine.ppn} GPUs "
          f"(NVLink {machine.node.nvlink_bw / 1e9:.0f} GB/s, "
          f"PCIe {machine.node.pcie_bw / 1e9:.0f} GB/s, "
          f"NIC {machine.nic.bw / 1e9:.1f} GB/s)")
    print(f"gradients: {total / 1e6:.0f} MB "
          f"({len(fuse_buckets(ALEXNET_LAYER_BYTES))} fusion buckets)\n")

    han_gpu = HanModule(config=HanConfig(
        fs=4 * MiB, imod="adapt", smod="gpu", ibalg="chain",
        iralg="chain", ibs=1 * MiB, irs=1 * MiB,
    ))
    han_host = HanModule(config=HanConfig(
        fs=4 * MiB, imod="adapt", smod="solo", ibalg="chain",
        iralg="chain", ibs=1 * MiB, irs=1 * MiB,
    ))
    tuned = TunedModule()

    variants = [
        ("HAN + gpu submodule", lambda c, n: han_gpu.allreduce(c, n)),
        ("HAN + solo (host)  ", lambda c, n: han_host.allreduce(c, n)),
        ("default tuned ring ", lambda c, n: tuned.allreduce(c, n)),
    ]
    times = {}
    for name, coll in variants:
        times[name] = time_allreduces(machine, coll)
    base = times["HAN + gpu submodule"]
    for name, t in times.items():
        print(f"{name}: {t * 1e3:8.2f} ms   ({t / base:.2f}x vs HAN+gpu)")
    print("\nThe GPU submodule keeps the node-level reduction on NVLink "
          "and crosses PCIe once per node -- the hierarchy argument of "
          "the paper, one level lower.")


if __name__ == "__main__":
    main()
