#!/usr/bin/env python
"""Fault injection walkthrough: a dead link and HAN's degraded mode.

Simulates a 5-node ring (1D torus) cluster whose link between nodes 2
and 3 dies, and shows the three layers of the fault subsystem working
together:

1. a :class:`~repro.faults.LinkFlap` window stalls an allreduce
   mid-flight and lets it resume — the fluid network re-converges at
   both edges of the outage;
2. a *permanent* kill wedges every hierarchical schedule crossing the
   link, so :class:`~repro.core.HanModule` with ``degraded_timeout``
   probes the inter-node fabric, detects the dead link and falls back
   to a flat star schedule routed around it (watch the task timeline);
3. seeded :class:`~repro.faults.OsNoise` makes run-to-run variability
   reproducible: same seed, same timings — different trial, different
   noise.

Run:  python examples/faulty_cluster.py
"""

import dataclasses

import numpy as np

from repro.core.han import HanModule
from repro.faults import FaultPlan, FaultyMachineSpec, LinkFlap, OsNoise
from repro.hardware import small_cluster
from repro.mpi import MPIRuntime
from repro.sim import Tracer

KiB = 1024


def ring5(ppn=2):
    """5 nodes on a 1D torus: node i links only to its ring neighbors."""
    return dataclasses.replace(
        small_cluster(num_nodes=5, ppn=ppn),
        topology="torus", topo_params={"dims": (5,)},
    )


def allreduce_prog(han, nbytes, tracer=None):
    def prog(comm):
        me = f"rank{comm.rank}"
        payload = np.full(int(nbytes // 8), float(comm.rank + 1))
        if tracer:
            tracer.record(me, "allreduce:start")
        out = yield from han.allreduce(comm, nbytes, payload=payload)
        if tracer:
            tracer.record(me, "allreduce:end")
        return comm.now, float(out[0])
    return prog


def main():
    base = ring5()
    expect = sum(range(1, base.num_ranks + 1))

    # -- 1. a transient outage: stall and resume --------------------------
    print("1. transient outage (links 2<->3 dead for [0.2ms, 5ms))")
    healthy = MPIRuntime(base)
    t_healthy = max(t for t, _ in healthy.run(allreduce_prog(HanModule(), 256 * KiB)))
    flap = FaultPlan().add(LinkFlap(("link", 2, 3), start=0.2e-3, end=5e-3))
    rt = MPIRuntime(FaultyMachineSpec.wrap(base, flap))
    res = rt.run(allreduce_prog(HanModule(), 256 * KiB))
    t_flap = max(t for t, _ in res)
    assert all(v == expect for _, v in res)
    print(f"   healthy: {t_healthy * 1e3:7.3f} ms")
    print(f"   flapped: {t_flap * 1e3:7.3f} ms  "
          "(stalled across the window, then resumed -- still correct)\n")

    # -- 2. a permanent kill: degraded-mode fallback ----------------------
    print("2. permanent kill + degraded mode (probe timeout 2 ms)")
    kill = FaultPlan().add(LinkFlap(("link", 2, 3)))
    rt = MPIRuntime(FaultyMachineSpec.wrap(base, kill))
    tracer = Tracer(rt.engine)
    han = HanModule(degraded_timeout=2e-3)
    res = rt.run(allreduce_prog(han, 256 * KiB, tracer))
    assert all(v == expect for _, v in res)
    print(f"   completed in {max(t for t, _ in res) * 1e3:.3f} ms via the "
          "flat star fallback (sum still correct)")
    print("   task timeline (tail):")
    for line in tracer.to_text().splitlines()[-6:]:
        print("   " + line)
    spans = tracer.spans("rank0", "allreduce:start", "allreduce:end")
    print(f"   rank0 allreduce span: {spans[0][0] * 1e3:.3f} -> "
          f"{spans[0][1] * 1e3:.3f} ms "
          "(the first ~2 ms is the probe detecting the dead link)\n")

    # -- 3. seeded noise: reproducible variability ------------------------
    print("3. seeded OS noise (amplitude 0.3)")
    times = {}
    for label, trial in (("seed 7 / trial 0", 0), ("seed 7 / trial 0 again", 0),
                         ("seed 7 / trial 1", 1)):
        noisy = FaultPlan(seed=7, trial=trial).add(OsNoise(amplitude=0.3))
        rt = MPIRuntime(FaultyMachineSpec.wrap(base, noisy))
        res = rt.run(allreduce_prog(HanModule(), 256 * KiB))
        times[label] = max(t for t, _ in res)
        print(f"   {label:24s} {times[label] * 1e3:7.3f} ms")
    assert times["seed 7 / trial 0"] == times["seed 7 / trial 0 again"]
    assert times["seed 7 / trial 0"] != times["seed 7 / trial 1"]
    print("   same (seed, trial) reproduces exactly; a new trial is a "
          "fresh noise realization")


if __name__ == "__main__":
    main()
