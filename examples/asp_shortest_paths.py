#!/usr/bin/env python
"""ASP: all-pairs shortest paths with a broadcast-heavy MPI application.

Reproduces the paper's first application study (Table III) at laptop
scale: a parallel Floyd-Warshall where every iteration broadcasts one
matrix row.  Shows both modes of the app:

- correctness: a small real matrix solved distributedly and checked
  against a sequential reference,
- performance: a big synthetic instance timed under HAN vs the default
  Open MPI and Intel MPI models.

Run:  python examples/asp_shortest_paths.py
"""

import numpy as np

from repro.apps import asp_reference, asp_run, asp_verify, calibrated_flops
from repro.comparators import OpenMPIDefault, OpenMPIHan, library_by_name
from repro.hardware import small_cluster


def main():
    machine = small_cluster(num_nodes=4, ppn=4)
    print(f"machine: {machine.num_nodes} nodes x {machine.ppn} ppn")

    # --- correctness on a real matrix ------------------------------------
    rng = np.random.default_rng(7)
    n = 24
    weights = rng.uniform(1, 50, size=(n, n))
    np.fill_diagonal(weights, 0.0)
    got = asp_verify(machine, OpenMPIHan(), weights)
    ref = asp_reference(weights)
    assert np.allclose(got, ref)
    print(f"distributed ASP on a {n}x{n} matrix matches the sequential "
          "reference on every entry")

    # --- Table III-style comparison --------------------------------------
    n_big = 200_000  # 800 KB rows -> large-message broadcasts
    han = OpenMPIHan()
    libs = [han, library_by_name("intelmpi"), library_by_name("openmpi")]
    # calibrate the compute/comm balance to the paper's (HAN at ~46% comm)
    flops = calibrated_flops(machine, han, n_big)
    print(f"\nASP timing, {n_big:,}-row matrix, first {machine.num_ranks} "
          "iterations (every rank roots once):")
    results = {lib.name: asp_run(machine, lib, n_vertices=n_big, flops=flops)
               for lib in libs}
    han_total = results["han"].total_time
    for name, res in results.items():
        print(f"  {name:10s} total {res.total_time * 1e3:8.1f} ms  "
              f"comm {res.comm_time * 1e3:8.1f} ms  "
              f"ratio {res.comm_ratio * 100:5.1f}%  "
              f"HAN speedup {res.total_time / han_total:.2f}x")
    print("\npaper reference (1536 ranks): comm ratio 46.41% (HAN) vs "
          "50.24% (Intel) vs 81.77% (Open MPI); speedups 1.08x / 2.43x")


if __name__ == "__main__":
    main()
