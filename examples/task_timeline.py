#!/usr/bin/env python
"""Visualize HAN's task schedule — the living version of paper Figs 1/5.

Runs a pipelined hierarchical broadcast with tracing enabled and prints
an ASCII Gantt chart of the per-rank tasks: node leaders execute
``ib(0), sbib(1..u-1), sb(u-1)`` while other ranks run ``sb(i)`` streams,
with the inter-node broadcasts overlapping the intra-node ones.

Run:  python examples/task_timeline.py
"""

from repro.core import HanConfig
from repro.core.han import han_segments
from repro.core.subcomms import build_hierarchy
from repro.hardware import small_cluster
from repro.modules import make_module
from repro.mpi import MPIRuntime
from repro.sim import Tracer

MiB = 1024 * 1024
CFG = HanConfig(fs=1 * MiB, imod="adapt", smod="solo",
                ibalg="chain", iralg="chain", ibs=512 * 1024)
NBYTES = 4 * MiB


def main():
    machine = small_cluster(num_nodes=3, ppn=3)
    runtime = MPIRuntime(machine)
    tracer = Tracer(runtime.engine)

    def prog(comm):
        hier = yield from build_hierarchy(comm)
        imod, smod = make_module(CFG.imod), make_module(CFG.smod)
        u, seg_bytes, _ = han_segments(NBYTES, CFG.fs, None)
        low, up = hier.low, hier.up
        me = f"rank{comm.rank}"
        if hier.local_rank == 0:
            tracer.record(me, "ib:start")
            req = imod.ibcast(up, seg_bytes[0], root=0,
                              algorithm=CFG.ibalg, segsize=CFG.ibs)
            yield from up.wait(req)
            tracer.record(me, "ib:end")
            for i in range(1, u):
                tracer.record(me, "sbib:start")
                req = imod.ibcast(up, seg_bytes[i], root=0,
                                  algorithm=CFG.ibalg, segsize=CFG.ibs)
                yield from smod.bcast(low, seg_bytes[i - 1], root=0)
                yield from up.wait(req)
                tracer.record(me, "sbib:end")
            tracer.record(me, "sb:start")
            yield from smod.bcast(low, seg_bytes[u - 1], root=0)
            tracer.record(me, "sb:end")
        else:
            for i in range(u):
                tracer.record(me, "sb:start")
                yield from smod.bcast(low, seg_bytes[i], root=0)
                tracer.record(me, "sb:end")

    runtime.run(prog)
    total = runtime.engine.now
    width = 72
    print(f"HAN bcast of {NBYTES >> 20} MiB, fs={CFG.fs >> 20} MiB "
          f"({han_segments(NBYTES, CFG.fs, None)[0]} segments), "
          f"{machine.num_nodes} nodes x {machine.ppn} ppn -- "
          f"total {total * 1e3:.3f} ms\n")
    glyph = {"ib": "I", "sbib": "B", "sb": "s"}
    for rank in range(machine.num_ranks):
        me = f"rank{rank}"
        line = [" "] * width
        for task, g in glyph.items():
            for b, e in tracer.spans(me, f"{task}:start", f"{task}:end"):
                lo = int(b / total * (width - 1))
                hi = max(lo + 1, int(e / total * (width - 1)))
                for x in range(lo, min(hi, width)):
                    line[x] = g
        role = "leader" if rank % machine.ppn == 0 else "      "
        print(f"rank {rank:2d} {role} |{''.join(line)}|")
    print("\nI = ib(0)   B = sbib(i) (inter+intra overlapped)   s = sb(i)")
    print("Leaders stream sbib tasks; other ranks' sb(i) wait on each "
          "segment -- the schedule of paper Fig 1.")


if __name__ == "__main__":
    main()
