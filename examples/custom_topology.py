#!/usr/bin/env python
"""Build a custom machine and study how topology shapes collectives.

HAN's pitch (paper section I-A) is adapting to diverse interconnects --
hypercube, torus, fat-tree, dragonfly.  This example builds the same
node hardware on four different fabrics and compares broadcast cost and
point-to-point behaviour across them, then shows HAN adapting via its
per-machine tuning.

Run:  python examples/custom_topology.py
"""

from repro.bench import imb_run, netpipe_run
from repro.comparators import OpenMPIDefault, OpenMPIHan
from repro.core import HanConfig
from repro.hardware import MachineSpec, NicSpec, NodeSpec
from repro.netsim.profiles import openmpi_profile

MiB = 1024 * 1024

NODE = NodeSpec(cores=8, mem_bw=60e9, copy_bw=6e9, reduce_bw=2.5e9,
                reduce_bw_avx=10e9)
NIC = NicSpec(bw=10e9, latency=1.2e-6)

FABRICS = {
    "crossbar": dict(topology="crossbar", topo_params={}),
    "fattree": dict(topology="fattree",
                    topo_params=dict(nodes_per_edge=4, num_core=2, taper=2.0)),
    "dragonfly": dict(topology="dragonfly",
                      topo_params=dict(nodes_per_router=2,
                                       routers_per_group=2,
                                       global_links_per_router=1)),
    "torus": dict(topology="torus", topo_params=dict(dims=(4, 4))),
    "hypercube": dict(topology="hypercube", topo_params={}),
}


def machine_on(fabric: str) -> MachineSpec:
    return MachineSpec(
        name=f"custom-{fabric}",
        num_nodes=16,
        ppn=4,
        node=NODE,
        nic=NIC,
        link_bw=12e9,
        **FABRICS[fabric],
    )


def main():
    print("same nodes, five fabrics -- 16 nodes x 4 ppn\n")
    print(f"{'fabric':>10} {'p2p 1MB (GB/s)':>15} "
          f"{'bcast 16MB tuned':>17} {'bcast 16MB HAN':>15}")
    han_cfg = HanConfig(fs=2 * MiB, imod="adapt", smod="solo",
                        ibalg="chain", ibs=512 * 1024)
    for fabric in FABRICS:
        machine = machine_on(fabric)
        np_res = netpipe_run(machine, openmpi_profile(), sizes=[1 * MiB])
        tuned = imb_run(machine, OpenMPIDefault(), "bcast", sizes=[16 * MiB])
        han = imb_run(machine, OpenMPIHan(config=han_cfg), "bcast",
                      sizes=[16 * MiB])
        print(f"{fabric:>10} {np_res.bandwidth[0] / 1e9:>15.2f} "
              f"{tuned.times[0] * 1e3:>15.3f}ms "
              f"{han.times[0] * 1e3:>13.3f}ms")
    print("\nHAN's hierarchical pipeline wins on every fabric; the gap "
          "varies with the fabric's bisection (taper, global links).")


if __name__ == "__main__":
    main()
