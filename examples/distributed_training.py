#!/usr/bin/env python
"""Distributed deep-learning training: the Horovod/AlexNet study (Fig 15).

Synchronous data-parallel SGD spends its communication budget in
MPI_Allreduce over fused gradient buffers.  This example sweeps the
process count and shows HAN's advantage growing with scale, as in the
paper's Fig 15.

Run:  python examples/distributed_training.py
"""

from repro.apps import ALEXNET_LAYER_BYTES, horovod_run
from repro.apps.horovod import fuse_buckets
from repro.comparators import OpenMPIDefault, OpenMPIHan, library_by_name
from repro.hardware import small_cluster


def main():
    total = sum(ALEXNET_LAYER_BYTES)
    buckets = fuse_buckets(ALEXNET_LAYER_BYTES)
    print(f"AlexNet gradients: {total / 1e6:.0f} MB across "
          f"{len(ALEXNET_LAYER_BYTES)} layers, fused into "
          f"{len(buckets)} allreduce buckets "
          f"({', '.join(f'{b / 1e6:.0f}MB' for b in buckets)})")

    print(f"\n{'ranks':>6} {'HAN':>10} {'Intel MPI':>10} {'Open MPI':>10} "
          f"{'vs Intel':>9} {'vs OMPI':>9}   (images/s)")
    for nodes in (2, 4, 8):
        machine = small_cluster(num_nodes=nodes, ppn=8)
        res = {}
        for lib in (OpenMPIHan(), library_by_name("intelmpi"),
                    OpenMPIDefault()):
            res[lib.name] = horovod_run(machine, lib, steps=1)
        han = res["han"].images_per_sec
        print(f"{machine.num_ranks:>6} {han:>10.0f} "
              f"{res['intelmpi'].images_per_sec:>10.0f} "
              f"{res['openmpi'].images_per_sec:>10.0f} "
              f"{100 * (han / res['intelmpi'].images_per_sec - 1):>+8.1f}% "
              f"{100 * (han / res['openmpi'].images_per_sec - 1):>+8.1f}%")

    print("\npaper reference at 1536 ranks: HAN +9.05% vs Intel MPI, "
          "+24.30% vs default Open MPI")


if __name__ == "__main__":
    main()
