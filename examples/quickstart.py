#!/usr/bin/env python
"""Quickstart: run HAN collectives on a simulated cluster.

This walks through the core API in five minutes:

1. describe a machine (nodes, NICs, interconnect),
2. start a simulated MPI runtime,
3. write an MPI program as a generator,
4. run HAN's hierarchical broadcast/allreduce with real data,
5. compare against the flat default (Open MPI `tuned`).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import HanConfig, HanModule
from repro.hardware import shaheen2
from repro.modules import TunedModule
from repro.mpi import MPIRuntime, SUM

MiB = 1024 * 1024


def main():
    # A slice of the paper's Cray XC40: 8 nodes x 8 processes (64 ranks).
    machine = shaheen2(num_nodes=8, ppn=8)
    print(f"machine: {machine.name}, {machine.num_nodes} nodes x "
          f"{machine.ppn} ppn = {machine.num_ranks} ranks")

    # --- 1. broadcast real data with HAN -------------------------------
    han = HanModule(
        config=HanConfig(fs=2 * MiB, imod="adapt", smod="solo",
                         ibalg="chain", ibs=512 * 1024)
    )
    data = np.arange(1 * MiB // 8, dtype=np.float64)

    def bcast_program(comm):
        payload = data if comm.rank == 0 else None
        out = yield from han.bcast(comm, nbytes=data.nbytes, root=0,
                                   payload=payload)
        # every rank returns the full array
        assert np.array_equal(out, data)
        return comm.now

    runtime = MPIRuntime(machine)
    results = runtime.run(bcast_program)
    print(f"\nHAN bcast of {data.nbytes >> 20}MiB finished at "
          f"{max(results) * 1e3:.3f} ms (all {machine.num_ranks} ranks "
          "verified the payload)")

    # --- 2. allreduce: every rank contributes, every rank gets the sum --
    def allreduce_program(comm):
        mine = np.full(1024, float(comm.rank))
        out = yield from han.allreduce(comm, nbytes=mine.nbytes,
                                       payload=mine, op=SUM)
        expected = sum(range(comm.size))
        assert np.allclose(out, expected)
        return comm.now

    runtime = MPIRuntime(machine)
    results = runtime.run(allreduce_program)
    print(f"HAN allreduce verified on every rank "
          f"({max(results) * 1e6:.1f} us)")

    # --- 3. HAN vs the flat default ------------------------------------
    tuned = TunedModule()
    for nbytes in (64 * 1024, 4 * MiB, 16 * MiB):
        times = {}
        for name, module in (("HAN", han), ("tuned", tuned)):
            def prog(comm, mod=module, n=nbytes):
                yield from mod.bcast(comm, nbytes=n)

            rt = MPIRuntime(machine)
            rt.run(prog)
            times[name] = rt.engine.now
        ratio = times["tuned"] / times["HAN"]
        print(f"bcast {nbytes >> 10:6d} KiB:  HAN {times['HAN'] * 1e3:7.3f} ms"
              f"  tuned {times['tuned'] * 1e3:7.3f} ms  -> {ratio:.2f}x")

    print("\nNext steps: examples/autotune_cluster.py tunes HAN for your "
          "machine; examples/asp_shortest_paths.py runs a real application.")


if __name__ == "__main__":
    main()
