#!/usr/bin/env python
"""Autotune HAN for a cluster, save the lookup table, use it at runtime.

Demonstrates the paper's full tuning pipeline (section III-C):

1. define the search space (segment sizes x algorithms x submodules),
2. run the *task-based* tuning (benchmark tasks once, estimate every
   message size with the cost model of eqs. 3/4),
3. compare its cost and picks against the exhaustive search,
4. persist the lookup table and plug it into HanModule.

Run:  python examples/autotune_cluster.py
"""

import tempfile
from pathlib import Path

from repro.core import HanModule
from repro.hardware import small_cluster
from repro.mpi import MPIRuntime
from repro.tuning import Autotuner, LookupTable, SearchSpace, measure_collective

KiB, MiB = 1024, 1024 * 1024


def main():
    machine = small_cluster(num_nodes=4, ppn=8)
    space = SearchSpace(
        seg_sizes=(128 * KiB, 512 * KiB, 1 * MiB),
        messages=(64 * KiB, 1 * MiB, 8 * MiB),
        adapt_algorithms=("chain", "binary"),
        inner_segs=(None,),
    )
    print(f"search space: {space.size()} configurations, "
          f"{len(space.messages)} message sizes")

    tuner = Autotuner(machine, space=space, warm_iters=6)

    # --- task-based vs exhaustive ----------------------------------------
    task = tuner.tune(colls=("bcast",), method="task")
    exh = tuner.tune(colls=("bcast",), method="exhaustive")
    print(f"\ntask-based : {task.searches:3d} benchmark runs, "
          f"{task.tuning_cost:.3f} s simulated tuning time")
    print(f"exhaustive : {exh.searches:3d} benchmark runs, "
          f"{exh.tuning_cost:.3f} s simulated tuning time")
    print(f"-> task-based needs {100 * task.tuning_cost / exh.tuning_cost:.1f}%"
          " of the exhaustive cost (paper Fig 8: ~23%)")

    print("\nper-message picks (task-based vs exhaustive ground truth):")
    for m in space.messages:
        t_cfg = task.table.get("bcast", machine.num_nodes, machine.ppn, m)
        e_cfg, e_time = exh.best("bcast", m)
        t_time = measure_collective(machine, "bcast", m, t_cfg).time
        print(f"  {int(m) >> 10:6d} KiB: task picked [{t_cfg.describe()}] "
              f"{t_time * 1e3:.3f} ms vs optimum [{e_cfg.describe()}] "
              f"{e_time * 1e3:.3f} ms ({t_time / e_time:.2f}x)")

    # --- persist and reuse -----------------------------------------------
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "han_table.json"
        task.table.save(path)
        table = LookupTable.load(path)
        print(f"\nlookup table saved/restored: {len(table)} entries")

        han = HanModule(decision_fn=table.as_decision_fn())

        def prog(comm):
            # 3MB was never sampled; the table interpolates
            yield from han.bcast(comm, nbytes=3 * MiB)

        runtime = MPIRuntime(machine)
        runtime.run(prog)
        picked = table.decide(machine.num_nodes, machine.ppn, 3 * MiB, "bcast")
        print(f"runtime decision for unsampled 3MiB: {picked.describe()}")
        print(f"tuned 3MiB bcast: {runtime.engine.now * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
