"""Fig 15 bench: Horovod AlexNet throughput.

Paper: HAN trains fastest, 24.30% over default Open MPI and 9.05% over
Intel MPI at 1536 ranks, with gains growing as ranks increase.  The
growth trend needs paper-scale rank counts (the flat ring's 1/P chunks
collapse into the P2P dip and its 2(P-1) latency steps accumulate), so
this reduced-scale bench asserts the scale-robust part: HAN trains
fastest at every point, on the strength of a consistently cheaper
allreduce.
"""

from conftest import once

from repro.apps import horovod_run
from repro.comparators import IntelMPI, OpenMPIDefault, OpenMPIHan
from repro.experiments.common import tuned_decision
from repro.hardware import stampede2


def test_fig15_horovod_scaling(benchmark):
    geometries = [(2, 12), (4, 12), (8, 12)]

    def regen():
        points = []
        for nodes, ppn in geometries:
            machine = stampede2(num_nodes=nodes, ppn=ppn)
            decide = tuned_decision(machine, colls=("allreduce",))
            points.append(
                {
                    lib.name: horovod_run(machine, lib, steps=1)
                    for lib in (
                        OpenMPIHan(decision_fn=decide),
                        IntelMPI(),
                        OpenMPIDefault(),
                    )
                }
            )
        return points

    points = once(benchmark, regen)
    for pt in points:
        han = pt["han"]
        # HAN trains fastest at every size ...
        assert han.images_per_sec > pt["intelmpi"].images_per_sec
        assert han.images_per_sec > pt["openmpi"].images_per_sec
        # ... because its allreduce is decisively cheaper
        assert han.comm_time < pt["intelmpi"].comm_time
        assert han.comm_time < pt["openmpi"].comm_time * 0.9
