"""Sensitivity bench: noise flips 1-shot tuning, median-of-k restores it."""

from conftest import once

from repro.experiments import sensitivity


def test_sensitivity_variability(benchmark):
    out = once(benchmark, lambda: sensitivity.run(scale="small", save=False))
    summary = out["summary"]

    # amplitude 0 is bit-identical to the pristine platform: no method flips
    for coll_cells in out["colls"].values():
        for by_amp in coll_cells.values():
            cell = by_amp["0.0"]
            assert not cell["naive"]["flip"]
            assert not cell["robust"]["flip"]
            assert cell["naive"]["regret_pct"] == 0.0

    # under noise, 1-shot measurement crowns at least one wrong config...
    assert summary["naive_flips"] >= 1
    assert summary["naive_regret_pct"] > 0.0
    # ...and median-of-k with confidence-aware selection restores the
    # decisions (strictly fewer flips, strictly less regret)
    assert summary["robust_flips"] < summary["naive_flips"]
    assert summary["robust_regret_pct"] < summary["naive_regret_pct"]
