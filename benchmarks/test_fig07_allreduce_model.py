"""Fig 7 bench: allreduce cost model estimates vs measurements."""

from conftest import KiB, MiB, once

from repro.tuning import Autotuner, SearchSpace


def test_fig07_allreduce_model_validation(benchmark, shaheen_small):
    space = SearchSpace(
        seg_sizes=(512 * KiB, 1 * MiB),
        messages=(4 * MiB,),
        adapt_algorithms=("binary", "binomial"),
        inner_segs=(None,),
    )
    tuner = Autotuner(shaheen_small, space=space, warm_iters=6)

    rows = once(benchmark, lambda: tuner.validate_model("allreduce", 4 * MiB))
    assert len(rows) >= 6
    ok = sum(1 for _c, est, meas in rows if abs(est - meas) / meas < 0.30)
    assert ok >= 0.7 * len(rows)
    # prediction picks a configuration within 15% of the measured best
    best_est_cfg = min(rows, key=lambda r: r[1])[0]
    best_meas = min(r[2] for r in rows)
    picked = next(m for c, _e, m in rows if c == best_est_cfg)
    assert picked <= best_meas * 1.15
