"""Fig 10 bench: MPI_Bcast on Shaheen II -- HAN vs Open MPI vs Cray MPI."""

from conftest import KiB, MiB, once

from repro.bench import imb_run
from repro.comparators import CrayMPI, OpenMPIDefault

SMALL = [512, 8 * KiB, 64 * KiB, 128 * KiB]
LARGE = [1 * MiB, 8 * MiB, 32 * MiB]


def test_fig10_bcast_shaheen(benchmark, shaheen_small, han_shaheen):
    libs = [han_shaheen, OpenMPIDefault(), CrayMPI()]

    def regen():
        return {
            lib.name: imb_run(shaheen_small, lib, "bcast", SMALL + LARGE)
            for lib in libs
        }

    res = once(benchmark, regen)
    han, omp, cray = res["han"], res["openmpi"], res["craympi"]

    # HAN decisively beats default Open MPI on large messages
    sp_omp = han.speedup_over(omp)
    assert max(sp_omp[s] for s in LARGE) > 1.5
    # ... and is at least competitive on small ones
    assert max(sp_omp[s] for s in SMALL) > 1.0

    # Cray MPI wins on small messages (better P2P, Fig 11) ...
    sp_cray = han.speedup_over(cray)
    assert min(sp_cray[s] for s in SMALL[:2]) < 1.0
    # ... but HAN overtakes it on large ones (level overlap)
    assert max(sp_cray[s] for s in LARGE) > 1.0
