"""Table III bench: ASP communication ratios and speedups.

Robust subset of the paper's claims at reduced scale: the ordering
HAN <= Intel MPI < MVAPICH2 in both communication ratio and total time.
Default Open MPI is excluded from the ordering assertions: its flat
chain "wavefronts" across ASP iterations in a zero-noise simulator, an
idealisation real 1536-rank systems do not sustain (EXPERIMENTS.md).
"""

from conftest import once

from repro.apps import asp_run, calibrated_flops
from repro.comparators import IntelMPI, MVAPICH2, OpenMPIDefault


def test_table3_asp(benchmark, stampede_small, han_stampede):
    n = 1_000_000  # the paper's 1M rows = 4MB broadcasts
    libs = [han_stampede, IntelMPI(), MVAPICH2(), OpenMPIDefault()]

    def regen():
        # pin HAN to the paper's 46.41% comm ratio; everything else is
        # measured (see repro.apps.asp.calibrated_flops)
        flops = calibrated_flops(stampede_small, han_stampede, n)
        return {
            lib.name: asp_run(stampede_small, lib, n_vertices=n, flops=flops)
            for lib in libs
        }

    res = once(benchmark, regen)
    # paper ordering (HAN 46.41% < Intel 50.24% < MVAPICH2 69.29%)
    assert res["han"].comm_ratio < res["intelmpi"].comm_ratio
    assert res["intelmpi"].comm_ratio < res["mvapich2"].comm_ratio
    # total-time speedups (paper: 1.08x Intel, 1.80x MVAPICH2)
    assert res["intelmpi"].total_time > res["han"].total_time
    assert res["mvapich2"].total_time > res["han"].total_time * 1.1
    # HAN's own balance was calibrated to the paper's
    assert abs(res["han"].comm_ratio - 0.4641) < 0.05
