"""Fig 12 bench: MPI_Bcast on Stampede2 -- HAN vs Intel, MVAPICH2, OMPI."""

from conftest import KiB, MiB, once

from repro.bench import imb_run
from repro.comparators import IntelMPI, MVAPICH2, OpenMPIDefault

SIZES = [512, 8 * KiB, 64 * KiB, 1 * MiB, 8 * MiB, 32 * MiB]


def test_fig12_bcast_stampede(benchmark, stampede_small, han_stampede):
    libs = [han_stampede, IntelMPI(), MVAPICH2(), OpenMPIDefault()]

    def regen():
        return {
            lib.name: imb_run(stampede_small, lib, "bcast", SIZES)
            for lib in libs
        }

    res = once(benchmark, regen)
    han = res["han"]
    large = SIZES[3:]
    # paper: HAN outperforms every other library on large messages
    for rival in ("intelmpi", "mvapich2", "openmpi"):
        sp = han.speedup_over(res[rival])
        assert max(sp[s] for s in large) > 1.0, rival
    # MVAPICH2's flat trees are its weak spot: at the largest size its
    # gap vs HAN is the widest (paper: 3.83x vs 1.39x for Intel; the
    # default-OMPI chain suffers less at this reduced rank count than at
    # the paper's 1536 ranks, where pipeline fill dominates)
    biggest = SIZES[-1]
    gaps = {
        r: han.speedup_over(res[r])[biggest]
        for r in ("intelmpi", "mvapich2", "openmpi")
    }
    assert gaps["mvapich2"] == max(gaps.values())
    assert all(g > 1.0 for g in gaps.values())
