"""Fig 14 bench: MPI_Allreduce on Stampede2 -- HAN vs Intel, MVAPICH2,
OMPI.

Paper claims at 1536 ranks: HAN fastest 4..64MB; beyond that HAN and the
MVAPICH2 multi-leader allreduce tie, both significantly beating the
others.  At this bench's reduced geometry (36 ranks) the flat-ring
penalty that sinks default Open MPI at scale (1/P chunks land in the P2P
dip, 2(P-1) latency steps) is compressed, so the assertions here are the
scale-robust subset: HAN and MVAPICH2 within a band of each other, both
ahead of Intel MPI, and HAN ahead of default Open MPI through the
mid-range.
"""

from conftest import KiB, MiB, once

from repro.bench import imb_run
from repro.comparators import IntelMPI, MVAPICH2, OpenMPIDefault

SIZES = [4 * MiB, 16 * MiB, 64 * MiB]


def test_fig14_allreduce_stampede(benchmark, stampede_small, han_stampede):
    libs = [han_stampede, IntelMPI(), MVAPICH2(), OpenMPIDefault()]

    def regen():
        return {
            lib.name: imb_run(stampede_small, lib, "allreduce", SIZES)
            for lib in libs
        }

    res = once(benchmark, regen)
    han = res["han"]
    for s in SIZES:
        h = han.time_at(s)
        # HAN and the multi-leader MVAPICH2 are the two leaders, within
        # a band of each other (paper: HAN ahead 4..64MB, tie beyond)
        assert 0.70 < h / res["mvapich2"].time_at(s) < 1.35, s
        # both beat Intel MPI
        assert h < res["intelmpi"].time_at(s), s
        assert res["mvapich2"].time_at(s) < res["intelmpi"].time_at(s), s
    # HAN ahead of default Open MPI in the paper's headline band
    for s in (4 * MiB, 16 * MiB):
        assert han.time_at(s) < res["openmpi"].time_at(s), s
