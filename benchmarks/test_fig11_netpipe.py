"""Fig 11 bench: Netpipe P2P curves, Open MPI vs Cray MPI."""

from conftest import KiB, MiB, once

from repro.bench import netpipe_run
from repro.netsim.profiles import craympi_profile, openmpi_profile

SIZES = [512, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 16 * MiB]


def test_fig11_netpipe_curves(benchmark, shaheen_small):
    def regen():
        return (
            netpipe_run(shaheen_small, openmpi_profile(), SIZES),
            netpipe_run(shaheen_small, craympi_profile(), SIZES),
        )

    omp, cray = once(benchmark, regen)
    # Cray leads between 512B and 2MB, most in 16KB..512KB (the smaller
    # sizes are latency-diluted, so the bandwidth gap shows less there)
    for s, margin in ((16 * KiB, 1.25), (64 * KiB, 1.5), (256 * KiB, 1.5)):
        assert cray.bandwidth_at(s) > omp.bandwidth_at(s) * margin
    # both converge to the same peak for huge messages
    ratio = cray.bandwidth_at(16 * MiB) / omp.bandwidth_at(16 * MiB)
    assert 0.9 < ratio < 1.15
    # bandwidth rises monotonically-ish toward the peak
    assert omp.bandwidth[-1] == max(omp.bandwidth)
