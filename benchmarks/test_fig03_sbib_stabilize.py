"""Fig 3 bench: sbib(i) stabilizes after pipeline warm-up."""

from conftest import KiB, once

from repro.core.config import HanConfig
from repro.tuning import TaskBench

CONFIGS = [
    HanConfig(fs=64 * KiB, imod="libnbc", smod="sm"),
    HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="chain",
              iralg="chain"),
    HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="binary",
              iralg="binary"),
    HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="binomial",
              iralg="binomial"),
]


def test_fig03_sbib_series_stabilize(benchmark, shaheen_small):
    def regen():
        bench = TaskBench(shaheen_small, warm_iters=8)
        return [bench.bench_bcast_tasks(c, c.fs) for c in CONFIGS]

    all_costs = once(benchmark, regen)
    for costs in all_costs:
        series = costs.sbib_series
        # the last iterations vary by < 25% of their mean, per leader
        tail = series[:, -3:]
        spread = tail.max(axis=1) - tail.min(axis=1)
        assert (spread <= 0.25 * tail.mean(axis=1) + 1e-12).all()
        # the stabilized estimate sits inside the observed tail band
        assert (costs.sbib_stable <= tail.max(axis=1) + 1e-12).all()
        assert (costs.sbib_stable >= tail.min(axis=1) - 1e-12).all()
