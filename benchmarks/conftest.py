"""Shared fixtures for the per-figure benchmark suite.

Every module regenerates one paper artifact at a reduced geometry and
asserts the paper's qualitative claims (who wins, where crossovers sit).
Simulations are deterministic, so benchmarks run a single round.
"""

from __future__ import annotations

import pytest

from repro.hardware import shaheen2, stampede2

KiB = 1024
MiB = 1024 * 1024


def pytest_collection_modifyitems(config, items):
    """The whole per-figure suite is minutes-long: mark it slow so
    ``pytest -m 'not slow'`` (and tier-1 runs that include this
    directory explicitly) can skip it wholesale."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def shaheen_small():
    """Reduced Shaheen II: 6 nodes x 6 ppn (paper: 128 x 32)."""
    return shaheen2(num_nodes=6, ppn=6)


@pytest.fixture(scope="session")
def stampede_small():
    """Reduced Stampede2: 6 nodes x 6 ppn (paper: 32 x 48)."""
    return stampede2(num_nodes=6, ppn=6)


@pytest.fixture(scope="session")
def han_shaheen(shaheen_small):
    """HAN autotuned (task method) for the reduced Shaheen II."""
    from repro.comparators import OpenMPIHan
    from repro.experiments.common import tuned_decision

    decide = tuned_decision(shaheen_small, colls=("bcast", "allreduce"))
    return OpenMPIHan(decision_fn=decide)


@pytest.fixture(scope="session")
def han_stampede(stampede_small):
    """HAN autotuned (task method) for the reduced Stampede2."""
    from repro.comparators import OpenMPIHan
    from repro.experiments.common import tuned_decision

    decide = tuned_decision(stampede_small, colls=("bcast", "allreduce"))
    return OpenMPIHan(decision_fn=decide)


def once(benchmark, fn):
    """Run a deterministic simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
