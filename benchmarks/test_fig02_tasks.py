"""Fig 2 bench: task costs (ib, sb, concurrent, delayed sbib)."""

from conftest import KiB, once

from repro.core.config import HanConfig
from repro.tuning import TaskBench


def test_fig02_task_costs(benchmark, shaheen_small):
    cfg = HanConfig(fs=512 * KiB, imod="adapt", smod="sm",
                    ibalg="binary", iralg="binary")

    def regen():
        bench = TaskBench(shaheen_small, warm_iters=6)
        return bench.bench_bcast_tasks(cfg, 512 * KiB)

    costs = once(benchmark, regen)
    ib, sb = costs.ib0.max(), costs.sb0.max()
    conc = costs.concurrent.max()

    # paper claim 1: leaders finish ib(0) at different times
    assert costs.ib0.max() > costs.ib0.min()
    # paper claim 2: overlap significant but not perfect
    assert max(ib, sb) * 0.999 <= conc <= (ib + sb) * 1.001
    assert conc > max(ib, sb) * 1.01  # measurably imperfect at 512KB
    # paper claim 3: delayed sbib is a real task cost, >= sb
    assert costs.sbib_stable.max() >= sb * 0.9
