"""Fig 8 bench: tuning-time reduction of the task-based method."""

from conftest import KiB, MiB, once

from repro.tuning import Autotuner, MeasurementCache, SearchSpace


def test_fig08_tuning_cost_ordering(benchmark, shaheen_small):
    space = SearchSpace(
        seg_sizes=(256 * KiB, 512 * KiB, 1 * MiB),
        messages=[2.0 ** k for k in range(14, 24)],  # 16KB..8MB
        adapt_algorithms=("chain", "binary"),
        inner_segs=(None,),
    )
    # the heuristic methods re-measure subsets of the plain sweeps, so a
    # shared in-memory cache collapses that rework without touching the
    # tuning-cost accounting (hits replay their recorded sim_cost)
    cache = MeasurementCache()
    tuner = Autotuner(shaheen_small, space=space, warm_iters=6, cache=cache)

    def regen():
        return {
            m: tuner.tune(colls=("bcast",), method=m)
            for m in ("exhaustive", "exhaustive+h", "task", "task+h")
        }

    reports = once(benchmark, regen)
    assert cache.stats()["hits"] > 0  # the pruned sweeps reused measurements
    exh = reports["exhaustive"].tuning_cost
    # paper: heuristics 26.8%, task-based 23%, combined 4.3%
    assert reports["task"].tuning_cost < exh * 0.6
    assert reports["exhaustive+h"].tuning_cost < exh
    assert reports["task+h"].tuning_cost < reports["task"].tuning_cost
    assert reports["task+h"].tuning_cost == min(
        r.tuning_cost for r in reports.values()
    )
    # the M axis collapse: task searches don't scale with |messages|
    assert reports["task"].searches < reports["exhaustive"].searches
