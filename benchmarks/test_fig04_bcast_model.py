"""Fig 4 bench: bcast cost model estimates vs measurements."""

from conftest import KiB, MiB, once

from repro.tuning import Autotuner, SearchSpace, measure_collective


def test_fig04_bcast_model_validation(benchmark, shaheen_small):
    space = SearchSpace(
        seg_sizes=(256 * KiB, 512 * KiB, 1 * MiB),
        messages=(4 * MiB,),
        adapt_algorithms=("chain", "binary", "binomial"),
        inner_segs=(None,),
    )
    tuner = Autotuner(shaheen_small, space=space, warm_iters=6)

    rows = once(benchmark, lambda: tuner.validate_model("bcast", 4 * MiB))
    assert len(rows) >= 8
    # estimates track measurements (paper: "accurate in most cases")
    ok = sum(1 for _c, est, meas in rows if abs(est - meas) / meas < 0.25)
    assert ok >= 0.8 * len(rows)
    # the predicted optimum is within 10% of the measured optimum
    best_est_cfg = min(rows, key=lambda r: r[1])[0]
    best_meas = min(r[2] for r in rows)
    picked = next(m for c, _e, m in rows if c == best_est_cfg)
    assert picked <= best_meas * 1.10
