"""Fig 6 bench: ib and ir overlap on opposite network directions."""

from conftest import KiB, once

from repro.core.config import HanConfig
from repro.tuning import TaskBench


def test_fig06_ib_ir_overlap(benchmark, shaheen_small):
    cfg = HanConfig(fs=512 * KiB, imod="adapt", smod="sm",
                    ibalg="binary", iralg="binary")

    def regen():
        bench = TaskBench(shaheen_small, warm_iters=4)
        return bench.bench_ib_ir_overlap(cfg, 512 * KiB)

    out = once(benchmark, regen)
    ib, ir, both = out["ib"].max(), out["ir"].max(), out["both"].max()
    # "strongly indicates a high degree of overlap": concurrent cost is
    # far below the serial sum, and close to the slower of the two
    assert both < (ib + ir) * 0.85
    assert both <= max(ib, ir) * 1.5
    assert both >= max(ib, ir) * 0.99
