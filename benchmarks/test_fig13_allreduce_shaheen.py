"""Fig 13 bench: MPI_Allreduce on Shaheen II -- HAN vs Open MPI vs Cray."""

from conftest import KiB, MiB, once

from repro.bench import imb_run
from repro.comparators import CrayMPI, OpenMPIDefault

SMALL = [512, 8 * KiB, 64 * KiB]
LARGE = [4 * MiB, 16 * MiB, 32 * MiB]


def test_fig13_allreduce_shaheen(benchmark, shaheen_small, han_shaheen):
    libs = [han_shaheen, OpenMPIDefault(), CrayMPI()]

    def regen():
        return {
            lib.name: imb_run(shaheen_small, lib, "allreduce", SMALL + LARGE)
            for lib in libs
        }

    res = once(benchmark, regen)
    han = res["han"]
    # improvement over default Open MPI at large sizes (the margin grows
    # with rank count; the paper's 4096-rank runs show more)
    sp_omp = han.speedup_over(res["openmpi"])
    assert max(sp_omp[s] for s in LARGE) > 1.05
    # vs Cray: behind on small messages (no AVX in SM/Libnbc, IV-A2) ...
    sp_cray = han.speedup_over(res["craympi"])
    assert min(sp_cray[s] for s in SMALL) < 1.0
    # ... with a crossover in the multi-MB range (paper: ~2MB, 1.12x)
    assert max(sp_cray[s] for s in LARGE) > 1.0
