"""Scale study: why autotuning must be per-geometry (paper section III-C).

Sweeps the node count at fixed ppn and shows (a) per-scale-tuned HAN
beats the default Open MPI everywhere, and (b) the *winning inter-node
algorithm changes with scale* -- the chain's pipeline wants many segments
per hop, so it loses to trees as the leader count grows.  This is the
mechanism behind Table I having `n` (number of nodes) as a tuning input.
"""

from conftest import MiB, once

from repro.bench import imb_run
from repro.comparators import OpenMPIDefault, OpenMPIHan
from repro.core import HanConfig
from repro.hardware import shaheen2

NODE_COUNTS = (4, 16, 32)
ALGS = ("chain", "binary")


def test_best_algorithm_shifts_with_scale(benchmark):
    def regen():
        rows = {}
        for nodes in NODE_COUNTS:
            machine = shaheen2(num_nodes=nodes, ppn=4)
            per_alg = {}
            for alg in ALGS:
                cfg = HanConfig(
                    fs=2 * MiB, imod="adapt", smod="solo",
                    ibalg=alg, iralg=alg, ibs=512 * 1024, irs=512 * 1024,
                )
                per_alg[alg] = imb_run(
                    machine, OpenMPIHan(config=cfg), "bcast", [16 * MiB]
                ).times[0]
            omp = imb_run(
                machine, OpenMPIDefault(), "bcast", [16 * MiB]
            ).times[0]
            rows[nodes] = (per_alg, omp)
        return rows

    rows = once(benchmark, regen)
    # (a) the per-scale best HAN config beats default Open MPI everywhere
    for nodes, (per_alg, omp) in rows.items():
        assert min(per_alg.values()) < omp, nodes
    # (b) chain wins at small node counts, the tree takes over at scale
    small_best = min(rows[NODE_COUNTS[0]][0], key=rows[NODE_COUNTS[0]][0].get)
    large_best = min(rows[NODE_COUNTS[-1]][0], key=rows[NODE_COUNTS[-1]][0].get)
    assert small_best == "chain"
    assert large_best == "binary"
