"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation removes one HAN/autotuner design element and shows it was
load-bearing -- the paper's implicit claims made explicit.
"""

import numpy as np
from conftest import KiB, MiB, once

from repro.core import HanConfig, HanModule
from repro.mpi import MPIRuntime
from repro.tuning import TaskBench, estimate_bcast, measure_collective


def _time(machine, han, coll, nbytes):
    return measure_collective(machine, coll, nbytes, han.config).time


class TestPipeliningAblation:
    """HAN segmentation on vs off (fs=None): the large-message win."""

    def test_pipelining_pays_off_large(self, benchmark, shaheen_small):
        base = HanConfig(fs=2 * MiB, imod="adapt", smod="solo",
                         ibalg="chain", iralg="chain", ibs=512 * KiB,
                         irs=512 * KiB)
        nbytes = 32 * MiB

        def regen():
            t_pipe = measure_collective(
                shaheen_small, "bcast", nbytes, base
            ).time
            t_mono = measure_collective(
                shaheen_small, "bcast", nbytes,
                base.with_(fs=None, ibs=None, irs=None),
            ).time
            return t_pipe, t_mono

        t_pipe, t_mono = once(benchmark, regen)
        assert t_pipe < t_mono * 0.85


class TestExplicitIrIbAblation:
    """Splitting the inter-node allreduce into ir+ib (paper III-B1) vs a
    single inter-node allreduce, on a one-rank-per-node layout where the
    difference is purely the inter-node schedule."""

    def test_split_ir_ib_beats_inter_allreduce(self, benchmark, shaheen_small):
        from repro.colls import allreduce_ring
        from repro.modules import AdaptModule

        machine = shaheen_small.scaled(ppn=1)
        nbytes = 32 * MiB
        cfg = HanConfig(fs=2 * MiB, imod="adapt", smod="solo",
                        ibalg="chain", iralg="chain", ibs=512 * KiB,
                        irs=512 * KiB)
        han = HanModule(config=cfg)

        def regen():
            rt = MPIRuntime(machine)

            def prog_han(comm):
                yield from han.allreduce(comm, nbytes)

            rt.run(prog_han)
            t_split = rt.engine.now

            rt2 = MPIRuntime(machine)

            def prog_ring(comm):
                yield from allreduce_ring(comm, nbytes)

            rt2.run(prog_ring)
            return t_split, rt2.engine.now

        t_split, t_ring = once(benchmark, regen)
        # the pipelined ir+ib is at least competitive with the classic
        # bandwidth-optimal ring at this scale
        assert t_split < t_ring * 1.4


class TestDelayedStartAblation:
    """Benchmarking sbib with the real ib(0) stagger vs assuming a
    simultaneous start (paper Fig 2, red vs green bars)."""

    def test_in_context_differs_from_naive(self, benchmark, shaheen_small):
        cfg = HanConfig(fs=512 * KiB, imod="adapt", smod="sm",
                        ibalg="chain", iralg="chain")

        def regen():
            bench = TaskBench(shaheen_small, warm_iters=6)
            costs = bench.bench_bcast_tasks(cfg, 512 * KiB)
            return costs

        costs = once(benchmark, regen)
        naive = costs.concurrent  # simultaneous-start measurement
        delayed = costs.sbib_stable  # in-context measurement
        # for the chain the stagger changes per-leader costs materially
        rel = np.abs(delayed - naive) / np.maximum(naive, 1e-12)
        assert rel.max() > 0.05


class TestStabilizedEstimateAblation:
    """Using sbib(s) * (u-1) instead of summing every sbib(i): the
    approximation the cost model rests on must be tight."""

    def test_stabilized_matches_full_sum(self, benchmark, shaheen_small):
        cfg = HanConfig(fs=512 * KiB, imod="adapt", smod="solo",
                        ibalg="binary", iralg="binary")

        def regen():
            bench = TaskBench(shaheen_small, warm_iters=8)
            return bench.bench_bcast_tasks(cfg, 512 * KiB)

        costs = once(benchmark, regen)
        k = costs.sbib_series.shape[1]
        full_sum = costs.sbib_series.sum(axis=1)
        approx = k * costs.sbib_stable
        rel = np.abs(full_sum - approx) / full_sum
        assert rel.max() < 0.10


class TestPerfectOverlapModelAblation:
    """Why prior models mispredict: assuming perfect overlap
    (sbib = max(ib, sb), as in [2, 21]) underestimates the measured task,
    while assuming no overlap (ib + sb) overestimates it."""

    def test_bounds_bracket_reality(self, benchmark, shaheen_small):
        # SM at a large segment: the bounce-buffer CPU copies contend
        # with ib progression, making the overlap measurably imperfect
        cfg = HanConfig(fs=2 * MiB, imod="adapt", smod="sm",
                        ibalg="binary", iralg="binary")

        def regen():
            bench = TaskBench(shaheen_small, warm_iters=6)
            return bench.bench_bcast_tasks(cfg, 2 * MiB)

        costs = once(benchmark, regen)
        ib, sb = costs.ib0.max(), costs.sb0.max()
        measured = costs.concurrent.max()
        assert measured > max(ib, sb) * 1.02  # perfect-overlap is wrong
        assert measured < (ib + sb) * 0.98  # no-overlap is wrong too


class TestHeuristicsAccuracyAblation:
    """Heuristics cut tuning cost but may miss the optimum (Fig 8 vs 9)."""

    def test_cost_vs_accuracy(self, benchmark, shaheen_small):
        from repro.tuning import Autotuner, SearchSpace

        space = SearchSpace(
            seg_sizes=(256 * KiB, 512 * KiB, 1 * MiB),
            messages=(1 * MiB, 8 * MiB),
            adapt_algorithms=("chain", "binary"),
            inner_segs=(None,),
        )
        tuner = Autotuner(shaheen_small, space=space, warm_iters=6)

        def regen():
            return (
                tuner.tune(colls=("bcast",), method="task"),
                tuner.tune(colls=("bcast",), method="task+h"),
            )

        task, task_h = once(benchmark, regen)
        assert task_h.tuning_cost < task.tuning_cost
        # the pruned method still lands within 30% of the unpruned pick
        n, p = shaheen_small.num_nodes, shaheen_small.ppn
        for m in (1 * MiB, 8 * MiB):
            t_full = measure_collective(
                shaheen_small, "bcast", m, task.table.get("bcast", n, p, m)
            ).time
            t_h = measure_collective(
                shaheen_small, "bcast", m, task_h.table.get("bcast", n, p, m)
            ).time
            assert t_h <= t_full * 1.30


class TestOnlineVsOffline:
    """The paper tunes offline because online tuning 'inevitably brings
    overhead' and converges at an uncertain time (section II-B).  Measure
    exactly that: an online (STAR-MPI-style) tuner pays for its bad
    candidates inside the application."""

    def test_online_pays_convergence_overhead(self, benchmark, shaheen_small):
        from repro.core import HanConfig, HanModule
        from repro.mpi import MPIRuntime
        from repro.tuning.online import OnlineTuner

        nbytes = 4 * MiB
        good = HanConfig(fs=1 * MiB, imod="adapt", smod="solo",
                         ibalg="chain", iralg="chain", ibs=512 * KiB,
                         irs=512 * KiB)
        bad = HanConfig(fs=128 * KiB, imod="libnbc", smod="sm")
        calls = 8

        def regen():
            online = OnlineTuner(candidates=[bad, good])

            def prog_online(comm):
                for _ in range(calls):
                    yield from online.bcast(comm, nbytes)

            rt = MPIRuntime(shaheen_small)
            rt.run(prog_online)
            t_online = rt.engine.now

            offline = HanModule(config=good)

            def prog_offline(comm):
                for _ in range(calls):
                    yield from offline.bcast(comm, nbytes)

            rt2 = MPIRuntime(shaheen_small)
            rt2.run(prog_offline)
            return t_online, rt2.engine.now, online

        t_online, t_offline, online = once(benchmark, regen)
        # the online run converged to the right config ...
        assert online.decision("bcast", nbytes) == good
        # ... but paid a measurable overhead getting there
        assert t_online > t_offline * 1.05
