"""Extension bench: three hardware levels (the paper's future work).

"In the future, we plan to ... explore approaches based on an increased
number of hardware levels."  The 3-level HAN (node / dragonfly-group /
machine) crosses the expensive global links once per group instead of
once per node; this bench quantifies the benefit on a grouped fabric.
"""

from conftest import KiB, MiB, once

from repro.core import HanConfig, HanModule, MultiLevelHanModule
from repro.hardware import MachineSpec, NicSpec, NodeSpec
from repro.mpi import MPIRuntime


def grouped_dragonfly():
    node = NodeSpec(cores=4, mem_bw=60e9, copy_bw=6e9, reduce_bw=2.5e9,
                    reduce_bw_avx=10e9)
    return MachineSpec(
        name="dragonfly24",
        num_nodes=24,
        ppn=4,
        node=node,
        nic=NicSpec(bw=10e9, latency=1.2e-6),
        topology="dragonfly",
        link_bw=12e9,
        topo_params=dict(
            nodes_per_router=2,
            routers_per_group=2,
            global_links_per_router=2,
        ),
    )


def test_three_levels_beat_two_on_grouped_fabric(benchmark):
    machine = grouped_dragonfly()
    cfg = HanConfig(fs=2 * MiB, imod="adapt", smod="solo",
                    ibalg="chain", iralg="chain", ibs=512 * KiB,
                    irs=512 * KiB)

    def regen():
        out = {}
        for name, mod in (
            ("han2", HanModule(config=cfg)),
            ("han3", MultiLevelHanModule(config=cfg)),
        ):
            rt = MPIRuntime(machine)

            def prog(comm, m=mod):
                yield from m.bcast(comm, nbytes=32 * MiB)

            rt.run(prog)
            out[name] = rt.engine.now
        return out

    times = once(benchmark, regen)
    assert times["han3"] < times["han2"]
