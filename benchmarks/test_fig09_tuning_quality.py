"""Fig 9 bench: quality of configurations picked by each tuning method."""

import numpy as np
from conftest import KiB, MiB, once

from repro.tuning import Autotuner, MeasurementCache, SearchSpace, measure_collective


def test_fig09_autotuned_quality(benchmark, shaheen_small):
    space = SearchSpace(
        seg_sizes=(256 * KiB, 512 * KiB, 1 * MiB),
        messages=(1 * MiB, 4 * MiB),
        adapt_algorithms=("chain", "binary"),
        inner_segs=(None,),
    )
    cache = MeasurementCache()
    tuner = Autotuner(shaheen_small, space=space, warm_iters=6, cache=cache)

    def regen():
        return (
            tuner.tune(colls=("bcast",), method="exhaustive"),
            tuner.tune(colls=("bcast",), method="task"),
        )

    exh, task = once(benchmark, regen)
    n, p = shaheen_small.num_nodes, shaheen_small.ppn
    for m in space.messages:
        times = np.array([t for _c, t in exh.candidates[("bcast", m)]])
        best = times.min()
        # configuration choice matters: median well above best
        assert np.median(times) > best * 1.05
        # the task-based pick performs within 25% of the true optimum
        picked = task.table.get("bcast", n, p, m)
        # the exhaustive sweep already timed this configuration, so the
        # cached lookup is free
        picked_time = measure_collective(
            shaheen_small, "bcast", m, picked, cache=cache
        ).time
        assert picked_time <= best * 1.25
