"""CI guard: tracing-disabled runs must stay within 2% of uninstrumented.

Every observability hook sits behind a single ``engine.obs is not None``
attribute test, so the only cost a tracing-disabled run can pay over the
pre-instrumentation simulator is that test.  This script makes the bound
checkable on any machine, without a pre-instrumentation checkout:

1. run the Fig 8 benchmark unit (``measure_collective`` on the tuning
   machine) with tracing disabled and time it;
2. count the hook crossings of the identical workload by attaching a
   recorder and counting every emission;
3. microbenchmark the per-crossing guard (`x.obs is not None`) and bound
   the disabled-path overhead as ``crossings * guard_cost / wallclock``;
4. independently verify the recorder never perturbs simulated time
   (bit-identical measurement with and without it).

Exit status is nonzero if the bound exceeds the budget or determinism
breaks.  Writes a JSON report for the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.config import HanConfig
from repro.hardware import shaheen2
from repro.obs import ObsRecorder
from repro.tuning.measure import _run_once

BUDGET = 0.02  # 2% of wall-clock

KiB, MiB = 1024, 1024 * 1024


def workload_points():
    """A slice of the Fig 8 exhaustive sweep: (machine, coll, m, cfg)."""
    machine = shaheen2(num_nodes=4, ppn=8)
    cfgs = [
        HanConfig(fs=128 * KiB),
        HanConfig(fs=512 * KiB, imod="adapt", ibalg="binary"),
        HanConfig(fs=1 * MiB, imod="adapt", ibalg="binomial"),
    ]
    for coll in ("bcast", "allreduce"):
        for m in (64.0 * KiB, 1.0 * MiB, 4.0 * MiB):
            for cfg in cfgs:
                yield machine, coll, m, cfg


def run_disabled() -> tuple[float, list]:
    t0 = time.perf_counter()
    results = [
        _run_once(machine, coll, m, cfg, 0, 1, None)
        for machine, coll, m, cfg in workload_points()
    ]
    return time.perf_counter() - t0, results


class CountingRecorder(ObsRecorder):
    """Counts every hook emission; each is one guarded crossing."""

    def __init__(self, engine):
        super().__init__(engine)
        self.crossings = 0

    def begin(self, *a, **kw):
        self.crossings += 1
        return super().begin(*a, **kw)

    def end(self, *a, **kw):
        self.crossings += 1
        return super().end(*a, **kw)

    def complete(self, *a, **kw):
        self.crossings += 1
        return super().complete(*a, **kw)

    def counter(self, *a, **kw):
        self.crossings += 1
        return super().counter(*a, **kw)

    def msg_begin(self, *a, **kw):
        self.crossings += 1
        return super().msg_begin(*a, **kw)

    def msg_send_done(self, *a, **kw):
        self.crossings += 1
        return super().msg_send_done(*a, **kw)

    def msg_arrived(self, *a, **kw):
        self.crossings += 1
        return super().msg_arrived(*a, **kw)

    def msg_recv_done(self, *a, **kw):
        self.crossings += 1
        return super().msg_recv_done(*a, **kw)


def count_crossings() -> tuple[int, list, float]:
    from repro.core.han import HanModule
    from repro.mpi.runtime import MPIRuntime

    crossings = 0
    results = []
    t0 = time.perf_counter()
    for machine, coll, m, cfg in workload_points():
        runtime = MPIRuntime(machine)
        han = HanModule(config=cfg)
        durations = {}

        def prog(comm, op=coll, nbytes=m):
            fn = getattr(han, op)
            yield from comm.barrier()
            start = comm.now
            if op in ("bcast", "reduce"):
                yield from fn(comm, nbytes, root=0)
            else:
                yield from fn(comm, nbytes)
            durations[comm.rank] = comm.now - start

        rec = CountingRecorder(runtime.engine)
        with rec:
            runtime.run(prog)
        crossings += rec.crossings
        results.append(
            (tuple(durations[r] for r in sorted(durations)),
             runtime.engine.now)
        )
    return crossings, results, time.perf_counter() - t0


def guard_cost() -> float:
    """Seconds per `obj.obs is not None` check (the whole disabled path)."""

    class Obj:
        obs = None

    obj = Obj()
    n = 2_000_000
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        hits = 0
        for _i in range(n):
            if obj.obs is not None:  # pragma: no cover - never taken
                hits += 1
        best = min(best, time.perf_counter() - t0)
    return best / n


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="", help="JSON report path")
    parser.add_argument("--budget", type=float, default=BUDGET)
    args = parser.parse_args(argv)

    wall_disabled, res_disabled = run_disabled()
    # second disabled run to warm caches fairly; keep the faster
    wall2, _ = run_disabled()
    wall_disabled = min(wall_disabled, wall2)
    crossings, res_attached, wall_attached = count_crossings()
    per_check = guard_cost()

    bound = crossings * per_check / wall_disabled
    deterministic = res_disabled == res_attached
    report = {
        "workload": "fig08 bench unit (measure sweep, 4x8 shaheen2)",
        "wallclock_disabled_s": wall_disabled,
        "wallclock_attached_s": wall_attached,
        "hook_crossings": crossings,
        "guard_cost_ns": per_check * 1e9,
        "disabled_overhead_bound": bound,
        "budget": args.budget,
        "attached_overhead": wall_attached / wall_disabled - 1.0,
        "deterministic": deterministic,
    }
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)

    ok = True
    if not deterministic:
        print("FAIL: recorder perturbed simulated results", file=sys.stderr)
        ok = False
    if bound > args.budget:
        print(
            f"FAIL: disabled-path overhead bound {bound:.4%} exceeds "
            f"{args.budget:.0%}",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"OK: disabled-path overhead bound {bound:.4%} "
            f"(budget {args.budget:.0%}); recorder attach is deterministic"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
