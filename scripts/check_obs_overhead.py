"""CI guard: observability overhead bounds, checked analytically.

Every observability hook sits behind a single ``engine.obs is not None``
attribute test, so the only cost a tracing-disabled run can pay over the
pre-instrumentation simulator is that test.  This script makes the bound
checkable on any machine, without a pre-instrumentation checkout:

1. run the Fig 8 benchmark unit (``measure_collective`` on the tuning
   machine) with tracing disabled and time it;
2. count the hook crossings of the identical workload by attaching a
   recorder and counting every emission;
3. microbenchmark the per-crossing guard (`x.obs is not None`) and bound
   the disabled-path overhead as ``crossings * guard_cost / wallclock``;
4. independently verify the recorder never perturbs simulated time
   (bit-identical measurement with and without it).

The metrics plane (``mode="metrics"``) gets the same analytic
treatment: run the workload once metrics-only, recover the exact number
of counter / gauge / histogram updates, microbenchmark the three inlined
update forms (each including the metric-cache dict probe the hook pays),
and bound the metrics-plane cost as ``sum(updates_i * cost_i) /
wallclock``.  Wall-clock ratios are deliberately NOT the enforced
quantity for either bound — on a pure-Python simulator they are
dominated by span/object bookkeeping and timer noise, while the analytic
product isolates exactly the code the budget is about.

Exit status is nonzero if either bound exceeds its budget or determinism
breaks (disabled, full, and metrics-mode runs must all produce
bit-identical simulated results).  Writes a JSON report for the CI
artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.config import HanConfig
from repro.hardware import shaheen2
from repro.obs import ObsRecorder
from repro.tuning.measure import _run_once

BUDGET = 0.02  # disabled path: 2% of wall-clock
METRICS_BUDGET = 0.05  # metrics-enabled path: 5% of wall-clock

KiB, MiB = 1024, 1024 * 1024


def workload_points():
    """A slice of the Fig 8 exhaustive sweep: (machine, coll, m, cfg)."""
    machine = shaheen2(num_nodes=4, ppn=8)
    cfgs = [
        HanConfig(fs=128 * KiB),
        HanConfig(fs=512 * KiB, imod="adapt", ibalg="binary"),
        HanConfig(fs=1 * MiB, imod="adapt", ibalg="binomial"),
    ]
    for coll in ("bcast", "allreduce"):
        for m in (64.0 * KiB, 1.0 * MiB, 4.0 * MiB):
            for cfg in cfgs:
                yield machine, coll, m, cfg


def run_disabled() -> tuple[float, list]:
    t0 = time.perf_counter()
    results = [
        _run_once(machine, coll, m, cfg, 0, 1, None)
        for machine, coll, m, cfg in workload_points()
    ]
    return time.perf_counter() - t0, results


class CountingRecorder(ObsRecorder):
    """Counts every hook emission; each is one guarded crossing."""

    def __init__(self, engine):
        super().__init__(engine)
        self.crossings = 0

    def begin(self, *a, **kw):
        self.crossings += 1
        return super().begin(*a, **kw)

    def end(self, *a, **kw):
        self.crossings += 1
        return super().end(*a, **kw)

    def complete(self, *a, **kw):
        self.crossings += 1
        return super().complete(*a, **kw)

    def counter(self, *a, **kw):
        self.crossings += 1
        return super().counter(*a, **kw)

    def msg_begin(self, *a, **kw):
        self.crossings += 1
        return super().msg_begin(*a, **kw)

    def msg_send_done(self, *a, **kw):
        self.crossings += 1
        return super().msg_send_done(*a, **kw)

    def msg_arrived(self, *a, **kw):
        self.crossings += 1
        return super().msg_arrived(*a, **kw)

    def msg_recv_done(self, *a, **kw):
        self.crossings += 1
        return super().msg_recv_done(*a, **kw)


class MetricsModeRecorder(ObsRecorder):
    """Metrics-only recorder that counts gauge samples — the one update
    stream not recoverable from the registry afterwards (dedup discards
    repeated values before they reach a gauge)."""

    def __init__(self, engine):
        super().__init__(engine, mode="metrics")
        self.gauge_samples = 0

    def counter(self, *a, **kw):
        self.gauge_samples += 1
        return super().counter(*a, **kw)


def run_attached(make_recorder) -> tuple[list, list, float]:
    """Run the workload with a recorder per point; return the recorders,
    the simulated results, and the wall-clock."""
    from repro.core.han import HanModule
    from repro.mpi.runtime import MPIRuntime

    recorders = []
    results = []
    t0 = time.perf_counter()
    for machine, coll, m, cfg in workload_points():
        runtime = MPIRuntime(machine)
        han = HanModule(config=cfg)
        durations = {}

        def prog(comm, op=coll, nbytes=m):
            fn = getattr(han, op)
            yield from comm.barrier()
            start = comm.now
            if op in ("bcast", "reduce"):
                yield from fn(comm, nbytes, root=0)
            else:
                yield from fn(comm, nbytes)
            durations[comm.rank] = comm.now - start

        rec = make_recorder(runtime.engine)
        with rec:
            runtime.run(prog)
        recorders.append(rec)
        results.append(
            (tuple(durations[r] for r in sorted(durations)),
             runtime.engine.now)
        )
    return recorders, results, time.perf_counter() - t0


def count_metric_updates(rec: MetricsModeRecorder) -> dict:
    """Exact update counts per primitive, recovered from the registry.

    Histogram observes are literally the bucket totals.  Counter incs
    follow from the hook arithmetic: ``msg_begin`` does 2, ``cpu_job``
    does 2, ``flow_done`` does 1 — and each hook's call count is itself
    a metric (``mpi.message_bytes`` count, ``cpu.jobs`` total,
    ``net.flows`` total).
    """
    reg = rec.metrics
    hist = sum(h.count for h in reg.histograms)
    msg_calls = sum(
        h.count for h in reg.histograms if h.name == "mpi.message_bytes"
    )
    cpu_calls = sum(c.value for c in reg.counters if c.name == "cpu.jobs")
    flow_calls = sum(c.value for c in reg.counters if c.name == "net.flows")
    return {
        "histogram": hist,
        "counter": int(2 * msg_calls + 2 * cpu_calls + flow_calls),
        "gauge": rec.gauge_samples + len(reg.gauges),  # samples + derived
    }


def guard_cost() -> float:
    """Seconds per `obj.obs is not None` check (the whole disabled path)."""

    class Obj:
        obs = None

    obj = Obj()
    n = 2_000_000
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        hits = 0
        for _i in range(n):
            if obj.obs is not None:  # pragma: no cover - never taken
                hits += 1
        best = min(best, time.perf_counter() - t0)
    return best / n


def metric_update_costs() -> dict:
    """Seconds per inlined metric update, by primitive.

    Mirrors the recorder hot paths exactly: one dict probe to reach the
    cached metric object, then the inlined body (``value +=`` for a
    counter, set-plus-max for a gauge, bisect/bucket/exemplar/sum for a
    histogram).  Attribute loads are deliberately not hoisted out of the
    loops — the hooks reload them per event too.
    """
    from bisect import bisect_left

    from repro.obs.metrics import Counter, Gauge, Histogram

    c, g, h = Counter("x"), Gauge("x"), Histogram("x")
    cache = {("k", 0): c}
    key = ("k", 0)
    n = 300_000

    def best(body) -> float:
        b = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            body()
            b = min(b, time.perf_counter() - t0)
        return b / n

    def counter_body():
        for _ in range(n):
            cache.get(key)
            c.value += 1.0

    def gauge_body():
        for _ in range(n):
            cache.get(key)
            g.value = 0.5
            if 0.5 > g.max_value:
                g.max_value = 0.5

    def histogram_body():
        for _ in range(n):
            cache.get(key)
            i = bisect_left(h.bounds, 1e-3)
            h.counts[i] += 1
            h.exemplars[i] = 5
            h.sum += 1e-3

    return {
        "counter": best(counter_body),
        "gauge": best(gauge_body),
        "histogram": best(histogram_body),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="", help="JSON report path")
    parser.add_argument("--budget", type=float, default=BUDGET)
    parser.add_argument("--metrics-budget", type=float,
                        default=METRICS_BUDGET)
    args = parser.parse_args(argv)

    wall_disabled, res_disabled = run_disabled()
    # second disabled run to warm caches fairly; keep the faster
    wall2, _ = run_disabled()
    wall_disabled = min(wall_disabled, wall2)
    full_recs, res_attached, wall_attached = run_attached(CountingRecorder)
    crossings = sum(r.crossings for r in full_recs)
    per_check = guard_cost()

    metric_recs, res_metrics, wall_metrics = run_attached(MetricsModeRecorder)
    updates = {"histogram": 0, "counter": 0, "gauge": 0}
    for rec in metric_recs:
        for kind, n in count_metric_updates(rec).items():
            updates[kind] += n
    costs = metric_update_costs()
    metrics_cost = sum(updates[k] * costs[k] for k in updates)

    bound = crossings * per_check / wall_disabled
    metrics_bound = metrics_cost / wall_disabled
    deterministic = res_disabled == res_attached == res_metrics
    report = {
        "workload": "fig08 bench unit (measure sweep, 4x8 shaheen2)",
        "wallclock_disabled_s": wall_disabled,
        "wallclock_attached_s": wall_attached,
        "wallclock_metrics_s": wall_metrics,
        "hook_crossings": crossings,
        "guard_cost_ns": per_check * 1e9,
        "disabled_overhead_bound": bound,
        "budget": args.budget,
        "metric_updates": updates,
        "metric_update_cost_ns": {k: v * 1e9 for k, v in costs.items()},
        "metrics_overhead_bound": metrics_bound,
        "metrics_budget": args.metrics_budget,
        "attached_overhead": wall_attached / wall_disabled - 1.0,
        "deterministic": deterministic,
    }
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)

    ok = True
    if not deterministic:
        print("FAIL: recorder perturbed simulated results", file=sys.stderr)
        ok = False
    if bound > args.budget:
        print(
            f"FAIL: disabled-path overhead bound {bound:.4%} exceeds "
            f"{args.budget:.0%}",
            file=sys.stderr,
        )
        ok = False
    if metrics_bound > args.metrics_budget:
        print(
            f"FAIL: metrics-plane overhead bound {metrics_bound:.4%} "
            f"exceeds {args.metrics_budget:.0%}",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"OK: disabled-path bound {bound:.4%} (budget "
            f"{args.budget:.0%}); metrics-plane bound {metrics_bound:.4%} "
            f"(budget {args.metrics_budget:.0%}); recorder attach is "
            f"deterministic in both modes"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
