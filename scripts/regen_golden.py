#!/usr/bin/env python
"""Regenerate the golden completion-time traces in ``tests/golden/``.

The golden file pins the exact simulated completion time of every HAN
collective on a fixed machine and configuration.  The simulator is
deterministic, so these are bit-exact expectations: any change —
intended tuning-model work or an accidental solver regression — shows
up as a diff in ``tests/golden/test_golden_traces.py``.

When a change is intentional, re-run this script and commit the result::

    python scripts/regen_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests" / "golden" / "collectives.json"
)

KiB, MiB = 1024, 1024 * 1024

#: every collective measure_collective can time (barrier takes no bytes)
COLLS = (
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "reduce_scatter", "alltoall", "barrier",
)
SIZES = (64 * KiB, 1 * MiB)


def golden_config():
    from repro.core.config import HanConfig

    return HanConfig(fs=512 * KiB)


def _suites():
    """The golden suites: (machine, geometry, config) per fabric preset.

    ``shaheen2`` is the original flat-node CPU suite; ``gpu_pod`` runs
    the same collectives on split-NVLink accelerator nodes with
    ``smod="gpu"``, so its traces pin the fabric/node/network 3-level
    schedules (FabricComposite intra stages).
    """
    from repro.core.config import HanConfig
    from repro.hardware import gpu_pod, shaheen2

    return {
        "shaheen2": (shaheen2, (4, 4), golden_config()),
        "gpu_pod": (gpu_pod, (2, 8), HanConfig(fs=512 * KiB, smod="gpu")),
    }


def _suite_traces(machine, config) -> dict:
    from repro.tuning.measure import measure_collective

    traces = {}
    for coll in COLLS:
        sizes = (0,) if coll == "barrier" else SIZES
        for nbytes in sizes:
            m = measure_collective(machine, coll, nbytes, config)
            traces[f"{coll}/{nbytes}"] = {
                "time": m.time,
                "sim_cost": m.sim_cost,
            }
    return traces


def compute_golden() -> dict:
    """The full golden document: per-suite traces keyed ``"<coll>/<nbytes>"``.

    Floats are stored verbatim (json round-trips Python floats through
    repr), so the comparison in the regression test is exact equality.
    The returned document is pure content — the provenance header
    (``schema_version`` / ``config_digest``, see
    ``repro.experiments.common.RESULT_HEADER_KEYS``) is stamped only on
    the written file and ignored by the golden test, so regenerating
    with an unchanged timing model is a no-op diff.
    """
    suites = {}
    for name, (preset, (nodes, ppn), config) in _suites().items():
        machine = preset(num_nodes=nodes, ppn=ppn)
        suites[name] = {
            "machine": f"{machine.name} {nodes}x{ppn}",
            "config": repr(config),
            "traces": _suite_traces(machine, config),
        }
    return {"suites": suites}


def main() -> int:
    from repro.experiments.common import RESULT_SCHEMA_VERSION
    from repro.obs.store import config_digest

    doc = compute_golden()
    doc["schema_version"] = RESULT_SCHEMA_VERSION
    doc["config_digest"] = config_digest(golden_config())
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    total = sum(len(s["traces"]) for s in doc["suites"].values())
    print(
        f"wrote {GOLDEN_PATH} ({total} traces across "
        f"{len(doc['suites'])} suites)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
