#!/usr/bin/env python
"""Regenerate the golden completion-time traces in ``tests/golden/``.

The golden file pins the exact simulated completion time of every HAN
collective on a fixed machine and configuration.  The simulator is
deterministic, so these are bit-exact expectations: any change —
intended tuning-model work or an accidental solver regression — shows
up as a diff in ``tests/golden/test_golden_traces.py``.

When a change is intentional, re-run this script and commit the result::

    python scripts/regen_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests" / "golden" / "collectives.json"
)

KiB, MiB = 1024, 1024 * 1024

#: every collective measure_collective can time (barrier takes no bytes)
COLLS = (
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "alltoall",
)
SIZES = (64 * KiB, 1 * MiB)
GEOMETRY = (4, 4)  # nodes x ppn


def golden_config():
    from repro.core.config import HanConfig

    return HanConfig(fs=512 * KiB)


def compute_golden() -> dict:
    """The full golden document, keyed ``"<coll>/<nbytes>"``.

    Floats are stored verbatim (json round-trips Python floats through
    repr), so the comparison in the regression test is exact equality.
    The returned document is pure content — the provenance header
    (``schema_version`` / ``config_digest``, see
    ``repro.experiments.common.RESULT_HEADER_KEYS``) is stamped only on
    the written file and ignored by the golden test, so regenerating
    with an unchanged timing model is a no-op diff.
    """
    from repro.hardware import shaheen2
    from repro.tuning.measure import measure_collective

    nodes, ppn = GEOMETRY
    machine = shaheen2(num_nodes=nodes, ppn=ppn)
    config = golden_config()
    traces = {}
    for coll in COLLS:
        for nbytes in SIZES:
            m = measure_collective(machine, coll, nbytes, config)
            traces[f"{coll}/{nbytes}"] = {
                "time": m.time,
                "sim_cost": m.sim_cost,
            }
    return {
        "machine": f"{machine.name} {nodes}x{ppn}",
        "config": repr(config),
        "traces": traces,
    }


def main() -> int:
    from repro.experiments.common import RESULT_SCHEMA_VERSION
    from repro.obs.store import config_digest

    doc = compute_golden()
    doc["schema_version"] = RESULT_SCHEMA_VERSION
    doc["config_digest"] = config_digest(golden_config())
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(doc['traces'])} traces)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
