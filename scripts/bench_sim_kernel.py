#!/usr/bin/env python
"""Benchmark the simulation kernel on the Fig-8 autotuning path.

Times the same tuning workload under two end-to-end configurations:

- **before** — the ``reference`` fluid solver with the progressive-fill
  memo disabled, driven by the ``scalar`` one-event-at-a-time engine
  kernel: the pre-optimization implementation (both pieces are retained
  as correctness oracles);
- **after** — the default configuration: the ``incremental`` solver
  (component-local re-solves, lazy completion heap) with the
  process-wide solve memo enabled, driven by the ``batched`` engine
  kernel (same-instant retirement in one numpy pass).

Repetitions are interleaved (before/after/before/after …) and the
minimum per configuration is reported, which suppresses machine noise
far better than back-to-back timing.  Events/sec uses the engine's
process-wide event counter, so it covers every runtime the tuner
creates internally.

The script also runs the paper-scale 4096-process (256 nodes x 16 ppn)
broadcast + allreduce from ``repro.experiments.scaling4096`` in both
solver modes and bit-compares every measured time; the combined
verdict lands in the ``results_bit_identical`` flag.

Usage::

    python scripts/bench_sim_kernel.py                  # full bench
    python scripts/bench_sim_kernel.py --quick          # CI-sized
    python scripts/bench_sim_kernel.py --quick \
        --check-baseline BENCH_sim_kernel.json \
        --gate-scaling 5.0                              # perf smoke
    python scripts/bench_sim_kernel.py -o BENCH_sim_kernel.json

``--check-baseline`` compares the *after* events/sec against the named
committed baseline and exits non-zero on a >20% regression.
``--gate-scaling S`` additionally runs the paper-scale 4096-process
scaling experiment in the after configuration and fails if its wall
clock exceeds ``S`` seconds or its simulated times diverge from the
committed baseline — the routine-`--scale paper` guarantee.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

KiB, MiB = 1024, 1024 * 1024

#: regression tolerance for --check-baseline (fraction of baseline)
TOLERANCE = 0.20

CONFIGS = {
    # (REPRO_FLUID_SOLVER, REPRO_FLUID_FILL_MEMO, REPRO_ENGINE_KERNEL)
    "before": ("reference", "0", "scalar"),
    "after": ("incremental", "1", "batched"),
}


def _solver_env(mode: str, memo: str, kernel: str) -> None:
    os.environ["REPRO_FLUID_SOLVER"] = mode
    os.environ["REPRO_FLUID_FILL_MEMO"] = memo
    os.environ["REPRO_ENGINE_KERNEL"] = kernel


def tuning_workload(quick: bool):
    """One Fig-8-style task-method tuning sweep; returns its report."""
    from repro.hardware import shaheen2
    from repro.tuning import Autotuner, SearchSpace

    if quick:
        machine = shaheen2(num_nodes=4, ppn=4)
        space = SearchSpace(
            seg_sizes=(512 * KiB,),
            messages=[2.0 ** k for k in range(14, 23, 4)],
            adapt_algorithms=("chain", "binomial"),
        )
    else:
        # fig08's "medium" geometry: 16 nodes x 12 ppn.  The incremental
        # solver's advantage grows with scale (the reference mode
        # re-solves every in-flight flow globally), so the bench geometry
        # should match what the experiments actually run.
        machine = shaheen2(num_nodes=16, ppn=12)
        space = SearchSpace(
            seg_sizes=(512 * KiB, 1 * MiB),
            messages=[2.0 ** k for k in range(14, 25, 2)],
            adapt_algorithms=("chain", "binomial"),
        )
    tuner = Autotuner(machine, space=space, warm_iters=6)
    return tuner.tune(colls=("bcast",), method="task")


def candidate_times(report) -> list[float]:
    """Flatten every measured candidate time, in deterministic order."""
    out = []
    for key in sorted(report.candidates, key=repr):
        out.extend(t for _cfg, t in report.candidates[key])
    return out


def timed_tuning(config: str, quick: bool) -> dict:
    from repro.sim.engine import Engine

    _solver_env(*CONFIGS[config])
    ev0 = Engine.events_total
    t0 = time.perf_counter()
    report = tuning_workload(quick)
    wall = time.perf_counter() - t0
    events = Engine.events_total - ev0
    return {
        "wallclock_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "tuning_cost_s": report.tuning_cost,
        "candidate_times": candidate_times(report),
    }


def scaling_runs(quick: bool) -> dict:
    """Paper-scale collectives in both modes, bit-compared."""
    from repro.experiments import scaling4096

    out: dict = {}
    for config, env in CONFIGS.items():
        _solver_env(*env)
        t0 = time.perf_counter()
        out[config] = scaling4096.run(
            scale="quick" if quick else "paper", save=False
        )
        out[config]["wallclock_s"] = time.perf_counter() - t0
    out["identical"] = (
        out["before"]["times"] == out["after"]["times"]
    )
    return out


def scaling_gate(budget: float, baseline: dict | None, repeat: int) -> dict:
    """Paper-scale after-config run: wall budget + baseline bit-compare.

    Takes the minimum wall over ``repeat`` runs (same noise-suppression
    discipline as the tuning phases); every run's simulated times must
    agree with each other and — when a baseline document carries a
    ``scaling4096`` section — with the committed times, so the gate
    checks cross-process bit-identity, not just speed.
    """
    from repro.experiments import scaling4096

    _solver_env(*CONFIGS["after"])
    walls: list[float] = []
    times = events = None
    ok = True
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        res = scaling4096.run(scale="paper", save=False)
        walls.append(time.perf_counter() - t0)
        if times is None:
            times, events = res["times"], res["events"]
        elif res["times"] != times:
            print("FAIL: repeated paper-scale runs disagree with each other")
            ok = False
    expect = (baseline or {}).get("scaling4096", {}).get("times")
    if expect is not None:
        if expect != times:
            print("FAIL: paper-scale simulated times diverge from the "
                  "committed baseline")
            ok = False
        else:
            print("scaling gate: times bit-identical to the committed baseline")
    wall = min(walls)
    print(f"scaling gate: paper wall {wall:.2f}s "
          f"(budget {budget:.1f}s, {len(walls)} run(s))")
    if wall > budget:
        print(f"FAIL: paper-scale wall exceeds the {budget:.1f}s budget")
        ok = False
    return {
        "budget_s": budget,
        "wallclock_s": wall,
        "walls_s": walls,
        "times": times,
        "events": events,
        "ok": ok,
    }


def critpath_profile() -> dict:
    """Dogfood the repo's own observability on the bench workload.

    Records one medium-geometry allreduce through :mod:`repro.obs` and
    attributes its simulated critical path (cpu / net / wait) via
    :mod:`repro.obs.critpath` — the breakdown that says *where* the
    events the kernel retires actually come from.
    """
    from repro.hardware import shaheen2
    from repro.obs.critpath import critical_path
    from repro.obs.record import record_collective

    _solver_env(*CONFIGS["after"])
    machine = shaheen2(num_nodes=8, ppn=8)
    record = record_collective(machine, "allreduce", float(MiB))
    att = critical_path(record).attribution
    return {
        "workload": "allreduce 1MiB on shaheen2 8x8 (recorded run)",
        "spans": len(record.spans),
        "messages": len(record.messages),
        "cpu_s": att["cpu"],
        "net_s": att["net"],
        "wait_s": att["wait"],
        "end_s": att["end"],
        "coverage": att["coverage"],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized workload (seconds, not minutes)")
    ap.add_argument("--repeat", type=int, default=3,
                    help="interleaved repetitions per configuration")
    ap.add_argument("--check-baseline", metavar="JSON",
                    help="compare events/sec against a committed baseline; "
                         f"exit 1 on a >{TOLERANCE:.0%} regression")
    ap.add_argument("--gate-scaling", type=float, metavar="SECONDS",
                    help="run the paper-scale scaling4096 experiment in the "
                         "after configuration; exit 3 if its wall clock "
                         "exceeds this budget or its simulated times "
                         "diverge from --check-baseline's")
    ap.add_argument("--gate-repeat", type=int, default=2,
                    help="runs for the scaling gate (minimum wall counts)")
    ap.add_argument("--gate-only", action="store_true",
                    help="skip the tuning/scaling phases: load the existing "
                         "--output document, re-run just the paper-scale "
                         "gate against its committed times, and rewrite its "
                         "scaling_gate section (exit 3 on failure)")
    ap.add_argument("-o", "--output", metavar="JSON",
                    help="write the result document here")
    args = ap.parse_args(argv)

    if args.gate_only:
        if not (args.output and Path(args.output).exists()):
            ap.error("--gate-only needs an existing --output document")
        doc = json.loads(Path(args.output).read_text())
        gate = scaling_gate(
            args.gate_scaling if args.gate_scaling is not None else 5.0,
            doc, args.gate_repeat,
        )
        doc["scaling_gate"] = gate
        Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
        return 0 if gate["ok"] else 3

    phases: dict[str, list[dict]] = {c: [] for c in CONFIGS}
    for rep in range(args.repeat):
        for config in CONFIGS:
            r = timed_tuning(config, args.quick)
            phases[config].append(r)
            print(
                f"[{rep + 1}/{args.repeat}] {config:>6}: "
                f"{r['wallclock_s']:.2f}s  "
                f"{r['events_per_sec']:,.0f} events/s",
                flush=True,
            )

    best = {
        c: min(runs, key=lambda r: r["wallclock_s"])
        for c, runs in phases.items()
    }
    identical_tuning = all(
        runs_c["candidate_times"] == best["before"]["candidate_times"]
        and runs_c["tuning_cost_s"] == best["before"]["tuning_cost_s"]
        for runs in phases.values()
        for runs_c in runs
    )

    print("scaling run (256x16 bcast + allreduce)..." if not args.quick
          else "scaling run (quick geometry)...", flush=True)
    scaling = scaling_runs(args.quick)

    speedup = (
        best["before"]["wallclock_s"] / best["after"]["wallclock_s"]
        if best["after"]["wallclock_s"] > 0 else 0.0
    )
    doc = {
        "workload": "fig08 bcast task-method tuning sweep "
                    + ("(quick geometry 4x4)" if args.quick
                       else "(medium geometry 16x12)"),
        "quick": args.quick,
        "repeat": args.repeat,
        "configs": {
            c: dict(zip(("fluid_solver", "fill_memo", "engine_kernel"), env))
            for c, env in CONFIGS.items()
        },
        "before": {k: best["before"][k] for k in
                   ("wallclock_s", "events", "events_per_sec")},
        "after": {k: best["after"][k] for k in
                  ("wallclock_s", "events", "events_per_sec")},
        "speedup": speedup,
        "scaling4096": {
            "geometry": scaling["after"]["geometry"],
            "times": scaling["after"]["times"],
            "events": scaling["after"].get("events"),
            "wallclock_after_s": scaling["after"]["wallclock_s"],
            "wallclock_before_s": scaling["before"]["wallclock_s"],
        },
        "results_bit_identical": identical_tuning and scaling["identical"],
    }

    gate = None
    if args.gate_scaling is not None:
        baseline = (
            json.loads(Path(args.check_baseline).read_text())
            if args.check_baseline else None
        )
        gate = scaling_gate(args.gate_scaling, baseline, args.gate_repeat)
        doc["scaling_gate"] = gate

    if not args.quick:
        print("critical-path profile (obs dogfood)...", flush=True)
        doc["critpath"] = critpath_profile()
        end = doc["critpath"]["end_s"] or 1.0
        print("  " + "  ".join(
            f"{k}: {doc['critpath'][f'{k}_s']:.3e}s"
            f" ({doc['critpath'][f'{k}_s'] / end:.0%})"
            for k in ("cpu", "net", "wait")
        ))

    print(
        f"\nbefore: {doc['before']['wallclock_s']:.2f}s  "
        f"after: {doc['after']['wallclock_s']:.2f}s  "
        f"speedup: {speedup:.2f}x  "
        f"bit-identical: {doc['results_bit_identical']}"
    )

    if args.output and not args.quick:
        # CI's perf smoke runs --quick, so the committed baseline needs a
        # quick-workload events/sec to compare against (the full-workload
        # rate has a different event mix).
        smoke = min(
            (timed_tuning("after", quick=True) for _ in range(args.repeat)),
            key=lambda r: r["wallclock_s"],
        )
        doc["perf_smoke_baseline"] = {
            k: smoke[k] for k in ("wallclock_s", "events", "events_per_sec")
        }
        print(
            f"perf-smoke baseline (quick): "
            f"{smoke['events_per_sec']:,.0f} events/s"
        )

    if args.output:
        Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.check_baseline:
        base = json.loads(Path(args.check_baseline).read_text())
        key = "perf_smoke_baseline" if args.quick else "after"
        baseline_eps = base.get(key, base["after"])["events_per_sec"]
        current = doc["after"]["events_per_sec"]
        floor = baseline_eps * (1.0 - TOLERANCE)
        print(
            f"perf smoke: {current:,.0f} events/s vs baseline "
            f"{baseline_eps:,.0f} (floor {floor:,.0f})"
        )
        if current < floor:
            print("FAIL: events/sec regressed more than "
                  f"{TOLERANCE:.0%} vs {args.check_baseline}")
            return 1
        print("OK")
    if not doc["results_bit_identical"]:
        print("FAIL: kernel configurations disagree — investigate before "
              "trusting any benchmark above")
        return 2
    if gate is not None and not gate["ok"]:
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
