"""CI smoke: two-tenant contention is real, bounded, and deterministic.

The tenancy subsystem's whole value is one sentence — a foreground
collective measured while background tenants replay is *slower*, by a
*reproducible* amount, and an empty plan changes *nothing*.  This script
checks exactly that sentence on a small machine, end to end:

1. foreground ``bcast`` vs the ``allreduce_sweep`` background preset
   (:func:`repro.tenancy.measure_interference`): the loaded run must be
   strictly slower than solo (slowdown > 1.0);
2. the :func:`repro.obs.interference_insight` band must pass — slower,
   but not pathologically so (the fluid fair-share solver caps how much
   one tenant can steal);
3. a second, fresh run of the identical plan seed must reproduce every
   time bit-identically (the entropy-tree replay contract);
4. a tenant-free plan must be bit-identical to the solo path (the
   subsystem is invisible when unused).

Writes a JSON report for the CI artifact; exit status is nonzero if any
check fails.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.config import HanConfig
from repro.hardware import small_cluster
from repro.obs import interference_insight
from repro.tenancy import TrafficPlan, traffic_preset
from repro.tenancy.scheduler import measure_interference
from repro.tuning.measure import measure_collective

KiB = 1024


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--ppn", type=int, default=4)
    parser.add_argument("--nbytes", type=float, default=256 * KiB)
    parser.add_argument("--preset", default="allreduce_sweep")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default="", help="JSON report path")
    args = parser.parse_args(argv)

    machine = small_cluster(num_nodes=args.nodes, ppn=args.ppn)
    config = HanConfig(fs=128 * KiB, imod="adapt", smod="sm",
                       ibalg="chain", iralg="chain")
    plan = traffic_preset(args.preset).with_seed(args.seed)

    first = measure_interference(machine, "bcast", args.nbytes, config, plan)
    second = measure_interference(machine, "bcast", args.nbytes, config, plan)
    insight = interference_insight(first)

    empty = measure_collective(
        machine, "bcast", args.nbytes, config,
        traffic_plan=TrafficPlan(seed=args.seed),
    )

    checks = {
        "slowdown_gt_1": first["slowdown"] > 1.0,
        "insight_band": insight.passed,
        "replay_bit_identical": first == second,
        "empty_plan_is_solo": empty.time == first["solo_time"],
    }
    report = {
        "machine": f"{machine.name} {args.nodes}x{args.ppn}",
        "foreground": {"coll": "bcast", "nbytes": args.nbytes},
        "traffic": first["traffic"],
        "seed": args.seed,
        "solo_time": first["solo_time"],
        "loaded_time": first["loaded_time"],
        "slowdown": first["slowdown"],
        "insight": insight.detail,
        "checks": checks,
        "passed": all(checks.values()),
    }
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)

    if not report["passed"]:
        failed = [k for k, ok in checks.items() if not ok]
        print(f"FAIL: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(
        f"OK: bcast under {args.preset} slows {first['slowdown']:.2f}x, "
        f"replays bit-identically, empty plan is invisible"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
