"""Models of the MPI libraries the paper compares against.

Each comparator couples a point-to-point profile (Fig 11's mechanism --
the libraries share the machine, not the software stack) with that
library's collective strategy:

- ``OpenMPIDefault``  -- the flat `tuned` decision rules [29],
- ``OpenMPIHan``      -- Open MPI + HAN (this paper), autotunable,
- ``CrayMPI``         -- Aries-integrated P2P + hierarchical (leader-
  based, non-overlapped) collectives [23, 24 style],
- ``IntelMPI``        -- strong mid-range P2P + hierarchical
  non-overlapped collectives,
- ``MVAPICH2``        -- weaker mid-range bcast, but the multi-leader
  partitioned allreduce of [20] that catches HAN at huge messages
  (paper Fig 14).
"""

from repro.comparators.base import MPILibrary
from repro.comparators.libraries import (
    CrayMPI,
    IntelMPI,
    MVAPICH2,
    OpenMPIDefault,
    OpenMPIHan,
    library_by_name,
)

__all__ = [
    "CrayMPI",
    "IntelMPI",
    "MPILibrary",
    "MVAPICH2",
    "OpenMPIDefault",
    "OpenMPIHan",
    "library_by_name",
]
