"""Common interface for comparator MPI libraries."""

from __future__ import annotations

from repro.mpi.op import SUM
from repro.netsim.profiles import P2PProfile

__all__ = ["MPILibrary", "TwoLevelMixin"]


class MPILibrary:
    """An MPI implementation: a P2P profile plus collective strategies.

    Benchmarks run ``MPIRuntime(machine, profile=lib.profile)`` and then
    drive ``lib.bcast`` / ``lib.allreduce`` / ``lib.barrier`` inside the
    simulated ranks.
    """

    name: str = "base"

    @property
    def profile(self) -> P2PProfile:
        raise NotImplementedError

    def bcast(self, comm, nbytes, root=0, payload=None):
        raise NotImplementedError

    def allreduce(self, comm, nbytes, payload=None, op=SUM):
        raise NotImplementedError

    def barrier(self, comm):
        yield from comm.barrier()

    def __repr__(self) -> str:
        return f"<MPILibrary {self.name}>"


class TwoLevelMixin:
    """Classic hierarchical collectives *without* level overlap.

    The MPICH2/Cray-style leader design the paper's related work
    describes [23, 24]: minimize inter-node traffic by electing node
    leaders, but run the levels back-to-back -- "since they are not able
    to overlap communications on different levels, their performance for
    big messages would be sub-optimal" (paper II-A).
    """

    @staticmethod
    def _hier(comm):
        from repro.core.subcomms import build_hierarchy

        hier = yield from build_hierarchy(comm)
        return hier

    def two_level_bcast(self, comm, nbytes, root, payload, inter_alg,
                        inter_seg, smod):
        from repro.colls import BCAST_ALGORITHMS

        hier = yield from self._hier(comm)
        root_local = hier.local_rank_of(root)
        root_up = hier.up_rank_of(root)
        buf = payload
        if hier.local_rank == root_local and hier.up.size > 1:
            buf = yield from BCAST_ALGORITHMS[inter_alg](
                hier.up, nbytes, root=root_up, payload=buf, segsize=inter_seg
            )
        if hier.low.size > 1:
            buf = yield from smod.bcast(
                hier.low, nbytes, root=root_local,
                payload=buf if hier.local_rank == root_local else None,
            )
        return buf if comm.rank != root else payload

    def two_level_allreduce(self, comm, nbytes, payload, op, inter_alg,
                            smod, avx):
        from repro.colls import ALLREDUCE_ALGORITHMS

        hier = yield from self._hier(comm)
        part = payload
        if hier.low.size > 1:
            part = yield from smod.reduce(
                hier.low, nbytes, root=0, payload=payload, op=op
            )
        if hier.local_rank == 0 and hier.up.size > 1:
            part = yield from ALLREDUCE_ALGORITHMS[inter_alg](
                hier.up, nbytes, payload=part, op=op, avx=avx
            )
        if hier.low.size > 1:
            part = yield from smod.bcast(
                hier.low, nbytes, root=0,
                payload=part if hier.local_rank == 0 else None,
            )
        return part
