"""The concrete comparator libraries."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.comparators.base import MPILibrary, TwoLevelMixin
from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.modules import SMModule, SoloModule, TunedModule
from repro.mpi.op import SUM
from repro.netsim.profiles import (
    craympi_profile,
    intelmpi_profile,
    mvapich2_profile,
    openmpi_profile,
)

__all__ = [
    "OpenMPIDefault",
    "OpenMPIHan",
    "CrayMPI",
    "IntelMPI",
    "MVAPICH2",
    "library_by_name",
]

KiB, MiB = 1024, 1024 * 1024


class OpenMPIDefault(MPILibrary):
    """Open MPI 4.0.0 with the flat `tuned` component ("default Open MPI")."""

    name = "openmpi"

    def __init__(self):
        self._tuned = TunedModule()

    @property
    def profile(self):
        return openmpi_profile()

    def bcast(self, comm, nbytes, root=0, payload=None):
        out = yield from self._tuned.bcast(comm, nbytes, root=root, payload=payload)
        return out

    def allreduce(self, comm, nbytes, payload=None, op=SUM):
        out = yield from self._tuned.allreduce(comm, nbytes, payload=payload, op=op)
        return out

    def reduce(self, comm, nbytes, root=0, payload=None, op=SUM):
        out = yield from self._tuned.reduce(comm, nbytes, root=root,
                                            payload=payload, op=op)
        return out

    def gather(self, comm, nbytes, root=0, payload=None):
        out = yield from self._tuned.gather(comm, nbytes, root=root,
                                            payload=payload)
        return out

    def scatter(self, comm, nbytes, root=0, payload=None):
        out = yield from self._tuned.scatter(comm, nbytes, root=root,
                                             payload=payload)
        return out

    def allgather(self, comm, nbytes, payload=None):
        out = yield from self._tuned.allgather(comm, nbytes, payload=payload)
        return out


class OpenMPIHan(MPILibrary):
    """Open MPI + HAN (this paper): same P2P stack, HAN collectives.

    ``decision_fn`` is usually an autotuned lookup table; without one HAN
    falls back to its static default configuration.
    """

    name = "han"

    def __init__(self, decision_fn: Optional[Callable] = None,
                 config: Optional[HanConfig] = None):
        self.han = HanModule(config=config, decision_fn=decision_fn)

    @property
    def profile(self):
        return openmpi_profile()

    def bcast(self, comm, nbytes, root=0, payload=None):
        out = yield from self.han.bcast(comm, nbytes, root=root, payload=payload)
        return out

    def allreduce(self, comm, nbytes, payload=None, op=SUM):
        out = yield from self.han.allreduce(comm, nbytes, payload=payload, op=op)
        return out

    def barrier(self, comm):
        yield from self.han.barrier(comm)

    def reduce(self, comm, nbytes, root=0, payload=None, op=SUM):
        out = yield from self.han.reduce(comm, nbytes, root=root,
                                         payload=payload, op=op)
        return out

    def gather(self, comm, nbytes, root=0, payload=None):
        out = yield from self.han.gather(comm, nbytes, root=root,
                                         payload=payload)
        return out

    def scatter(self, comm, nbytes, root=0, payload=None):
        out = yield from self.han.scatter(comm, nbytes, root=root,
                                          payload=payload)
        return out

    def allgather(self, comm, nbytes, payload=None):
        out = yield from self.han.allgather(comm, nbytes, payload=payload)
        return out

    def alltoall(self, comm, nbytes, payload=None):
        out = yield from self.han.alltoall(comm, nbytes, payload=payload)
        return out


class CrayMPI(TwoLevelMixin, MPILibrary):
    """Cray MPI 7.7.0: near-peak Aries P2P + leader-based hierarchical
    collectives without level overlap."""

    name = "craympi"

    def __init__(self):
        self._sm = SMModule(setup_overhead=0.15e-6)
        self._solo = SoloModule()

    @property
    def profile(self):
        return craympi_profile()

    def _smod(self, nbytes):
        return self._solo if nbytes > 512 * KiB else self._sm

    def bcast(self, comm, nbytes, root=0, payload=None):
        alg = "binomial" if nbytes <= 64 * KiB else "chain"
        seg = None if nbytes <= 64 * KiB else 1 * MiB
        out = yield from self.two_level_bcast(
            comm, nbytes, root, payload, alg, seg, self._smod(nbytes)
        )
        return out

    def allreduce(self, comm, nbytes, payload=None, op=SUM):
        alg = "recursive_doubling" if nbytes <= 16 * KiB else "ring"
        out = yield from self.two_level_allreduce(
            comm, nbytes, payload, op, alg, self._smod(nbytes), avx=True
        )
        return out


class IntelMPI(TwoLevelMixin, MPILibrary):
    """Intel MPI 18.0.2: strong PSM2 P2P, hierarchical non-overlapped
    collectives, vectorized reductions."""

    name = "intelmpi"

    def __init__(self):
        self._sm = SMModule(setup_overhead=0.2e-6)
        self._solo = SoloModule(setup_overhead=2.0e-6)

    @property
    def profile(self):
        return intelmpi_profile()

    def _smod(self, nbytes):
        return self._solo if nbytes > 512 * KiB else self._sm

    def bcast(self, comm, nbytes, root=0, payload=None):
        alg = "binomial" if nbytes <= 32 * KiB else "binary"
        seg = None if nbytes <= 32 * KiB else 512 * KiB
        out = yield from self.two_level_bcast(
            comm, nbytes, root, payload, alg, seg, self._smod(nbytes)
        )
        return out

    def allreduce(self, comm, nbytes, payload=None, op=SUM):
        alg = "recursive_doubling" if nbytes <= 16 * KiB else "rabenseifner"
        out = yield from self.two_level_allreduce(
            comm, nbytes, payload, op, alg, self._smod(nbytes), avx=True
        )
        return out


class MVAPICH2(TwoLevelMixin, MPILibrary):
    """MVAPICH2 2.3.1: flat tree broadcasts (its weak spot in Fig 12)
    and the multi-leader partitioned allreduce of [20] that matches HAN
    on very large messages (Fig 14)."""

    name = "mvapich2"

    def __init__(self, leaders_per_node: int = 4):
        self.leaders_per_node = leaders_per_node
        self._sm = SMModule()
        # DPML's node-level reduction is partitioned across the leaders;
        # the chunk-parallel one-sided path models that aggregate rate.
        self._solo = SoloModule(setup_overhead=3.0e-6)

    @property
    def profile(self):
        return mvapich2_profile()

    def bcast(self, comm, nbytes, root=0, payload=None):
        from repro.colls import BCAST_ALGORITHMS

        # flat, topology-unaware binomial trees (its Fig 12 weak spot):
        # interior vertices fan out to log(P) children over the wire, so
        # the root pushes log2(P) copies of the message through one NIC
        if nbytes <= 16 * KiB:
            out = yield from BCAST_ALGORITHMS["binomial"](
                comm, nbytes, root=root, payload=payload
            )
        else:
            out = yield from BCAST_ALGORITHMS["binomial"](
                comm, nbytes, root=root, payload=payload, segsize=64 * KiB
            )
        return out

    def allreduce(self, comm, nbytes, payload=None, op=SUM):
        if nbytes <= 64 * KiB:
            out = yield from self.two_level_allreduce(
                comm, nbytes, payload, op, "recursive_doubling", self._sm,
                avx=False,
            )
            return out
        out = yield from self._multi_leader_allreduce(comm, nbytes, payload, op)
        return out

    def _multi_leader_allreduce(self, comm, nbytes, payload, op):
        """DPML [20]: L leaders per node each own 1/L of the vector and
        run concurrent inter-node rings, exposing network parallelism."""
        from repro.colls import ALLREDUCE_ALGORITHMS

        hier = yield from self._hier(comm)
        low, up = hier.low, hier.up
        L = max(1, min(self.leaders_per_node, low.size))
        is_leader = hier.local_rank < L
        chunk = nbytes / L

        # 1) node-local reduction, partitioned across the L leaders
        part = payload
        if low.size > 1:
            part = yield from self._solo.reduce(
                low, nbytes, root=0, payload=payload, op=op
            )
            # partition hand-off to other leaders through shared memory
            if is_leader and hier.local_rank != 0:
                part = None
        # 2) each leader's layer runs a ring over its chunk concurrently
        if is_leader and up.size > 1:
            my = None
            if part is not None and isinstance(part, np.ndarray):
                my = part  # leader 0 carries the data result
            reduced = yield from ALLREDUCE_ALGORITHMS["ring"](
                up, chunk, payload=my if hier.local_rank == 0 else None,
                op=op, avx=False,
            )
            if hier.local_rank == 0:
                part = reduced
        # 3) redistribute on the node
        if low.size > 1:
            part = yield from self._solo.bcast(
                low, nbytes, root=0,
                payload=part if hier.local_rank == 0 else None,
            )
        return part


_REGISTRY = {
    "openmpi": OpenMPIDefault,
    "han": OpenMPIHan,
    "craympi": CrayMPI,
    "intelmpi": IntelMPI,
    "mvapich2": MVAPICH2,
}


def library_by_name(name: str, **kwargs) -> MPILibrary:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown MPI library {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
