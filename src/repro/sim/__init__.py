"""Discrete-event simulation substrate.

This package provides the generic simulation machinery the rest of the
reproduction is built on:

- :mod:`repro.sim.engine` -- a deterministic discrete-event engine whose
  simulated processes are plain Python generators (SimPy-style, but
  self-contained and tuned for the message volumes of collective
  communication simulation).
- :mod:`repro.sim.fluid` -- a max-min fair-share ("progressive filling")
  fluid bandwidth allocator used to model links, NICs and memory buses as
  shared resources.
- :mod:`repro.sim.trace` -- optional structured tracing of simulation
  events for debugging and validation.

Nothing in this package knows about MPI; it is a general substrate.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    DeadlockError,
    Engine,
    Join,
    SimEvent,
    SimProcess,
    Sleep,
    Spawn,
)
from repro.sim.fluid import FluidSolver, Flow
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlockError",
    "Engine",
    "Flow",
    "FluidSolver",
    "Join",
    "SimEvent",
    "SimProcess",
    "Sleep",
    "Spawn",
    "TraceEvent",
    "Tracer",
]
