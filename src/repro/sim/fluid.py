"""Max-min fair-share fluid bandwidth allocator.

Data transfers in the simulator are *flows*: an amount of bytes crossing a
set of shared *resources* (NIC tx/rx channels, network links, per-node
memory buses).  At any instant, every active flow receives a rate decided
by progressive filling (max-min fairness): the most contended resource is
saturated first, flows through it are fixed at the fair share, and the
procedure repeats on the residual network.  This is the classic flow-level
network model (as used by e.g. SimGrid) and is what produces, without any
hand-tuned constants:

- fair bandwidth sharing and *congestion at a process* when many flows hit
  one NIC (the effect of [Gropp et al., EuroMPI'16] cited by the paper);
- *imperfect overlap* between inter-node (`ib`) and intra-node (`sb`)
  broadcasts when both touch the same memory bus (paper section III-A2).

Each flow may additionally carry a private ``rate_cap`` (bytes/s),
modelling the achievable point-to-point bandwidth of the MPI library for a
given message size (the `P2PProfile` of Fig 11); a cap is just an extra
single-flow resource.

Incremental solving
-------------------

The solver is event-driven: on every batch of flow arrivals/departures the
rates are recomputed and a single "next completion" callback is
(re)scheduled on the engine.  Same-instant arrivals are batched through a
`PRIORITY_LATE` callback so a collective step that starts P flows triggers
one recomputation, not P.

Two solver modes share one vectorized progressive-filling kernel
(:meth:`FluidSolver._progressive_fill`):

``"incremental"`` (the default)
    A resource→flow incidence index is maintained; each recompute
    re-solves only the connected component of flows that (transitively)
    share a resource with whatever changed — a flow started/aborted/
    retired, or a capacity rescale.  This is *exact*, not an
    approximation: the max-min allocation of disjoint components is
    independent (progressive filling never moves bandwidth across
    components), so flows outside the component keep their rates — and
    because rates, remaining bytes and completion instants are only
    re-committed when a rate actually *changes*, the floating-point
    history of every flow is bit-identical to the reference mode.
    Completions are tracked in a lazy heap of ``(t_done, fid, epoch)``
    entries instead of an O(n) horizon scan.

``"reference"``
    The retained global solver: every recompute re-solves all flows and
    scans all completion horizons.  It exists as the verification oracle
    for the differential suite (``tests/sim/test_fluid_differential.py``)
    and as an escape hatch (``REPRO_FLUID_SOLVER=reference``).

Bit-identity between the modes rests on three disciplines:

1. *Committed drains*: a flow's ``remaining`` is drained only when its
   rate changes; observers use the non-committing ``drained_at`` view.
   (The reference mode follows the same discipline, so both modes
   perform the identical sequence of floating-point operations per flow.)
2. *Exact completion instants*: ``t_done = drained_at + remaining/rate``
   is computed once per rate commit and placed on the engine heap
   verbatim via :meth:`Engine.schedule_at`; a flow retires exactly when
   ``t_done <= now`` in both modes.
3. *Order-stable kernels*: component flows are solved in fid order with
   resource ids remapped through a sorted index, so every per-resource
   accumulation (``np.add.at`` / ``np.minimum.at``) sees the same value
   sequence as the global solve restricted to that component.
"""

from __future__ import annotations

import atexit
import heapq
import json
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.sim.engine import Engine, PRIORITY_LATE

__all__ = [
    "FluidSolver",
    "Flow",
    "clear_fill_memo",
    "fill_memo_sizes",
    "load_fill_memo",
    "save_fill_memo",
]

_EPS_BYTES = 1e-6  # flows with fewer remaining bytes are considered done
_INF = math.inf
_EMPTY_INTP = np.empty(0, dtype=np.intp)

#: environment override for the default solver mode (benchmark A/B switch)
_MODE_ENV = "REPRO_FLUID_SOLVER"
_MODES = ("incremental", "reference")

#: process-wide progressive-fill memo (see FluidSolver._progressive_fill):
#: (capacity-vector tuple, ((route, rate_cap, weight), ...)) -> rates.
#: Bounded by *generational* eviction: entries live in a current
#: generation and one read-mostly previous generation; when the current
#: generation reaches half of _FILL_MEMO_MAX it becomes the previous one
#: (dropping the old previous generation wholesale), and hits on the
#: previous generation promote the entry back into the current one.
#: Hot entries therefore survive eviction indefinitely, while cold ones
#: age out after at most two rotations — unlike the former wholesale
#: clear(), which threw away the entire working set at the cap.
#: REPRO_FLUID_FILL_MEMO=0 disables it (differential tests use this to
#: exercise the kernel itself; benchmarks use it for the pre-memo
#: baseline) — results are bit-identical either way, the memo only ever
#: returns arrays the kernel itself produced for the identical inputs.
_FILL_MEMO: dict = {}
_FILL_MEMO_OLD: dict = {}
_FILL_MEMO_MAX = 200_000
_FILL_MEMO_ENV = "REPRO_FLUID_FILL_MEMO"
#: cross-run persistence (optional): a JSONL snapshot warmed on first
#: solver construction and rewritten at process exit when this is set
_FILL_MEMO_PATH_ENV = "REPRO_FLUID_MEMO_PATH"
_FILL_MEMO_SCHEMA = "fluid-fill-memo-v1"
_fill_memo_autoloaded = False


def _fill_memo_enabled() -> bool:
    return os.environ.get(_FILL_MEMO_ENV, "1") != "0"


def _fill_memo_store(key: tuple, value: np.ndarray) -> None:
    global _FILL_MEMO, _FILL_MEMO_OLD
    memo = _FILL_MEMO
    if len(memo) >= _FILL_MEMO_MAX // 2:
        _FILL_MEMO_OLD = memo
        memo = _FILL_MEMO = {}
    memo[key] = value


def _fill_memo_get(key: tuple):
    value = _FILL_MEMO.get(key)
    if value is None:
        value = _FILL_MEMO_OLD.get(key)
        if value is not None:
            _fill_memo_store(key, value)  # promote: hot entries never age out
    return value


def fill_memo_sizes() -> tuple[int, int]:
    """(current, previous) generation entry counts — test/bench hook."""
    return len(_FILL_MEMO), len(_FILL_MEMO_OLD)


def clear_fill_memo() -> None:
    """Drop both memo generations (test isolation hook)."""
    _FILL_MEMO.clear()
    _FILL_MEMO_OLD.clear()


def _fill_memo_key_doc(key: tuple) -> list:
    caps_key, flows_key = key
    return [list(caps_key), [[list(rk), rc, w] for rk, rc, w in flows_key]]


def _fill_memo_key_from_doc(doc: list) -> tuple:
    caps, flows = doc
    return (
        tuple(float(c) for c in caps),
        tuple((tuple(rk), float(rc), float(w)) for rk, rc, w in flows),
    )


def save_fill_memo(path) -> int:
    """Snapshot both memo generations to ``path`` as JSONL; returns entries.

    Each line carries the key, the solved rates, and a content digest of
    both under the same canonical-JSON contract the RunStore and the
    measurement cache use (:func:`repro.tuning.cache.digest`) — load
    verifies it, so a corrupt or hand-edited line is skipped rather than
    poisoning bit-identity.  The write is atomic (tmp + rename).
    """
    from repro.tuning.cache import digest

    merged = dict(_FILL_MEMO_OLD)
    merged.update(_FILL_MEMO)  # current generation wins
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    n = 0
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"schema": _FILL_MEMO_SCHEMA}) + "\n")
        for key, rates in merged.items():
            kdoc = _fill_memo_key_doc(key)
            vdoc = [float(r) for r in rates]
            d = digest("fluid-fill", key=kdoc, value=vdoc)
            fh.write(json.dumps({"k": kdoc, "v": vdoc, "d": d}) + "\n")
            n += 1
    os.replace(tmp, path)
    return n


def load_fill_memo(path) -> int:
    """Warm the memo from a :func:`save_fill_memo` snapshot; returns entries.

    Entries land in the *previous* generation: they are served (and
    promoted) on demand without counting against the current
    generation's rotation budget.  Digest-mismatched or malformed lines
    are skipped silently — the memo is an accelerator, never an oracle.
    """
    from repro.tuning.cache import digest

    n = 0
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return 0
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                if "k" not in doc:
                    continue  # header / foreign line
                if digest("fluid-fill", key=doc["k"], value=doc["v"]) != doc["d"]:
                    continue
                key = _fill_memo_key_from_doc(doc["k"])
                rates = np.asarray(doc["v"], dtype=np.float64)
            except (ValueError, TypeError, KeyError):
                continue
            if key not in _FILL_MEMO:
                _FILL_MEMO_OLD[key] = rates
                n += 1
    return n


def _fill_memo_autoload() -> None:
    """Warm from (and arrange save-back to) ``REPRO_FLUID_MEMO_PATH``."""
    global _fill_memo_autoloaded
    if _fill_memo_autoloaded:
        return
    _fill_memo_autoloaded = True
    path = os.environ.get(_FILL_MEMO_PATH_ENV)
    if not path:
        return
    load_fill_memo(path)
    atexit.register(lambda: save_fill_memo(path))


@dataclass(slots=True)
class Flow:
    """One active data transfer inside the fluid solver."""

    fid: int
    remaining: float  # bytes still to transfer, as of `drained_at`
    resources: np.ndarray  # resource ids this flow crosses (may be empty)
    rate_cap: float  # private upper bound on rate (bytes/s), inf if none
    on_complete: Callable[[], None]
    rate: float = 0.0  # current allocated rate, maintained by the solver
    weight: float = 1.0  # share weight on contended resources
    meta: dict = field(default_factory=dict)
    # -- solver bookkeeping (see module docstring, "Bit-identity") --------
    drained_at: float = 0.0  # instant `remaining` was last committed
    t_done: float = _INF  # completion instant at the current rate
    epoch: int = 0  # bumped per rate commit; invalidates heap entries
    res_list: list = field(default_factory=list)  # resources.tolist() cache
    res_key: tuple = ()  # hashable route, for the solve memo cache
    res_unique: list = field(default_factory=list)  # distinct rids, route order
    res_uset: frozenset = frozenset()  # distinct rids, for the component BFS
    # res_unique as intp, for the vectorized load refresh (np.add.at)
    res_uarr: np.ndarray = field(default_factory=lambda: _EMPTY_INTP)
    memo_item: tuple = ()  # (res_key, rate_cap, weight), built once per flow


class FluidSolver:
    """Shared-bandwidth network state attached to a simulation engine.

    Resources are created once (topology build time) via
    :meth:`add_resource`; flows come and go via :meth:`start_flow`.

    ``mode`` selects the solver strategy (``"incremental"`` or
    ``"reference"``); when ``None`` it comes from the
    ``REPRO_FLUID_SOLVER`` environment variable, defaulting to
    ``"incremental"``.  Both modes produce bit-identical rates,
    completion times and accounting integrals.
    """

    def __init__(self, engine: Engine, mode: Optional[str] = None):
        if mode is None:
            mode = os.environ.get(_MODE_ENV, "incremental")
        if mode not in _MODES:
            raise ValueError(f"unknown fluid solver mode {mode!r}; want one of {_MODES}")
        self.engine = engine
        self.mode = mode
        self._incremental = mode == "incremental"
        self._capacity: list[float] = []
        self._names: list[str] = []
        self._flows: dict[int, Flow] = {}
        self._next_fid = 0
        self._last_update = 0.0
        self._completion_token = None
        self._token_time = _INF
        self._recompute_pending = False
        self._dead_resources = 0  # resources currently at zero capacity
        # incremental-mode state: resource -> set of incident flow ids,
        # dirty seeds accumulated since the last recompute, and the lazy
        # completion heap of [t_done, fid, epoch] entries.
        self._res_flows: list[set[int]] = []
        self._dirty_fids: set[int] = set()
        self._dirty_rids: set[int] = set()
        self._cheap: list[list] = []
        # statistics
        self.total_flows = 0
        self.recomputes = 0
        #: flows handed to the progressive-filling kernel, summed over
        #: recomputes — the incremental mode's work metric (the reference
        #: mode counts every active flow at every recompute).
        self.kernel_flows_solved = 0
        #: solve-memo bookkeeping: a max-min allocation depends only on
        #: the component's structure (routes, weights, rate caps) and the
        #: current capacities — not on remaining bytes — so identical
        #: configurations (ubiquitous on tuning paths: warm iterations,
        #: per-segment pipeline rounds, repeated measurement runtimes)
        #: reuse the solved rates verbatim.  The memo is process-wide
        #: (keyed by the full capacity vector), so the many short-lived
        #: solvers an autotuning sweep creates share one warm cache.
        self.fill_cache_hits = 0
        self._fill_memo_on = _fill_memo_enabled()
        if self._fill_memo_on:
            _fill_memo_autoload()
        self._caps_key: Optional[tuple] = None  # lazy tuple(self._capacity)
        # route arrays arriving on the trusted fast path are cached,
        # immutable fabric plans — derive (res_list, res_key, res_unique)
        # once per distinct array object instead of per flow start.  The
        # cached array reference keeps the id() key stable and is checked
        # by identity before reuse.
        self._route_derived: dict[int, tuple] = {}
        # time-integrated accounting, maintained by _advance_accounting():
        # per-resource seconds with nonzero load, and bytes served.  The
        # instantaneous load vector (_load) is refreshed whenever rates
        # change (_recompute / last flow retired).
        self._load = np.zeros(0)
        self._busy_time = np.zeros(0)
        self._served_bytes = np.zeros(0)
        self._acct_tmp = np.zeros(0)
        # numpy mirror of _capacity, rebuilt lazily with the accounting
        # arrays (growing per add_resource is O(R^2) at topology build)
        self._cap_arr = np.zeros(0)
        #: False when every resource load is known zero (no active flows)
        #: — lets the per-event accounting integration skip its numpy work
        self._load_any = False
        # utilization counters go to this recorder; a recorder change
        # (attach/detach) forces a full re-emission so partial sampling
        # never hides a rid from a freshly attached observer.
        self._obs_last_recorder = None

    # -- resources -----------------------------------------------------------

    def add_resource(self, capacity: float, name: str = "") -> int:
        """Register a shared resource with ``capacity`` bytes/s; returns id."""
        if capacity <= 0:
            raise ValueError(f"resource capacity must be positive, got {capacity}")
        self._capacity.append(float(capacity))
        self._names.append(name)
        self._res_flows.append(set())
        self._caps_key = None  # capacity vector changed: new memo keyspace
        # accounting arrays grow lazily (_ensure_arrays): a paper-scale
        # fabric registers thousands of resources back to back
        return len(self._capacity) - 1

    def _ensure_arrays(self) -> None:
        """Grow the per-resource numpy arrays to match the resource count."""
        n = len(self._capacity)
        if self._load.size == n:
            return
        old = self._load.size
        for attr in ("_load", "_busy_time", "_served_bytes"):
            grown = np.zeros(n)
            grown[:old] = getattr(self, attr)
            setattr(self, attr, grown)
        self._cap_arr = np.asarray(self._capacity, dtype=np.float64)
        self._acct_tmp = np.zeros(n)  # scratch for _advance_accounting

    def resource_name(self, rid: int) -> str:
        return self._names[rid]

    @property
    def num_resources(self) -> int:
        return len(self._capacity)

    def capacity(self, rid: int) -> float:
        return self._capacity[rid]

    def set_capacity(self, rid: int, capacity: float) -> None:
        """Rescale a resource's capacity at the current simulated time.

        Bytes already drained at the old rates are accounted first, then
        a rate recomputation is requested, so in-flight flows see the new
        capacity from this instant on.  ``capacity`` may be 0.0 (a dead
        link): flows crossing the resource stall at rate zero and resume
        when a later :meth:`set_capacity` restores it.
        """
        self.set_capacities([(rid, capacity)])

    def set_capacities(self, updates: Iterable[tuple[int, float]]) -> None:
        """Apply a batch of ``(rid, capacity)`` rescales at the current time.

        Equivalent to calling :meth:`set_capacity` per pair, but advances
        the accounting integrals once and seeds a single recompute — the
        fault injectors use this for whole-fault-domain windows (a link
        flap touches every lane of a trunk at the same instant).
        """
        changed: list[tuple[int, float]] = []
        for rid, capacity in updates:
            if capacity < 0:
                raise ValueError(f"resource capacity must be >= 0, got {capacity}")
            if float(capacity) != self._capacity[rid]:
                changed.append((rid, float(capacity)))
        if not changed:
            return
        self._advance_accounting()
        for rid, capacity in changed:
            old = self._capacity[rid]
            self._dead_resources += (capacity == 0.0) - (old == 0.0)
            self._capacity[rid] = capacity
            self._cap_arr[rid] = capacity
            self._dirty_rids.add(rid)
        self._caps_key = None
        self._mark_dirty()

    def scale_capacity(self, rid: int, factor: float) -> None:
        """Multiply a resource's current capacity by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError(f"capacity factor must be >= 0, got {factor}")
        self.set_capacity(rid, self._capacity[rid] * factor)

    # -- flows ---------------------------------------------------------------

    def start_flow(
        self,
        nbytes: float,
        resources: Sequence[int],
        on_complete: Callable[[], None],
        rate_cap: float = _INF,
        weight: float = 1.0,
        label: str = "",
    ) -> int:
        """Begin transferring ``nbytes`` across ``resources``.

        ``on_complete`` fires (via the engine, at the completion instant)
        once the last byte has drained.  Zero-byte flows complete on the
        next timestep without touching the solver.
        """
        if nbytes < 0:
            raise ValueError(f"negative flow size {nbytes}")
        if type(resources) is np.ndarray and resources.dtype == np.intp:
            # trusted fast path: the fabric passes cached, pre-validated
            # route arrays (per-flow min/max reductions are a hot spot)
            rids = resources
        else:
            rids = np.asarray(resources, dtype=np.intp)
            if rids.size and (rids.min() < 0 or rids.max() >= len(self._capacity)):
                raise IndexError("flow references unknown resource id")
        if nbytes <= _EPS_BYTES or (rids.size == 0 and rate_cap == _INF):
            # Instantaneous: no bandwidth constraint applies.
            self.engine.schedule(0.0, on_complete)
            return -1
        fid = self._next_fid
        self._next_fid += 1
        self.total_flows += 1
        derived = self._route_derived.get(id(rids))
        if derived is None or derived[0] is not rids:
            res_list = rids.tolist()
            res_unique = list(dict.fromkeys(res_list))
            derived = (
                rids,
                res_list,
                tuple(res_list),
                res_unique,
                frozenset(res_list),
                np.asarray(res_unique, dtype=np.intp),
            )
            if rids is resources:  # only cache caller-owned (fabric) arrays
                self._route_derived[id(rids)] = derived
        flow = Flow(
            fid=fid,
            remaining=float(nbytes),
            resources=rids,
            rate_cap=float(rate_cap),
            on_complete=on_complete,
            weight=float(weight),
            drained_at=self.engine.now,
            res_list=derived[1],
        )
        flow.res_key = derived[2]
        flow.res_unique = derived[3]
        flow.res_uset = derived[4]
        flow.res_uarr = derived[5]
        # the solve-memo key fragment is invariant over the flow's life;
        # building it here (once) instead of per recompute matters when
        # the memo hit rate is high (~90% at paper scale)
        flow.memo_item = (derived[2], flow.rate_cap, flow.weight)
        self._flows[fid] = flow
        for rid in flow.res_unique:
            self._res_flows[rid].add(fid)
        self._dirty_fids.add(fid)
        obs = self.engine.obs
        if obs is not None:
            flow.meta["obs_t0"] = self.engine.now
            flow.meta["obs_label"] = label
            flow.meta["obs_nbytes"] = float(nbytes)
        self._mark_dirty()
        return fid

    def abort_flow(self, fid: int) -> None:
        """Drop a flow without firing its completion callback."""
        f = self._flows.pop(fid, None)
        if f is None:
            return
        self._advance_accounting()
        for rid in f.res_unique:
            self._res_flows[rid].discard(fid)
            self._dirty_rids.add(rid)
        self._dirty_fids.discard(fid)
        self._mark_dirty()

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rate(self, fid: int) -> float:
        """Current rate of a flow (bytes/s); 0.0 for completed/unknown fids.

        Completed and aborted flows — including the ``-1`` pseudo-fid of
        instantaneous flows — report 0.0 rather than raising, so callers
        may poll a saved fid without tracking completion themselves.
        """
        f = self._flows.get(fid)
        return f.rate if f is not None else 0.0

    def flow_remaining(self, fid: int) -> float:
        """Bytes a flow still has to transfer at the current instant.

        A non-committing view (the flow's drain state is not mutated);
        0.0 for completed/unknown fids.
        """
        f = self._flows.get(fid)
        if f is None:
            return 0.0
        rem = f.remaining - f.rate * (self.engine.now - f.drained_at)
        return rem if rem > 0.0 else 0.0

    # -- solver core -----------------------------------------------------------

    def _mark_dirty(self) -> None:
        """Request a rate recomputation at the end of this timestep."""
        if not self._recompute_pending:
            self._recompute_pending = True
            self.engine.schedule(0.0, self._recompute, priority=PRIORITY_LATE)

    def _advance_accounting(self) -> None:
        """Integrate per-resource accounting for the elapsed interval.

        ``_load`` holds the bytes/s crossing each resource over the
        interval since the last rate event (it was refreshed when rates
        last changed), so busy seconds and served bytes accumulate
        exactly — including across mid-flow capacity rescales, which
        call here *before* touching capacity.  Flow byte drains are kept
        separately, per flow, committed only at rate changes (see the
        module docstring).
        """
        dt = self.engine.now - self._last_update
        self._last_update = self.engine.now
        self._ensure_arrays()
        if dt <= 0 or not self._load_any:
            return
        load = self._load
        # in-place where= add and a reused scratch buffer: equivalent
        # elementwise operations to busy_time[load > 0] += dt and
        # served += load * dt, minus the index/temporary allocations
        np.add(self._busy_time, dt, out=self._busy_time, where=load > 0.0)
        np.multiply(load, dt, out=self._acct_tmp)
        np.add(self._served_bytes, self._acct_tmp, out=self._served_bytes)

    def _recompute(self) -> None:
        self._recompute_pending = False
        self.recomputes += 1
        self._advance_accounting()
        now = self.engine.now
        if self._incremental:
            due = self._pop_due(now)
        else:
            due = sorted(
                (f for f in self._flows.values() if f.t_done <= now),
                key=lambda f: f.fid,
            )
        if due:
            self._retire(due)
        if self._incremental:
            rid_arr = self._recompute_incremental()
        else:
            rid_arr = self._recompute_reference()
        obs = self.engine.obs
        if obs is not None:
            self._sample_utilization(obs, rid_arr)
        else:
            self._obs_last_recorder = None
        self._schedule_next()

    def _recompute_reference(self) -> None:
        """Global re-solve: all flows, all resources (the oracle path)."""
        self._dirty_fids.clear()
        self._dirty_rids.clear()
        flows = list(self._flows.values())  # fids are monotonic: dict order == fid order
        if flows:
            rid_index = np.arange(self.num_resources, dtype=np.intp)
            rates = self._progressive_fill(flows, rid_index)
            self._apply_rates(flows, rates, push_heap=False)
            self.kernel_flows_solved += len(flows)
        self._load[:] = 0.0
        for f in self._flows.values():
            if f.resources.size:
                self._load[f.resources] += f.rate
        self._load_any = bool(self._flows)
        return None

    def _recompute_incremental(self) -> Optional[np.ndarray]:
        """Re-solve only the component(s) touching the dirty seeds."""
        # Fast path: one freshly started flow sharing no resource with
        # any other — its component is itself, so the BFS, the sort and
        # the dict-based load refresh all collapse.  Produces the exact
        # arithmetic of the generic path restricted to one flow
        # (_progressive_fill dispatches singletons to _fill_single too).
        dirty_fids = self._dirty_fids
        if len(dirty_fids) == 1 and not self._dirty_rids:
            (fid,) = dirty_fids
            f = self._flows.get(fid)
            if f is not None and all(
                len(self._res_flows[rid]) == 1 for rid in f.res_unique
            ):
                dirty_fids.clear()
                self._apply_rates([f], self._fill_single(f), push_heap=True)
                self.kernel_flows_solved += 1
                load = self._load
                r = f.rate
                for rid in f.res_unique:
                    load[rid] = r
                self._load_any = True
                if self.engine.obs is None:
                    return None
                return np.fromiter(
                    sorted(f.res_unique), dtype=np.intp,
                    count=len(f.res_unique),
                )
        comp_fids, comp_rids = self._affected_component()
        self._dirty_fids.clear()
        self._dirty_rids.clear()
        if not comp_rids and not comp_fids:
            return None
        rid_arr = np.fromiter(sorted(comp_rids), dtype=np.intp, count=len(comp_rids))
        flows = [self._flows[fid] for fid in sorted(comp_fids)]
        if flows:
            rates = self._progressive_fill(flows, rid_arr)
            self._apply_rates(flows, rates, push_heap=True)
            self.kernel_flows_solved += len(flows)
        # Partial load refresh: by closure, every resource in rid_arr is
        # used only by component flows, so zero-then-readd reproduces the
        # full rebuild exactly.  A rid appearing twice in one flow
        # (intra-node double bus crossing) counts once, matching the
        # buffered fancy-indexed `+=` of the reference rebuild.
        # np.add.at applies its adds unbuffered, in index order, so each
        # rid accumulates in fid order with the identical IEEE adds a
        # per-flow scalar loop would perform.
        load = self._load
        if rid_arr.size:
            load[rid_arr] = 0.0
        if flows:
            nfl = len(flows)
            uarrs = [f.res_uarr for f in flows]
            counts = np.fromiter((a.size for a in uarrs), dtype=np.intp,
                                 count=nfl)
            per_flow = np.fromiter((f.rate for f in flows), dtype=np.float64,
                                   count=nfl)
            np.add.at(load, np.concatenate(uarrs), np.repeat(per_flow, counts))
        self._load_any = bool(self._flows)
        return rid_arr

    def _affected_component(self) -> tuple[set[int], set[int]]:
        """Closure of flows transitively sharing a resource with the seeds.

        Seeds are flows started since the last recompute (``_dirty_fids``)
        plus resources whose capacity changed or whose flows retired or
        aborted (``_dirty_rids``).  The returned rid set additionally
        contains flowless dirty rids (so their load/obs samples refresh).
        """
        flows = self._flows
        res_flows = self._res_flows
        # frontier expansion via C-level set unions: per level, gather
        # the frontier flows' resources (shared per-route frozensets),
        # then the flows incident to the newly seen resources.  Visits
        # the exact membership the scalar per-edge walk visited, ~3x
        # cheaper on the big components of paper-scale runs.
        seen_f: set[int] = set()
        seen_r: set[int] = set(self._dirty_rids)
        frontier: set[int] = {fid for fid in self._dirty_fids if fid in flows}
        for rid in self._dirty_rids:
            frontier |= res_flows[rid]
        while frontier:
            seen_f |= frontier
            new_r: set[int] = set()
            for fid in frontier:
                new_r |= flows[fid].res_uset
            new_r -= seen_r
            seen_r |= new_r
            frontier = set()
            for rid in new_r:
                frontier |= res_flows[rid]
            frontier -= seen_f
        return seen_f, seen_r

    def _pop_due(self, now: float) -> list[Flow]:
        """Pop every flow whose completion instant has arrived (fid order).

        Heap entries are lazily invalidated: an entry is live only if its
        fid is still active *and* its epoch matches the flow's (each rate
        commit bumps the epoch, orphaning older entries).
        """
        heap = self._cheap
        flows = self._flows
        due: list[Flow] = []
        while heap and heap[0][0] <= now:
            t, fid, epoch = heapq.heappop(heap)
            f = flows.get(fid)
            if f is not None and f.epoch == epoch:
                due.append(f)
        due.sort(key=lambda f: f.fid)
        return due

    def _retire(self, due: list[Flow]) -> None:
        """Remove finished flows and fire their completion callbacks.

        Callbacks run as normal-priority events *now* so any flows they
        start are folded into the same recompute batch (same-instant
        completions were already batched by the caller's due scan).
        """
        obs = self.engine.obs
        for f in due:
            del self._flows[f.fid]
            for rid in f.res_unique:
                self._res_flows[rid].discard(f.fid)
                self._dirty_rids.add(rid)
            if obs is not None and "obs_t0" in f.meta:
                self._emit_flow_spans(obs, f)
            self.engine.schedule(0.0, f.on_complete)

    def _apply_rates(
        self, flows: list[Flow], rates: np.ndarray, push_heap: bool
    ) -> None:
        """Commit newly solved rates; untouched rates commit nothing.

        The commit discipline is the heart of cross-mode bit-identity: a
        flow drains (remaining -= rate * dt) only here, and only when the
        solved rate *differs* from the current one.  Since disjoint
        components solve to identical values, a reference-mode global
        re-solve commits exactly the flows an incremental component
        re-solve commits, with identical operands.
        """
        now = self.engine.now
        cheap = self._cheap
        for f, r in zip(flows, rates.tolist()):
            if r == f.rate:
                continue
            rem = f.remaining - f.rate * (now - f.drained_at)
            f.remaining = rem if rem > 0.0 else 0.0
            f.drained_at = now
            f.rate = r
            f.epoch += 1
            if r > 0.0:
                f.t_done = now + f.remaining / r
                if push_heap:
                    heapq.heappush(cheap, [f.t_done, f.fid, f.epoch])
            else:
                f.t_done = _INF

    def _sample_utilization(self, obs, rid_arr: Optional[np.ndarray]) -> None:
        """Emit per-resource utilization counter samples (obs attached).

        ``rid_arr`` limits emission to the resources the recompute
        touched; unchanged resources would emit the identical value and
        be deduplicated by the recorder anyway.  A recorder change forces
        a full emission so fresh observers see every resource once.
        """
        if obs is not self._obs_last_recorder:
            self._obs_last_recorder = obs
            rid_arr = None
        cap = self._cap_arr
        util = np.divide(
            self._load, cap, out=np.zeros_like(self._load), where=cap > 0
        )
        rids = range(len(self._capacity)) if rid_arr is None else rid_arr.tolist()
        for rid in rids:
            obs.counter(
                f"res:{self._names[rid] or rid}", "utilization",
                round(float(util[rid]), 9),
            )

    def _emit_flow_spans(self, obs, f: Flow) -> None:
        """One completed span per distinct resource the flow crossed."""
        t0 = f.meta["obs_t0"]
        label = f.meta["obs_label"] or f"flow{f.fid}"
        nbytes = f.meta["obs_nbytes"]
        sid = -1
        for rid in f.res_unique:
            sid = obs.complete(
                f"res:{self._names[rid] or rid}", label,
                t0, self.engine.now, "flow", nbytes=nbytes, fid=f.fid,
            )
        # metrics plane: one observation per flow (not per resource), so
        # size/latency distributions count transfers, not route hops
        obs.flow_done(nbytes, self.engine.now - t0, sid=sid)

    def _progressive_fill(
        self, flows: list[Flow], rid_index: np.ndarray
    ) -> np.ndarray:
        """Vectorized progressive filling with per-flow rate caps.

        ``flows`` must be in fid order and ``rid_index`` a sorted array
        of the resource ids they (collectively) cross; returns the
        solved rate per flow.  Resource ids are remapped to positions in
        ``rid_index``, so a component solve performs the same
        per-resource accumulation sequences as a global solve restricted
        to that component — the remap changes array sizes, never operand
        values or order.
        """
        nf = len(flows)
        if nf == 1:
            return self._fill_single(flows[0])
        # Solve memo: rates depend only on routes, weights, rate caps and
        # capacities (never on remaining bytes), so an identical
        # configuration — same flows in the same fid order under the same
        # capacity vector — reuses the previously solved array verbatim
        # (bit-identical by construction: it *is* the kernel's output).
        # The rid_index is omitted from the key on purpose: resources
        # outside the flows' union carry no edges and cannot influence
        # the solution, and the remap preserves accumulation order.
        key = None
        if self._fill_memo_on:
            if self._caps_key is None:
                self._caps_key = tuple(self._capacity)
            key = (
                self._caps_key,
                tuple(f.memo_item for f in flows),
            )
            cached = _fill_memo_get(key)
            if cached is not None:
                self.fill_cache_hits += 1
                return cached
        lens = np.fromiter((f.resources.size for f in flows), dtype=np.intp, count=nf)
        caps_flow = np.fromiter((f.rate_cap for f in flows), dtype=np.float64, count=nf)
        weights = np.fromiter((f.weight for f in flows), dtype=np.float64, count=nf)
        if int(lens.sum()) == 0:
            if key is not None:
                _fill_memo_store(key, caps_flow)
            return caps_flow
        flat_global = np.concatenate([f.resources for f in flows if f.resources.size])
        flat_rids = np.searchsorted(rid_index, flat_global)
        flat_fids = np.repeat(np.arange(nf), lens)

        residual = self._cap_arr[rid_index]
        nr = rid_index.size
        rate = np.zeros(nf)
        active = np.ones(nf, dtype=bool)

        for _ in range(nr + nf + 1):
            act_edge = active[flat_fids]
            if not act_edge.any():
                break
            rids = flat_rids[act_edge]
            fids = flat_fids[act_edge]
            # Weighted fair share on each resource still carrying active flows.
            wsum = np.zeros(nr)
            np.add.at(wsum, rids, weights[fids])
            used = wsum > 0
            share = np.full(nr, _INF)
            share[used] = residual[used] / wsum[used]
            # Per-unit-weight allocation each active flow could get.
            flow_share = np.full(nf, _INF)
            np.minimum.at(flow_share, fids, share[rids])
            alloc = np.where(active, np.minimum(flow_share * weights, caps_flow), _INF)
            bottleneck = alloc[active].min()
            if not np.isfinite(bottleneck):
                # Remaining active flows are unconstrained (shouldn't happen
                # when every flow has at least one finite-capacity resource).
                rate[active] = caps_flow[active]
                break
            # Fix every flow whose allocation equals the bottleneck value.
            newly = active & (alloc <= bottleneck * (1 + 1e-12))
            rate[newly] = alloc[newly]
            # Subtract their usage from the residual capacities.
            edge_fixed = newly[flat_fids]
            np.add.at(residual, flat_rids[edge_fixed], -rate[flat_fids[edge_fixed]])
            np.clip(residual, 0.0, None, out=residual)
            active &= ~newly
            if not active.any():
                break

        if key is not None:
            _fill_memo_store(key, rate)
        return rate

    def _fill_single(self, f: Flow) -> np.ndarray:
        """Scalar progressive fill for a one-flow component.

        Bit-exact mirror of the vectorized kernel at ``nf == 1``: the
        per-resource weight sums accumulate one ``w`` per route
        occurrence in the same order as ``np.add.at``, the share minimum
        is order-independent, and every operation is an IEEE-754 double
        op identical to its numpy counterpart — so the solved rate is
        the same float the array path would produce.  Roughly a fifth of
        tuning-path fills are single-flow components; skipping the array
        setup there is a measurable win.
        """
        res = f.res_list
        if not res:
            return np.asarray([f.rate_cap])
        w = f.weight
        cap = self._cap_arr
        wsum: dict[int, float] = {}
        for rid in res:
            wsum[rid] = wsum.get(rid, 0.0) + w
        share = _INF
        for rid, ws in wsum.items():
            if ws > 0.0:
                s = cap[rid] / ws
                if s < share:
                    share = s
        alloc = share * w
        if f.rate_cap < alloc:
            alloc = f.rate_cap
        if not math.isfinite(alloc):
            # mirrors the kernel's unconstrained branch (and its NaN
            # handling for zero-weight flows): fall back to the cap
            alloc = f.rate_cap
        return np.asarray([alloc], dtype=np.float64)

    def _schedule_next(self) -> None:
        """(Re)arm the completion callback at the earliest ``t_done``.

        The incremental mode peeks the lazy heap (discarding orphaned
        entries); the reference mode scans every flow.  Both modes place
        the instant on the engine heap *exactly* (``schedule_at``), so a
        completion fires at the bit-identical time in either mode.
        """
        if not self._flows:
            if self._completion_token is not None:
                self.engine.cancel(self._completion_token)
                self._completion_token = None
            return
        if self._incremental:
            heap = self._cheap
            flows = self._flows
            t_next = _INF
            while heap:
                t, fid, epoch = heap[0]
                f = flows.get(fid)
                if f is not None and f.epoch == epoch:
                    t_next = t
                    break
                heapq.heappop(heap)
        else:
            t_next = min(f.t_done for f in self._flows.values())
        if not math.isfinite(t_next):
            if self._completion_token is not None:
                self.engine.cancel(self._completion_token)
                self._completion_token = None
            if self._dead_resources:
                # Flows stalled on a zero-capacity (dead) resource are
                # legitimate: a later set_capacity() restore re-triggers
                # the recompute and they resume where they left off.
                return
            raise RuntimeError(
                "fluid solver stall: active flow with zero rate and no "
                "pending capacity change"
            )
        if self._completion_token is not None:
            if self._token_time == t_next:
                # the earliest completion is unchanged; the pending token
                # already targets it — skip the cancel/reschedule churn
                return
            self.engine.cancel(self._completion_token)
        self._completion_token = self.engine.schedule_at(
            t_next, self._on_token, priority=PRIORITY_LATE
        )
        self._token_time = t_next

    def _on_token(self) -> None:
        # the token just fired off the engine heap; forget it *before*
        # recomputing so _schedule_next never "reuses" a consumed token
        self._completion_token = None
        self._recompute()

    # -- introspection ---------------------------------------------------------

    def kernel_stats(self) -> dict:
        """Solver work counters for benchmarks and obs snapshots."""
        return {
            "mode": self.mode,
            "recomputes": self.recomputes,
            "kernel_flows_solved": self.kernel_flows_solved,
            "total_flows": self.total_flows,
            "fill_cache_hits": self.fill_cache_hits,
        }

    def sync_accounting(self) -> None:
        """Fold the interval since the last rate event into the integrals.

        The busy-time integrals advance lazily (at rate-change events);
        call this before reading them mid-run.  Idempotent, and does not
        perturb the simulation: flow drain state is untouched (remaining
        bytes are committed per flow, at rate changes only).
        """
        self._advance_accounting()

    def busy_time(self, rid: int) -> float:
        """Seconds (up to the last sync) the resource carried any flow.

        This is the *time-integrated* busy measure the observability
        timeline uses — unlike :meth:`utilization`, which reports only
        the instantaneous rates at the moment of the call.
        """
        self._ensure_arrays()
        return float(self._busy_time[rid])

    def served_bytes(self, rid: int) -> float:
        """Total bytes that crossed the resource (up to the last sync)."""
        self._ensure_arrays()
        return float(self._served_bytes[rid])

    def mean_utilization(self, rid: int, horizon: Optional[float] = None) -> float:
        """Served bytes over ``capacity * horizon`` (default: now).

        Uses the resource's *current* capacity; under mid-run rescales
        this is an approximation, while :meth:`busy_time` stays exact.
        """
        self._ensure_arrays()
        h = self.engine.now if horizon is None else horizon
        cap = self._capacity[rid]
        if h <= 0 or cap <= 0:
            return 0.0
        return float(self._served_bytes[rid]) / (cap * h)

    def utilization(self) -> np.ndarray:
        """Instantaneous fraction of each resource's capacity in use."""
        self._ensure_arrays()
        load = np.zeros(self.num_resources)
        for f in self._flows.values():
            if f.resources.size:
                load[f.resources] += f.rate
        cap = self._cap_arr
        # dead (zero-capacity) resources report zero utilization
        return np.divide(load, cap, out=np.zeros_like(load), where=cap > 0)
