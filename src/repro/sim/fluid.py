"""Max-min fair-share fluid bandwidth allocator.

Data transfers in the simulator are *flows*: an amount of bytes crossing a
set of shared *resources* (NIC tx/rx channels, network links, per-node
memory buses).  At any instant, every active flow receives a rate decided
by progressive filling (max-min fairness): the most contended resource is
saturated first, flows through it are fixed at the fair share, and the
procedure repeats on the residual network.  This is the classic flow-level
network model (as used by e.g. SimGrid) and is what produces, without any
hand-tuned constants:

- fair bandwidth sharing and *congestion at a process* when many flows hit
  one NIC (the effect of [Gropp et al., EuroMPI'16] cited by the paper);
- *imperfect overlap* between inter-node (`ib`) and intra-node (`sb`)
  broadcasts when both touch the same memory bus (paper section III-A2).

Each flow may additionally carry a private ``rate_cap`` (bytes/s),
modelling the achievable point-to-point bandwidth of the MPI library for a
given message size (the `P2PProfile` of Fig 11); a cap is just an extra
single-flow resource.

The solver is event-driven: on every batch of flow arrivals/departures the
rates are recomputed (vectorized over numpy arrays) and a single
"next completion" callback is (re)scheduled on the engine.  Same-instant
arrivals are batched through a `PRIORITY_LATE` callback so a collective
step that starts P flows triggers one recomputation, not P.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.sim.engine import Engine, PRIORITY_LATE

__all__ = ["FluidSolver", "Flow"]

_EPS_BYTES = 1e-6  # flows with fewer remaining bytes are considered done
_INF = math.inf


@dataclass
class Flow:
    """One active data transfer inside the fluid solver."""

    fid: int
    remaining: float  # bytes still to transfer
    resources: np.ndarray  # resource ids this flow crosses (may be empty)
    rate_cap: float  # private upper bound on rate (bytes/s), inf if none
    on_complete: Callable[[], None]
    rate: float = 0.0  # current allocated rate, maintained by the solver
    weight: float = 1.0  # share weight on contended resources
    meta: dict = field(default_factory=dict)


class FluidSolver:
    """Shared-bandwidth network state attached to a simulation engine.

    Resources are created once (topology build time) via
    :meth:`add_resource`; flows come and go via :meth:`start_flow`.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self._capacity: list[float] = []
        self._names: list[str] = []
        self._flows: dict[int, Flow] = {}
        self._next_fid = 0
        self._last_update = 0.0
        self._completion_token = None
        self._recompute_pending = False
        self._dead_resources = 0  # resources currently at zero capacity
        # statistics
        self.total_flows = 0
        self.recomputes = 0
        # time-integrated accounting, maintained by _advance_to_now():
        # per-resource seconds with nonzero load, and bytes served.  The
        # instantaneous load vector (_load) is refreshed whenever rates
        # change (_solve_rates / last flow retired).
        self._load = np.zeros(0)
        self._busy_time = np.zeros(0)
        self._served_bytes = np.zeros(0)

    # -- resources -----------------------------------------------------------

    def add_resource(self, capacity: float, name: str = "") -> int:
        """Register a shared resource with ``capacity`` bytes/s; returns id."""
        if capacity <= 0:
            raise ValueError(f"resource capacity must be positive, got {capacity}")
        self._capacity.append(float(capacity))
        self._names.append(name)
        n = len(self._capacity)
        self._load = np.resize(self._load, n)
        self._load[n - 1] = 0.0
        self._busy_time = np.resize(self._busy_time, n)
        self._busy_time[n - 1] = 0.0
        self._served_bytes = np.resize(self._served_bytes, n)
        self._served_bytes[n - 1] = 0.0
        return n - 1

    def resource_name(self, rid: int) -> str:
        return self._names[rid]

    @property
    def num_resources(self) -> int:
        return len(self._capacity)

    def capacity(self, rid: int) -> float:
        return self._capacity[rid]

    def set_capacity(self, rid: int, capacity: float) -> None:
        """Rescale a resource's capacity at the current simulated time.

        Bytes already drained at the old rates are accounted first, then
        a rate recomputation is requested, so in-flight flows see the new
        capacity from this instant on.  ``capacity`` may be 0.0 (a dead
        link): flows crossing the resource stall at rate zero and resume
        when a later :meth:`set_capacity` restores it.
        """
        if capacity < 0:
            raise ValueError(f"resource capacity must be >= 0, got {capacity}")
        old = self._capacity[rid]
        if capacity == old:
            return
        self._advance_to_now()
        self._dead_resources += (capacity == 0.0) - (old == 0.0)
        self._capacity[rid] = float(capacity)
        self._mark_dirty()

    def scale_capacity(self, rid: int, factor: float) -> None:
        """Multiply a resource's current capacity by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError(f"capacity factor must be >= 0, got {factor}")
        self.set_capacity(rid, self._capacity[rid] * factor)

    # -- flows ---------------------------------------------------------------

    def start_flow(
        self,
        nbytes: float,
        resources: Sequence[int],
        on_complete: Callable[[], None],
        rate_cap: float = _INF,
        weight: float = 1.0,
        label: str = "",
    ) -> int:
        """Begin transferring ``nbytes`` across ``resources``.

        ``on_complete`` fires (via the engine, at the completion instant)
        once the last byte has drained.  Zero-byte flows complete on the
        next timestep without touching the solver.
        """
        if nbytes < 0:
            raise ValueError(f"negative flow size {nbytes}")
        rids = np.asarray(resources, dtype=np.intp)
        if rids.size and (rids.min() < 0 or rids.max() >= len(self._capacity)):
            raise IndexError("flow references unknown resource id")
        if nbytes <= _EPS_BYTES or (rids.size == 0 and rate_cap == _INF):
            # Instantaneous: no bandwidth constraint applies.
            self.engine.schedule(0.0, on_complete)
            return -1
        fid = self._next_fid
        self._next_fid += 1
        self.total_flows += 1
        flow = Flow(
            fid=fid,
            remaining=float(nbytes),
            resources=rids,
            rate_cap=float(rate_cap),
            on_complete=on_complete,
            weight=float(weight),
        )
        self._flows[fid] = flow
        obs = self.engine.obs
        if obs is not None:
            flow.meta["obs_t0"] = self.engine.now
            flow.meta["obs_label"] = label
            flow.meta["obs_nbytes"] = float(nbytes)
        self._mark_dirty()
        return fid

    def abort_flow(self, fid: int) -> None:
        """Drop a flow without firing its completion callback."""
        if fid in self._flows:
            self._advance_to_now()
            del self._flows[fid]
            self._mark_dirty()

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rate(self, fid: int) -> float:
        """Current rate of an active flow (bytes/s); 0.0 if unknown."""
        f = self._flows.get(fid)
        return f.rate if f is not None else 0.0

    # -- solver core -----------------------------------------------------------

    def _mark_dirty(self) -> None:
        """Request a rate recomputation at the end of this timestep."""
        if not self._recompute_pending:
            self._recompute_pending = True
            self.engine.schedule(0.0, self._recompute, priority=PRIORITY_LATE)

    def _advance_to_now(self) -> None:
        """Drain bytes for the interval since the last update.

        Also integrates the per-resource accounting: ``_load`` holds the
        bytes/s crossing each resource over the elapsed interval (it was
        refreshed when the rates last changed), so busy seconds and
        served bytes accumulate exactly — including across mid-flow
        capacity rescales, which call here *before* touching capacity.
        """
        dt = self.engine.now - self._last_update
        self._last_update = self.engine.now
        if dt <= 0:
            return
        for f in self._flows.values():
            f.remaining -= f.rate * dt
            if f.remaining < 0:
                f.remaining = 0.0
        busy = self._load > 0.0
        self._busy_time[busy] += dt
        self._served_bytes += self._load * dt

    def _refresh_load(self) -> None:
        """Recompute the instantaneous per-resource load vector."""
        self._load[:] = 0.0
        for f in self._flows.values():
            if f.resources.size:
                self._load[f.resources] += f.rate

    def _recompute(self) -> None:
        self._recompute_pending = False
        self.recomputes += 1
        self._advance_to_now()
        self._complete_finished()
        if self._flows:
            self._solve_rates()
        self._refresh_load()
        obs = self.engine.obs
        if obs is not None:
            self._sample_utilization(obs)
        self._schedule_completion()

    def _sample_utilization(self, obs) -> None:
        """Emit per-resource utilization counter samples (obs attached)."""
        cap = np.asarray(self._capacity)
        util = np.divide(
            self._load, cap, out=np.zeros_like(self._load), where=cap > 0
        )
        for rid in range(len(self._capacity)):
            obs.counter(
                f"res:{self._names[rid] or rid}", "utilization",
                round(float(util[rid]), 9),
            )

    def _complete_finished(self) -> None:
        # A flow is done when its residue is below the absolute epsilon,
        # OR when finishing it would take less than a float ulp of the
        # current time -- at large simulated times (seconds), a dribble
        # of 1e-5 bytes at GB/s rates has a completion horizon below the
        # representable time step, which would loop forever otherwise.
        tiny_t = 4.0 * math.ulp(max(self.engine.now, 1e-9))
        done = [
            f
            for f in self._flows.values()
            if f.remaining <= _EPS_BYTES
            or (f.rate > 0 and f.remaining <= f.rate * tiny_t)
        ]
        obs = self.engine.obs
        for f in done:
            del self._flows[f.fid]
            if obs is not None and "obs_t0" in f.meta:
                self._emit_flow_spans(obs, f)
            # Completion callbacks run as normal-priority events *now* so any
            # flows they start are folded into the same recompute batch.
            self.engine.schedule(0.0, f.on_complete)

    def _emit_flow_spans(self, obs, f: Flow) -> None:
        """One completed span per distinct resource the flow crossed."""
        t0 = f.meta["obs_t0"]
        label = f.meta["obs_label"] or f"flow{f.fid}"
        nbytes = f.meta["obs_nbytes"]
        for rid in dict.fromkeys(f.resources.tolist()):
            obs.complete(
                f"res:{self._names[rid] or rid}", label,
                t0, self.engine.now, "flow", nbytes=nbytes, fid=f.fid,
            )

    def _solve_rates(self) -> None:
        """Vectorized progressive filling with per-flow rate caps."""
        flows = list(self._flows.values())
        nf = len(flows)
        # Flatten the flow->resource incidence.
        lens = np.fromiter((f.resources.size for f in flows), dtype=np.intp, count=nf)
        caps_flow = np.fromiter((f.rate_cap for f in flows), dtype=np.float64, count=nf)
        weights = np.fromiter((f.weight for f in flows), dtype=np.float64, count=nf)
        if int(lens.sum()) == 0:
            for f, c in zip(flows, caps_flow):
                f.rate = c
            return
        flat_rids = np.concatenate([f.resources for f in flows if f.resources.size])
        flat_fids = np.repeat(np.arange(nf), lens)

        residual = np.asarray(self._capacity, dtype=np.float64).copy()
        rate = np.zeros(nf)
        active = np.ones(nf, dtype=bool)

        for _ in range(self.num_resources + nf + 1):
            act_edge = active[flat_fids]
            if not act_edge.any():
                break
            rids = flat_rids[act_edge]
            fids = flat_fids[act_edge]
            # Weighted fair share on each resource still carrying active flows.
            wsum = np.zeros(len(residual))
            np.add.at(wsum, rids, weights[fids])
            used = wsum > 0
            share = np.full(len(residual), _INF)
            share[used] = residual[used] / wsum[used]
            # Per-unit-weight allocation each active flow could get.
            flow_share = np.full(nf, _INF)
            np.minimum.at(flow_share, fids, share[rids])
            alloc = np.where(active, np.minimum(flow_share * weights, caps_flow), _INF)
            bottleneck = alloc[active].min()
            if not np.isfinite(bottleneck):
                # Remaining active flows are unconstrained (shouldn't happen
                # when every flow has at least one finite-capacity resource).
                rate[active] = caps_flow[active]
                break
            # Fix every flow whose allocation equals the bottleneck value.
            newly = active & (alloc <= bottleneck * (1 + 1e-12))
            rate[newly] = alloc[newly]
            # Subtract their usage from the residual capacities.
            edge_fixed = newly[flat_fids]
            np.add.at(residual, flat_rids[edge_fixed], -rate[flat_fids[edge_fixed]])
            np.clip(residual, 0.0, None, out=residual)
            active &= ~newly
            if not active.any():
                break

        for f, r in zip(flows, rate):
            f.rate = float(r)

    def _schedule_completion(self) -> None:
        if self._completion_token is not None:
            Engine.cancel(self._completion_token)
            self._completion_token = None
        if not self._flows:
            return
        horizon = min(
            (f.remaining / f.rate if f.rate > 0 else _INF)
            for f in self._flows.values()
        )
        if not math.isfinite(horizon):
            if self._dead_resources:
                # Flows stalled on a zero-capacity (dead) resource are
                # legitimate: a later set_capacity() restore re-triggers
                # the recompute and they resume where they left off.
                return
            raise RuntimeError(
                "fluid solver stall: active flow with zero rate and no "
                "pending capacity change"
            )
        # Ensure the completion event lands at a representable later time;
        # sub-ulp horizons are handled by the dribble rule above on the
        # immediately following recompute.
        # A sub-ulp horizon schedules at the same instant; the following
        # recompute then retires the flow via the dribble rule (its
        # remaining bytes are below rate * ulp), so progress is guaranteed.
        self._completion_token = self.engine.schedule(
            max(horizon, 0.0), self._recompute, priority=PRIORITY_LATE
        )

    # -- introspection ---------------------------------------------------------

    def sync_accounting(self) -> None:
        """Fold the interval since the last rate event into the integrals.

        The busy-time integrals advance lazily (at rate-change events);
        call this before reading them mid-run.  Idempotent, and does not
        perturb the simulation: it drains exactly the bytes the active
        rates would have drained anyway.
        """
        self._advance_to_now()

    def busy_time(self, rid: int) -> float:
        """Seconds (up to the last sync) the resource carried any flow.

        This is the *time-integrated* busy measure the observability
        timeline uses — unlike :meth:`utilization`, which reports only
        the instantaneous rates at the moment of the call.
        """
        return float(self._busy_time[rid])

    def served_bytes(self, rid: int) -> float:
        """Total bytes that crossed the resource (up to the last sync)."""
        return float(self._served_bytes[rid])

    def mean_utilization(self, rid: int, horizon: Optional[float] = None) -> float:
        """Served bytes over ``capacity * horizon`` (default: now).

        Uses the resource's *current* capacity; under mid-run rescales
        this is an approximation, while :meth:`busy_time` stays exact.
        """
        h = self.engine.now if horizon is None else horizon
        cap = self._capacity[rid]
        if h <= 0 or cap <= 0:
            return 0.0
        return float(self._served_bytes[rid]) / (cap * h)

    def utilization(self) -> np.ndarray:
        """Instantaneous fraction of each resource's capacity in use."""
        load = np.zeros(self.num_resources)
        for f in self._flows.values():
            if f.resources.size:
                load[f.resources] += f.rate
        cap = np.asarray(self._capacity)
        # dead (zero-capacity) resources report zero utilization
        return np.divide(load, cap, out=np.zeros_like(load), where=cap > 0)
