"""Deterministic discrete-event engine with generator-based processes.

Simulated processes are Python generators that ``yield`` *commands*; the
engine interprets each command, and resumes the generator
(``gen.send(value)``) when the command completes.  Sub-routines compose
with plain ``yield from``, so collective algorithms read like
straight-line MPI code.

Commands understood by the engine:

``Sleep(dt)``
    Suspend the process for ``dt`` simulated seconds.
``SimEvent``
    Suspend until the event is succeeded; ``succeed(value)`` resumes every
    waiter with ``value``.
``AnyOf(events)`` / ``AllOf(events)``
    Composite waits (used to build ``MPI_Waitany`` / ``MPI_Waitall``).
``Spawn(gen)``
    Start a child process *on the same simulated rank* and resume
    immediately with its :class:`SimProcess` handle.  This is how
    non-blocking collectives (Libnbc / ADAPT schedules) run concurrently
    with the caller while still sharing the rank's CPU progress engine.
``Join(proc)``
    Suspend until the given child process finishes; resumes with the
    child's return value.

Determinism: events at equal timestamps are processed in (priority,
sequence-number) order, so repeated runs are bit-identical.  ``priority``
lets the fluid solver batch same-instant flow arrivals into a single
rate recomputation (see :mod:`repro.sim.fluid`).

Event queue
-----------

The queue is a slot table of parallel lists (``time``, a packed
``priority``/``seq`` key, ``cancelled``, callback), drained by one of
two kernels (``REPRO_ENGINE_KERNEL`` or the ``kernel=`` constructor
argument):

``batched`` (default)
    Two-tier queue.  Freshly scheduled entries land in a small C-level
    ``heapq`` (*side* tier); once the side tier outgrows a threshold it
    is merged into a time-sorted numpy index (*bulk* tier) with one
    stable ``argsort``.  The run loop retires *all* entries due at the
    same instant in one pass: a ``searchsorted`` slices the due span out
    of the bulk tier, one ``lexsort`` orders it by (priority, seq), and
    a two-way merge walk interleaves side-tier entries (including ones
    scheduled *during* the batch) in the same total order.  ``now``
    advances once per batch instead of once per event.

``scalar``
    The classic one-event-at-a-time heap loop, kept as the differential
    baseline: both kernels share the slot table and must produce
    bit-identical results (same ``events`` count, same final time, same
    execution order) — the test suite runs the fluid differential
    schedules under both.

Cancellation is lazy (``cancel`` flips the slot's ``cancelled`` flag),
but unlike a pure lazy-deletion heap the table *compacts*: when
cancelled entries reach half the pending queue the bulk tier is rebuilt
through one boolean mask and the side tier is re-heapified without the
dead entries, so schedule-then-cancel workloads (fault injectors, flow
epoch bumps) cannot grow the queue without bound.
"""

from __future__ import annotations

import gc
import heapq
import os
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlockError",
    "Engine",
    "Join",
    "SimEvent",
    "SimProcess",
    "Sleep",
    "Spawn",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]

# Priorities for same-timestamp ordering.  "Late" callbacks (fluid-rate
# recomputation) run after every normal event scheduled for the same instant.
PRIORITY_NORMAL = 0
PRIORITY_LATE = 1

#: environment override for the default event-loop kernel (benchmark A/B
#: switch; the differential suite runs both and compares bit-for-bit)
_KERNEL_ENV = "REPRO_ENGINE_KERNEL"
_KERNELS = ("batched", "scalar")

#: side-tier size that triggers a merge into the sorted bulk tier.  Runs
#: whose pending set never reaches this stay pure-heapq and pay no numpy
#: cost at all; paper-scale runs (8k+ pending entries) amortize the merge
#: over thousands of retirements.
_FLUSH_THRESHOLD = 2048

#: compaction trigger: at least this many cancelled entries *and* at
#: least half the pending queue cancelled (amortized O(1) per cancel)
_COMPACT_MIN = 64


class DeadlockError(RuntimeError):
    """Raised when the event heap drains while processes are still blocked."""


# Command dataclasses use ``slots`` but not ``frozen``: frozen's
# ``object.__setattr__`` init path is ~3x slower and these are built on
# the hot path (one Sleep per shared-memory hop).  Treat as immutable.


@dataclass(slots=True)
class Sleep:
    """Command: suspend the issuing process for ``dt`` simulated seconds."""

    dt: float


@dataclass(slots=True)
class Spawn:
    """Command: start ``gen`` as a child process; resume with its handle."""

    gen: Generator
    name: str = ""


@dataclass(slots=True)
class Join:
    """Command: wait for a spawned :class:`SimProcess` to finish."""

    proc: "SimProcess"


class SimEvent:
    """One-shot event; processes wait on it, someone succeeds it once.

    The value passed to :meth:`succeed` becomes the result of the ``yield``
    in every waiting process.
    """

    __slots__ = ("engine", "name", "triggered", "value", "_waiters", "callbacks")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: list[SimProcess] = []
        # Plain callables invoked (synchronously, in order) on success;
        # used by AnyOf/AllOf and by the MPI request layer.
        self.callbacks: list[Callable[["SimEvent"], None]] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} succeeded twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        cbs = self.callbacks
        if cbs:
            # detach before firing: composite-wait closures capture the
            # event list that contains this event, so a populated
            # callbacks list is a reference *cycle* — left in place, every
            # completed wait becomes collector-only garbage (~1M cyclic
            # objects per paper-scale run).  Detaching also preserves the
            # old iterate-over-a-copy semantics: mutations during firing
            # hit the fresh list and cannot affect this iteration.
            self.callbacks = []
            if len(cbs) == 1:
                cbs[0](self)
            else:
                for cb in cbs:
                    cb(self)
        if waiters:
            resume = self.engine._resume
            for proc in waiters:
                resume(proc, value)

    def _add_waiter(self, proc: "SimProcess") -> None:
        if self.triggered:
            self.engine._resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class AnyOf:
    """Composite command: resume when *any* of ``events`` has triggered.

    Resumes with ``(index, value)`` of the first event (already-triggered
    events win immediately, lowest index first).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[SimEvent]):
        self.events = events if type(events) is list else list(events)


class AllOf:
    """Composite command: resume when *all* of ``events`` have triggered.

    Resumes with the list of event values, in order.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[SimEvent]):
        self.events = events if type(events) is list else list(events)


class SimProcess:
    """Handle for a running generator-based simulated process."""

    __slots__ = (
        "engine", "gen", "name", "finished", "result", "done_event",
        "error", "children",
    )

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_event = SimEvent(engine, name=f"done:{name}")
        #: processes this one spawned while running (in spawn order);
        #: lets :meth:`Engine.kill` retire a whole process tree so no
        #: orphaned helper (e.g. a non-blocking collective's scheduler
        #: process) is left blocked forever
        self.children: list["SimProcess"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<SimProcess {self.name!r} {state}>"


#: cancellation token: (slot index, packed key).  The key makes the
#: token single-use — once the entry fires, is cancelled, or its slot is
#: recycled, the stored key no longer matches and cancel() is a no-op.
Token = tuple  # (slot, key)

#: priority and sequence number share one packed int: ``key = priority
#: << _PRIO_SHIFT | seq``, so a single integer compare (or one
#: ``np.argsort``) yields (priority, seq) order directly.  The shift is
#: 48 (not 56) so any realistic key stays below 2**53 and survives the
#: float64 round trip through ``np.asarray(side)`` exactly: priorities
#: are tiny (0/1) and 2**48 sequence numbers is ~3 000 years of
#: paper-scale simulation.
_PRIO_SHIFT = 48


class Engine:
    """The discrete-event loop.

    Typical use::

        eng = Engine()
        def prog():
            yield Sleep(1.0)
            return 42
        p = eng.spawn(prog(), name="p0")
        eng.run()
        assert p.result == 42 and eng.now == 1.0
    """

    #: process-wide event counter (sum over every engine instance); lets
    #: benchmark harnesses compute events/sec across runtimes they never
    #: see (e.g. the ones :func:`measure_collective` creates internally)
    events_total: int = 0

    def __init__(self, kernel: Optional[str] = None) -> None:
        if kernel is None:
            kernel = os.environ.get(_KERNEL_ENV, "batched")
        if kernel not in _KERNELS:
            raise ValueError(
                f"unknown engine kernel {kernel!r}; want one of {_KERNELS}"
            )
        self.kernel = kernel
        self._batched = kernel == "batched"
        self.now: float = 0.0
        self._seq: int = 0
        #: events executed by this engine instance
        self.events: int = 0
        #: distinct retirement batches (instants with >= 1 executed event)
        self.batches: int = 0
        # -- slot table: parallel plain lists ----------------------------
        # Plain lists, not numpy columns: per-entry scalar stores/loads
        # dominate here and are ~3x cheaper on lists, while every bulk
        # numpy operation the batched kernel needs works off the side
        # tuples / bulk-tier arrays instead.  Lists also grow in place
        # (extend), so the run loops may alias them safely.
        cap = 1024
        self._q_time: list[float] = [0.0] * cap
        self._q_key: list[int] = [-1] * cap  # priority << _PRIO_SHIFT | seq
        self._q_cancelled: list[bool] = [False] * cap
        self._q_fn: list[Optional[Callable[[], None]]] = [None] * cap
        self._free: list[int] = list(range(cap - 1, -1, -1))
        # -- side tier: C heap of (time, key, slot) ----------------------
        self._side: list[tuple] = []
        # -- bulk tier: (slot, time, key) arrays sorted by time, consumed
        #    from _shead; built straight from the side tuples at flush --
        self._sorted = np.empty(0, np.intp)
        self._sorted_t = np.empty(0, np.float64)
        self._sorted_k = np.empty(0, np.int64)
        self._shead = 0
        self._ncancelled = 0
        self._live_procs: int = 0
        # live processes, for deadlock diagnostics: when the heap drains,
        # every unfinished process is by definition blocked, so a
        # spawn/finish registry replaces per-block bookkeeping (which
        # cost two dict ops on every suspend/resume)
        self._procs: dict[int, SimProcess] = {}
        # the process whose generator is currently executing (None
        # between steps); spawns made while it runs are recorded as its
        # children so kill() can retire whole process trees
        self._running: Optional[SimProcess] = None
        self.trace_hook: Optional[Callable[[float, str, str], None]] = None
        #: Optional perturbation hook ``(kind, who, duration) -> duration``
        #: consulted by components that charge simulated time (the per-rank
        #: progress servers with ``kind="cpu"`` and the fabric's message
        #: latencies with ``kind="net_latency"``).  ``who`` is the rank the
        #: cost is charged to.  ``None`` (the default) leaves every duration
        #: untouched, so runs without an installed hook are bit-identical
        #: to builds that predate it.  Fault injectors
        #: (:mod:`repro.faults`) install a dispatcher here.
        self.overhead_hook: Optional[Callable[[str, int, float], float]] = None
        #: Optional observability recorder (:mod:`repro.obs`).  Every
        #: instrumented component guards its emission with a single
        #: ``engine.obs is not None`` test, so a run without a recorder
        #: attached is bit-identical to (and as fast as) an uninstrumented
        #: build.
        self.obs: Optional[Any] = None

    # -- scheduling --------------------------------------------------------

    def _grow(self) -> None:
        cap = len(self._q_fn)
        new_cap = cap * 2
        self._q_time.extend([0.0] * cap)
        self._q_key.extend([-1] * cap)
        self._q_cancelled.extend([False] * cap)
        self._q_fn.extend([None] * cap)
        self._free.extend(range(new_cap - 1, cap - 1, -1))

    # NOTE: schedule() and schedule_at() duplicate the push body on
    # purpose — one of them runs for every single event, and the extra
    # call layer of a shared _push() helper is measurable at paper scale.

    def schedule(
        self, delay: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> Token:
        """Run ``fn()`` after ``delay`` seconds; returns a cancellable token."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        time = self.now + delay
        free = self._free
        if not free:
            self._grow()
            free = self._free
        slot = free.pop()
        seq = self._seq
        self._seq = seq + 1
        key = (priority << _PRIO_SHIFT) | seq
        self._q_time[slot] = time
        self._q_key[slot] = key
        self._q_fn[slot] = fn
        heapq.heappush(self._side, (time, key, slot))
        return (slot, key)

    def schedule_at(
        self, when: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> Token:
        """Run ``fn()`` at absolute simulated time ``when``.

        ``when`` lands on the heap *exactly* (not via a ``now + (when -
        now)`` round trip, which can be off by an ulp) — the fluid
        solver relies on this so that a flow-completion event fires at
        the bit-identical instant regardless of how many unrelated
        events were processed in between.
        """
        if when < self.now:
            raise ValueError(f"schedule_at({when}) is in the past (now={self.now})")
        free = self._free
        if not free:
            self._grow()
            free = self._free
        slot = free.pop()
        seq = self._seq
        self._seq = seq + 1
        key = (priority << _PRIO_SHIFT) | seq
        self._q_time[slot] = when
        self._q_key[slot] = key
        self._q_fn[slot] = fn
        heapq.heappush(self._side, (when, key, slot))
        return (slot, key)

    def cancel(self, token: Token) -> None:
        """Cancel a previously scheduled callback.

        Safe to call on tokens whose entry already fired (or was already
        cancelled): the per-slot seq check turns those into no-ops.
        Deletion is lazy — the entry is flagged and skipped at
        retirement — but the queue compacts once cancelled entries reach
        half the pending set, so cancel-heavy workloads stay bounded.
        """
        slot, key = token
        if self._q_key[slot] != key or self._q_cancelled[slot]:
            return
        self._q_cancelled[slot] = True
        self._q_fn[slot] = None  # release the closure now, not at pop
        self._ncancelled += 1
        pending = (self._sorted_t.size - self._shead) + len(self._side)
        if self._ncancelled >= _COMPACT_MIN and self._ncancelled * 2 >= pending:
            self._compact()

    def _free_slot(self, slot: int) -> None:
        self._q_key[slot] = -1
        self._q_cancelled[slot] = False
        self._q_fn[slot] = None
        self._free.append(slot)

    def _compact(self) -> None:
        """Drop cancelled entries from both tiers (one mask + one heapify)."""
        q_can = self._q_cancelled
        shead = self._shead
        rem = self._sorted[shead:]
        if rem.size:
            rem_list = rem.tolist()
            dead_mask = np.fromiter(
                (q_can[s] for s in rem_list), np.bool_, rem.size
            )
            if dead_mask.any():
                keep = ~dead_mask
                self._sorted_t = self._sorted_t[shead:][keep]
                self._sorted_k = self._sorted_k[shead:][keep]
                self._sorted = rem[keep]
                self._shead = 0
                q_key = self._q_key
                q_fn = self._q_fn
                free = self._free
                for s, d in zip(rem_list, dead_mask.tolist()):
                    if d:
                        q_can[s] = False
                        q_key[s] = -1
                        q_fn[s] = None
                        free.append(s)
        side = self._side
        if side:
            keep = [e for e in side if not q_can[e[2]]]
            if len(keep) != len(side):
                for e in side:
                    if q_can[e[2]]:
                        self._free_slot(e[2])
                # in-place rebuild: the run loop holds an alias to `side`
                side[:] = keep
                heapq.heapify(side)
        self._ncancelled = 0

    def _flush_side(self) -> None:
        """Merge the side heap into the sorted bulk tier (one argsort).

        Each entry is flushed at most once over its lifetime, so the
        per-element cost amortizes over all scheduling traffic.
        """
        side = self._side
        # one C-level conversion of the whole heap; keys (< 2**53, see
        # _PRIO_SHIFT) and slots are exact through the float64 round trip
        arr = np.asarray(side, np.float64)
        t = arr[:, 0]
        k = arr[:, 1].astype(np.int64)
        slots = arr[:, 2].astype(np.intp)
        shead = self._shead
        if self._sorted.size - shead:
            slots = np.concatenate((self._sorted[shead:], slots))
            t = np.concatenate((self._sorted_t[shead:], t))
            k = np.concatenate((self._sorted_k[shead:], k))
        # stable sort: equal-time relative order is irrelevant for
        # semantics (batches re-order by (priority, seq)), but stability
        # keeps the common nearly-sorted case cheap for timsort
        order = np.argsort(t, kind="stable")
        self._sorted = slots[order]
        self._sorted_t = t[order]
        self._sorted_k = k[order]
        self._shead = 0
        side.clear()

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh one-shot :class:`SimEvent` bound to this engine."""
        return SimEvent(self, name)

    @property
    def queue_depth(self) -> int:
        """Pending queue entries, including not-yet-reclaimed cancelled ones."""
        return (self._sorted_t.size - self._shead) + len(self._side)

    # -- processes ----------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> SimProcess:
        """Start ``gen`` as a simulated process at the current time."""
        proc = SimProcess(self, gen, name)
        if self._running is not None:
            self._running.children.append(proc)
        self._live_procs += 1
        self._procs[id(proc)] = proc
        # partial over lambda on hot dispatch paths: the C-level call
        # skips the closure's Python frame
        self.schedule(0.0, partial(self._resume, proc, None))
        return proc

    def spawn_eager(self, gen: Generator, name: str = "") -> SimProcess:
        """Start ``gen`` and run it synchronously until its first block.

        Non-blocking collectives (MPI_Ibcast & co.) initiate their first
        operations *inside* the call before returning; eager spawning
        preserves that: the child's initial sends are enqueued on the
        progress server ahead of whatever the caller does next.
        """
        proc = SimProcess(self, gen, name)
        if self._running is not None:
            self._running.children.append(proc)
        self._live_procs += 1
        self._procs[id(proc)] = proc
        self._resume(proc, None)
        return proc

    def kill(self, proc: SimProcess) -> None:
        """Forcibly finish a process at the current instant.

        The generator is closed (its ``finally`` blocks run), the process
        is marked finished with result ``None``, and every resumption
        still pending for it — sleeps, event successions, message
        completions — becomes a no-op.  In-flight side effects the
        process started (fluid flows, progress-server work) run to
        completion on their own; only the *process* stops issuing new
        work.  This is how the tenant scheduler (:mod:`repro.tenancy`)
        retires background jobs the moment the foreground measurement
        completes: the kill happens at one deterministic point in event
        order, so runs remain bit-identical.

        The kill cascades: every live process ``proc`` spawned while
        running (non-blocking collective schedulers, nested helpers) is
        killed too, in spawn order, so no orphaned child is left blocked
        on a message its parent will never send.

        Killing an already-finished process is a no-op.
        """
        if proc.finished:
            return
        proc.gen.close()
        self._finish(proc, None, None)
        for child in proc.children:
            self.kill(child)

    def _resume(self, proc: SimProcess, value: Any) -> None:
        if proc.finished:
            return
        prev, self._running = self._running, proc
        try:
            cmd = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as exc:  # propagate at run()
            self._finish(proc, None, exc)
            raise
        finally:
            self._running = prev
        self._dispatch(proc, cmd)

    def _finish(self, proc: SimProcess, result: Any, error) -> None:
        proc.finished = True
        proc.result = result
        proc.error = error
        self._live_procs -= 1
        self._procs.pop(id(proc), None)
        if self.trace_hook is not None:
            self.trace_hook(self.now, proc.name, "finish")
        proc.done_event.succeed(result)

    def _dispatch(self, proc: SimProcess, cmd: Any) -> None:
        """Interpret one yielded command for ``proc``."""
        # isinstance chain ordered by yield frequency at scale: plain
        # event waits, then waitall (every sendrecv), then the rest
        if isinstance(cmd, SimEvent):
            cmd._add_waiter(proc)
        elif isinstance(cmd, AllOf):
            self._wait_all(proc, cmd.events)
        elif isinstance(cmd, Sleep):
            self.schedule(cmd.dt, partial(self._resume, proc, None))
        elif isinstance(cmd, Spawn):
            child = self.spawn_eager(cmd.gen, name=cmd.name or f"{proc.name}/child")
            self.schedule(0.0, partial(self._resume, proc, child))
        elif isinstance(cmd, Join):
            target = cmd.proc
            if target.finished:
                self.schedule(0.0, partial(self._resume, proc, target.result))
            else:
                target.done_event._add_waiter(proc)
        elif isinstance(cmd, AnyOf):
            self._wait_any(proc, cmd.events)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported command {cmd!r}"
            )

    def _wait_any(self, proc: SimProcess, events: list[SimEvent]) -> None:
        for idx, ev in enumerate(events):
            if ev.triggered:
                self.schedule(0.0, partial(self._resume, proc, (idx, ev.value)))
                return
        state = {"done": False}
        cbs: list = []

        def make_cb(idx: int):
            def cb(ev: SimEvent) -> None:
                if state["done"]:
                    return
                state["done"] = True
                # sweep every registered sibling callback off the losing
                # events: without this, long-lived events accumulate dead
                # closures (and their captured processes) without bound
                for e, c in zip(events, cbs):
                    try:
                        e.callbacks.remove(c)
                    except ValueError:
                        pass
                self._resume(proc, (idx, ev.value))

            return cb

        for idx, ev in enumerate(events):
            cb = make_cb(idx)
            cbs.append(cb)
            ev.callbacks.append(cb)

    def _wait_all(self, proc: SimProcess, events: list[SimEvent]) -> None:
        pending = 0
        for ev in events:
            if not ev.triggered:
                pending += 1
        if pending == 0:
            values = [ev.value for ev in events]
            self.schedule(0.0, partial(self._resume, proc, values))
            return
        state = [pending]

        def cb(_ev: SimEvent) -> None:
            state[0] -= 1
            if state[0] == 0:
                self._resume(proc, [e.value for e in events])

        for ev in events:
            if not ev.triggered:
                ev.callbacks.append(cb)

    # -- main loop -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue; returns the final simulated time.

        With ``until=T`` the loop stops once the next entry lies beyond
        ``T`` *or* the queue drains early — either way ``now`` advances
        to exactly ``T``, so both stop paths agree.  Raises
        :class:`DeadlockError` if processes remain blocked with no
        pending events (a genuinely hung simulation), and re-raises any
        exception a simulated process died with.

        The Python garbage collector is paused for the duration of the
        loop (and restored on exit): the event machinery allocates
        heavily but creates no garbage cycles on the hot path, and
        collector passes were ~half the wall time of paper-scale runs.
        """
        if until is not None and until < self.now:
            return self.now
        events_before = self.events
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self._batched:
                stopped = self._run_batched(until)
            else:
                stopped = self._run_scalar(until)
        finally:
            # the process-wide counter is updated in one batch: a
            # per-event class-attribute store is measurable at scale
            executed = self.events - events_before
            Engine.events_total += executed
            if gc_was_enabled:
                if executed > 150_000:
                    # big runs defer a mountain of collector work; paying
                    # it here (~0.15 s) beats the multi-second stall the
                    # re-enabled collector would otherwise take at an
                    # arbitrary later allocation
                    gc.collect()
                gc.enable()
        if stopped:
            return self.now
        # drained
        if until is not None:
            if until > self.now:
                self.now = until
        elif self._live_procs > 0:
            blocked = sorted(
                p.name for p in self._procs.values() if not p.finished
            )
            raise DeadlockError(
                f"simulation deadlock: {self._live_procs} live process(es), "
                f"blocked: {blocked[:20]}"
            )
        return self.now

    def _run_batched(self, until: Optional[float]) -> bool:
        """Batched retirement loop; True if stopped at ``until``."""
        # the slot-table lists only ever grow in place, so aliasing them
        # across fn() calls is safe (unlike the old numpy columns)
        side = self._side
        q_can = self._q_cancelled
        q_key = self._q_key
        q_fn = self._q_fn
        free = self._free
        pop = heapq.heappop
        while True:
            if len(side) >= _FLUSH_THRESHOLD:
                self._flush_side()
            shead = self._shead
            st = self._sorted_t
            have_arr = shead < st.size
            if side:
                t = side[0][0]
                if have_arr:
                    ta = st[shead]
                    if ta <= t:
                        t = float(ta)
            elif have_arr:
                t = float(st[shead])
            else:
                return False
            if until is not None and t > until:
                self.now = until
                return True
            if t < self.now - 1e-18:
                raise AssertionError("time went backwards")
            # slice the due span out of the bulk tier and order it by
            # (priority, seq) — one argsort on the packed key; the merge
            # walk below interleaves side-tier entries — including ones
            # scheduled mid-batch — in the same total order
            arr_key: list = []
            arr_slot: list = []
            na = 0
            if have_arr and st[shead] == t:
                hi = int(np.searchsorted(st, t, side="right"))
                self._shead = hi
                if hi - shead > 1:
                    bk = self._sorted_k[shead:hi]
                    order = np.argsort(bk)  # keys are unique
                    arr_key = bk[order].tolist()
                    arr_slot = self._sorted[shead:hi][order].tolist()
                else:
                    arr_key = [int(self._sorted_k[shead])]
                    arr_slot = [int(self._sorted[shead])]
                na = len(arr_slot)
            advanced = False
            i = 0
            while True:
                if side and side[0][0] == t:
                    if i < na and arr_key[i] < side[0][1]:
                        slot = arr_slot[i]
                        i += 1
                    else:
                        slot = pop(side)[2]
                elif i < na:
                    slot = arr_slot[i]
                    i += 1
                else:
                    break
                if q_can[slot]:
                    self._free_slot(slot)
                    if self._ncancelled:
                        self._ncancelled -= 1
                    continue
                if not advanced:
                    # a batch of nothing but cancelled entries must not
                    # advance the clock (matches the scalar kernel)
                    self.now = t
                    self.batches += 1
                    advanced = True
                fn = q_fn[slot]
                q_fn[slot] = None
                q_key[slot] = -1
                free.append(slot)
                self.events += 1
                fn()

    def _run_scalar(self, until: Optional[float]) -> bool:
        """One-event-at-a-time loop; True if stopped at ``until``.

        The scalar kernel never flushes to the bulk tier, but folds back
        anything a previous batched run left there so kernels can be
        mixed on one engine.
        """
        side = self._side
        if self._shead < self._sorted_t.size:
            shead = self._shead
            for t, k, s in zip(
                self._sorted_t[shead:].tolist(),
                self._sorted_k[shead:].tolist(),
                self._sorted[shead:].tolist(),
            ):
                heapq.heappush(side, (t, k, s))
            self._sorted = np.empty(0, np.intp)
            self._sorted_t = np.empty(0, np.float64)
            self._sorted_k = np.empty(0, np.int64)
            self._shead = 0
        pop = heapq.heappop
        batch_t = None  # last instant that opened a batch, this run() only
        while side:
            t = side[0][0]
            if until is not None and t > until:
                self.now = until
                return True
            slot = pop(side)[2]
            if self._q_cancelled[slot]:
                self._free_slot(slot)
                if self._ncancelled:
                    self._ncancelled -= 1
                continue
            if t < self.now - 1e-18:
                raise AssertionError("time went backwards")
            if t != batch_t:
                self.batches += 1
                batch_t = t
            self.now = t
            fn = self._q_fn[slot]
            self._q_fn[slot] = None
            self._q_key[slot] = -1
            self._free.append(slot)
            self.events += 1
            fn()
        return False
