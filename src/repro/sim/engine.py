"""Deterministic discrete-event engine with generator-based processes.

The engine keeps a single binary heap of timestamped callbacks.  Simulated
processes are Python generators that ``yield`` *commands*; the engine
interprets each command, and resumes the generator (``gen.send(value)``)
when the command completes.  Sub-routines compose with plain
``yield from``, so collective algorithms read like straight-line MPI code.

Commands understood by the engine:

``Sleep(dt)``
    Suspend the process for ``dt`` simulated seconds.
``SimEvent``
    Suspend until the event is succeeded; ``succeed(value)`` resumes every
    waiter with ``value``.
``AnyOf(events)`` / ``AllOf(events)``
    Composite waits (used to build ``MPI_Waitany`` / ``MPI_Waitall``).
``Spawn(gen)``
    Start a child process *on the same simulated rank* and resume
    immediately with its :class:`SimProcess` handle.  This is how
    non-blocking collectives (Libnbc / ADAPT schedules) run concurrently
    with the caller while still sharing the rank's CPU progress engine.
``Join(proc)``
    Suspend until the given child process finishes; resumes with the
    child's return value.

Determinism: events at equal timestamps are processed in (priority,
sequence-number) order, so repeated runs are bit-identical.  ``priority``
lets the fluid solver batch same-instant flow arrivals into a single
rate recomputation (see :mod:`repro.sim.fluid`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlockError",
    "Engine",
    "Join",
    "SimEvent",
    "SimProcess",
    "Sleep",
    "Spawn",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]

# Priorities for same-timestamp ordering.  "Late" callbacks (fluid-rate
# recomputation) run after every normal event scheduled for the same instant.
PRIORITY_NORMAL = 0
PRIORITY_LATE = 1


class DeadlockError(RuntimeError):
    """Raised when the event heap drains while processes are still blocked."""


@dataclass(frozen=True)
class Sleep:
    """Command: suspend the issuing process for ``dt`` simulated seconds."""

    dt: float


@dataclass(frozen=True)
class Spawn:
    """Command: start ``gen`` as a child process; resume with its handle."""

    gen: Generator
    name: str = ""


@dataclass(frozen=True)
class Join:
    """Command: wait for a spawned :class:`SimProcess` to finish."""

    proc: "SimProcess"


class SimEvent:
    """One-shot event; processes wait on it, someone succeeds it once.

    The value passed to :meth:`succeed` becomes the result of the ``yield``
    in every waiting process.
    """

    __slots__ = ("engine", "name", "triggered", "value", "_waiters", "callbacks")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: list[SimProcess] = []
        # Plain callables invoked (synchronously, in order) on success;
        # used by AnyOf/AllOf and by the MPI request layer.
        self.callbacks: list[Callable[["SimEvent"], None]] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} succeeded twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        if self.callbacks:
            for cb in list(self.callbacks):
                cb(self)
        for proc in waiters:
            self.engine._resume(proc, value)

    def _add_waiter(self, proc: "SimProcess") -> None:
        if self.triggered:
            self.engine._resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class AnyOf:
    """Composite command: resume when *any* of ``events`` has triggered.

    Resumes with ``(index, value)`` of the first event (already-triggered
    events win immediately, lowest index first).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[SimEvent]):
        self.events = list(events)


class AllOf:
    """Composite command: resume when *all* of ``events`` have triggered.

    Resumes with the list of event values, in order.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[SimEvent]):
        self.events = list(events)


class SimProcess:
    """Handle for a running generator-based simulated process."""

    __slots__ = ("engine", "gen", "name", "finished", "result", "done_event", "error")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_event = SimEvent(engine, name=f"done:{name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<SimProcess {self.name!r} {state}>"


# Heap items are plain lists [time, priority, seq, fn, cancelled]: list
# comparison is C-level and the unique seq breaks every tie before the
# (incomparable) callable is reached.  A dataclass with order=True costs
# a Python-level __lt__ per heap sift, which shows up on paper-scale
# runs (millions of events).
_TIME, _PRIORITY, _SEQ, _FN, _CANCELLED = range(5)
_HeapItem = list


class Engine:
    """The discrete-event loop.

    Typical use::

        eng = Engine()
        def prog():
            yield Sleep(1.0)
            return 42
        p = eng.spawn(prog(), name="p0")
        eng.run()
        assert p.result == 42 and eng.now == 1.0
    """

    #: process-wide event counter (sum over every engine instance); lets
    #: benchmark harnesses compute events/sec across runtimes they never
    #: see (e.g. the ones :func:`measure_collective` creates internally)
    events_total: int = 0

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_HeapItem] = []
        self._seq: int = 0
        #: events executed by this engine instance
        self.events: int = 0
        self._nblocked: int = 0
        self._live_procs: int = 0
        # live processes, for deadlock diagnostics: when the heap drains,
        # every unfinished process is by definition blocked, so a
        # spawn/finish registry replaces per-block bookkeeping (which
        # cost two dict ops on every suspend/resume)
        self._procs: dict[int, SimProcess] = {}
        self.trace_hook: Optional[Callable[[float, str, str], None]] = None
        #: Optional perturbation hook ``(kind, who, duration) -> duration``
        #: consulted by components that charge simulated time (the per-rank
        #: progress servers with ``kind="cpu"`` and the fabric's message
        #: latencies with ``kind="net_latency"``).  ``who`` is the rank the
        #: cost is charged to.  ``None`` (the default) leaves every duration
        #: untouched, so runs without an installed hook are bit-identical
        #: to builds that predate it.  Fault injectors
        #: (:mod:`repro.faults`) install a dispatcher here.
        self.overhead_hook: Optional[Callable[[str, int, float], float]] = None
        #: Optional observability recorder (:mod:`repro.obs`).  Every
        #: instrumented component guards its emission with a single
        #: ``engine.obs is not None`` test, so a run without a recorder
        #: attached is bit-identical to (and as fast as) an uninstrumented
        #: build.
        self.obs: Optional[Any] = None

    # -- scheduling --------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> _HeapItem:
        """Run ``fn()`` after ``delay`` seconds; returns a cancellable token."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        item = [self.now + delay, priority, self._seq, fn, False]
        self._seq += 1
        heapq.heappush(self._heap, item)
        return item

    def schedule_at(
        self, when: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> _HeapItem:
        """Run ``fn()`` at absolute simulated time ``when``.

        ``when`` lands on the heap *exactly* (not via a ``now + (when -
        now)`` round trip, which can be off by an ulp) — the fluid
        solver relies on this so that a flow-completion event fires at
        the bit-identical instant regardless of how many unrelated
        events were processed in between.
        """
        if when < self.now:
            raise ValueError(f"schedule_at({when}) is in the past (now={self.now})")
        item = [when, priority, self._seq, fn, False]
        self._seq += 1
        heapq.heappush(self._heap, item)
        return item

    @staticmethod
    def cancel(item: _HeapItem) -> None:
        """Cancel a previously scheduled callback (lazy deletion)."""
        item[_CANCELLED] = True

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh one-shot :class:`SimEvent` bound to this engine."""
        return SimEvent(self, name)

    # -- processes ----------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> SimProcess:
        """Start ``gen`` as a simulated process at the current time."""
        proc = SimProcess(self, gen, name)
        self._live_procs += 1
        self._procs[id(proc)] = proc
        self.schedule(0.0, lambda: self._resume(proc, None))
        return proc

    def spawn_eager(self, gen: Generator, name: str = "") -> SimProcess:
        """Start ``gen`` and run it synchronously until its first block.

        Non-blocking collectives (MPI_Ibcast & co.) initiate their first
        operations *inside* the call before returning; eager spawning
        preserves that: the child's initial sends are enqueued on the
        progress server ahead of whatever the caller does next.
        """
        proc = SimProcess(self, gen, name)
        self._live_procs += 1
        self._procs[id(proc)] = proc
        self._resume(proc, None)
        return proc

    def _resume(self, proc: SimProcess, value: Any) -> None:
        if proc.finished:
            return
        try:
            cmd = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as exc:  # propagate at run()
            self._finish(proc, None, exc)
            raise
        self._dispatch(proc, cmd)

    def _finish(self, proc: SimProcess, result: Any, error) -> None:
        proc.finished = True
        proc.result = result
        proc.error = error
        self._live_procs -= 1
        self._procs.pop(id(proc), None)
        if self.trace_hook is not None:
            self.trace_hook(self.now, proc.name, "finish")
        proc.done_event.succeed(result)

    def _dispatch(self, proc: SimProcess, cmd: Any) -> None:
        """Interpret one yielded command for ``proc``."""
        if isinstance(cmd, SimEvent):
            cmd._add_waiter(proc)
        elif isinstance(cmd, Sleep):
            self.schedule(cmd.dt, lambda: self._resume(proc, None))
        elif isinstance(cmd, Spawn):
            child = self.spawn_eager(cmd.gen, name=cmd.name or f"{proc.name}/child")
            self.schedule(0.0, lambda: self._resume(proc, child))
        elif isinstance(cmd, Join):
            target = cmd.proc
            if target.finished:
                self.schedule(0.0, lambda: self._resume(proc, target.result))
            else:
                target.done_event._add_waiter(proc)
        elif isinstance(cmd, AnyOf):
            self._wait_any(proc, cmd.events)
        elif isinstance(cmd, AllOf):
            self._wait_all(proc, cmd.events)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported command {cmd!r}"
            )

    def _wait_any(self, proc: SimProcess, events: list[SimEvent]) -> None:
        for idx, ev in enumerate(events):
            if ev.triggered:
                self.schedule(0.0, lambda i=idx, v=ev.value: self._resume(proc, (i, v)))
                return
        state = {"done": False}

        def make_cb(idx: int):
            def cb(ev: SimEvent) -> None:
                if state["done"]:
                    return
                state["done"] = True
                self._resume(proc, (idx, ev.value))

            return cb

        for idx, ev in enumerate(events):
            ev.callbacks.append(make_cb(idx))

    def _wait_all(self, proc: SimProcess, events: list[SimEvent]) -> None:
        pending = sum(1 for ev in events if not ev.triggered)
        if pending == 0:
            values = [ev.value for ev in events]
            self.schedule(0.0, lambda: self._resume(proc, values))
            return
        state = {"pending": pending}

        def cb(_ev: SimEvent) -> None:
            state["pending"] -= 1
            if state["pending"] == 0:
                self._resume(proc, [e.value for e in events])

        for ev in events:
            if not ev.triggered:
                ev.callbacks.append(cb)

    # -- main loop -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; returns the final simulated time.

        Raises :class:`DeadlockError` if processes remain blocked with no
        pending events (a genuinely hung simulation), and re-raises any
        exception a simulated process died with.
        """
        heap = self._heap
        pop = heapq.heappop
        events_before = self.events
        try:
            while heap:
                item = heap[0]
                if until is not None and item[_TIME] > until:
                    self.now = until
                    return self.now
                pop(heap)
                if item[_CANCELLED]:
                    continue
                if item[_TIME] < self.now - 1e-18:
                    raise AssertionError("time went backwards")
                self.now = item[_TIME]
                self.events += 1
                item[_FN]()
        finally:
            # the process-wide counter is updated in one batch: a
            # per-event class-attribute store is measurable at scale
            Engine.events_total += self.events - events_before
        if self._live_procs > 0 and until is None:
            blocked = sorted(
                p.name for p in self._procs.values() if not p.finished
            )
            raise DeadlockError(
                f"simulation deadlock: {self._live_procs} live process(es), "
                f"blocked: {blocked[:20]}"
            )
        return self.now
