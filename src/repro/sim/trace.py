"""Structured tracing of simulation events.

Attach a :class:`Tracer` to an engine to record process lifecycles and
custom marks with simulated timestamps; useful for debugging collective
schedules and for the kind of task-timeline inspection Figs 1/5 describe.

    eng = Engine()
    tracer = Tracer(eng)
    ... run ...
    tracer.marks          # [(t, name, label), ...]
    tracer.to_text()      # human-readable timeline
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Deque, List, Optional, Tuple

from repro.sim.engine import Engine

__all__ = ["Tracer", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    time: float
    actor: str
    label: str


@dataclass
class Tracer:
    engine: Engine
    #: keep at most this many events; once full, the *oldest* events are
    #: dropped so the tail of a long run (usually where the bug is)
    #: survives
    limit: int = 100_000
    events: Deque[TraceEvent] = field(default_factory=deque)
    _dropped: int = 0

    def __post_init__(self) -> None:
        # bind once so close() can recognise (and only remove) its own hook
        self._hook = self._on_engine_event
        # remember what was installed before us so close() can restore it
        # (hook *chaining*: a Tracer stacked on another consumer forwards
        # nothing while attached, but detaching puts the original back)
        self._prev_hook = self.engine.trace_hook
        self.engine.trace_hook = self._hook
        self.events = deque(self.events, maxlen=self.limit)

    def _on_engine_event(self, t: float, actor: str, label: str) -> None:
        self.record(actor, label, t=t)

    def record(self, actor: str, label: str, t: Optional[float] = None) -> None:
        """Add a custom mark at the current (or given) simulated time.

        True ring-buffer semantics: a full tracer evicts its oldest
        event (counted in :attr:`dropped`) rather than ignoring new ones.
        """
        if len(self.events) == self.limit:
            self._dropped += 1
        self.events.append(
            TraceEvent(self.engine.now if t is None else t, actor, label)
        )

    @property
    def dropped(self) -> int:
        return self._dropped

    def for_actor(self, actor: str) -> List[TraceEvent]:
        return [e for e in self.events if e.actor == actor]

    def spans(self, actor: str, start_label: str, end_label: str
              ) -> List[Tuple[float, float]]:
        """Pair up start/end marks into (begin, end) spans."""
        out, stack = [], []
        for e in self.for_actor(actor):
            if e.label == start_label:
                stack.append(e.time)
            elif e.label == end_label and stack:
                out.append((stack.pop(), e.time))
        return out

    def to_text(self, limit: int = 200) -> str:
        lines = [
            f"{e.time * 1e6:12.3f}us  {e.actor:20s} {e.label}"
            for e in islice(self.events, limit)
        ]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more")
        if self._dropped:
            lines.append(f"({self._dropped} older events dropped)")
        return "\n".join(lines)

    def close(self) -> None:
        """Detach, restoring whatever hook was installed before us.

        Only removes *our own* hook: if someone else replaced it after we
        attached, their hook is left alone (and our saved one is not
        restored over it).  Idempotent.
        """
        if self.engine.trace_hook is self._hook:
            self.engine.trace_hook = self._prev_hook
        self._prev_hook = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
