"""Serve-time guideline validation of tuned decisions.

A decision store answers queries that a human never reviews, so a stale,
corrupted or interpolated entry must not be served *silently* wrong.
Before :class:`~repro.serve.service.DecisionService` returns an answer
it runs the Hunold-style performance-guideline checks the insight engine
already applies to measured runs (:mod:`repro.obs.insights`), rephrased
for a stored decision and its shard neighborhood:

- **config integrity** -- the record's ``config_digest`` must match its
  ``config`` payload (a tampered or bit-rotted entry fails closed);
- **finite time** -- a served ``expected_time`` must be positive and
  finite;
- **nbytes monotonicity** -- the answer's expected time must not dip
  below a smaller-message neighbor (nor sit above a larger-message
  neighbor) of the same (coll, n, p) beyond the insight engine's
  monotonicity tolerance;
- **composition guidelines** -- where the shard also stores the operands
  at the same point, ``allreduce <= reduce + bcast`` and
  ``bcast <= scatter + allgather``.

Violations carry PICO-style severity: not just pass/fail but *how many
seconds* the violation costs (the excess over the guideline bound) and a
``warn``/``error`` grade from the relative excess, so an operator can
rank thousands of flagged answers by damage.  The grading scale is the
shared :mod:`repro.obs.severity` helper, so serve-time verdicts and the
observatory's measured-run findings rank on one scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.obs.insights import GUIDELINE_TOL, MONOTONE_TOL
from repro.obs.severity import ERROR_REL_EXCESS, grade_excess

__all__ = [
    "ERROR_REL_EXCESS",
    "GuidelineCheck",
    "Verdict",
    "validate_decision",
]

COMPOSITIONS = {
    "allreduce": ("reduce", "bcast"),
    "bcast": ("scatter", "allgather"),
}


@dataclass(frozen=True)
class GuidelineCheck:
    """One validated relation on a served decision."""

    name: str
    passed: bool
    severity: str  # "ok" | "warn" | "error"
    detail: str
    cost_seconds: float = 0.0

    def to_doc(self) -> dict:
        return {
            "name": self.name, "passed": self.passed,
            "severity": self.severity, "detail": self.detail,
            "cost_seconds": self.cost_seconds,
        }


@dataclass(frozen=True)
class Verdict:
    """Aggregate validation outcome stamped onto every served answer."""

    ok: bool
    severity: str  # worst check severity: "ok" | "warn" | "error"
    checks: tuple[GuidelineCheck, ...]
    cost_seconds: float  # summed seconds cost of every violation

    def to_doc(self) -> dict:
        return {
            "ok": self.ok, "severity": self.severity,
            "cost_seconds": self.cost_seconds,
            "checks": [c.to_doc() for c in self.checks],
        }


_SEVERITY_RANK = {"ok": 0, "warn": 1, "error": 2}


def _violation(name: str, detail: str, cost: float,
               rel_excess: float) -> GuidelineCheck:
    return GuidelineCheck(name=name, passed=False,
                          severity=grade_excess(rel_excess),
                          detail=detail, cost_seconds=max(cost, 0.0))


def _passed(name: str, detail: str) -> GuidelineCheck:
    return GuidelineCheck(name=name, passed=True, severity="ok",
                          detail=detail)


def verdict_from(checks: Sequence[GuidelineCheck]) -> Verdict:
    worst = max(checks, key=lambda c: _SEVERITY_RANK[c.severity],
                default=None)
    return Verdict(
        ok=all(c.passed for c in checks),
        severity=worst.severity if worst is not None else "ok",
        checks=tuple(checks),
        cost_seconds=sum(c.cost_seconds for c in checks if not c.passed),
    )


def validate_decision(
    answer: dict,
    neighbors: Sequence[dict] = (),
    composition_times: Optional[dict] = None,
    tol: float = GUIDELINE_TOL,
    mono_tol: float = MONOTONE_TOL,
) -> Verdict:
    """Validate one decision record against its shard neighborhood.

    ``answer`` is a decision record (see
    :func:`~repro.serve.store.decision_record`); ``neighbors`` are the
    records of the same (band, coll, n, p) -- the monotonicity axis;
    ``composition_times`` maps operand collective names to their stored
    expected times at the answer's point, when the shard has them.
    """
    checks: list[GuidelineCheck] = []

    # -- config integrity ---------------------------------------------------------
    cfg = answer.get("config")
    stamped = answer.get("config_digest")
    if cfg is not None and stamped:
        from repro.core.config import HanConfig
        from repro.obs.store import config_digest

        try:
            actual = config_digest(HanConfig(**cfg))
        except (TypeError, ValueError) as exc:
            actual = None
            checks.append(GuidelineCheck(
                "config decodes", False, "error",
                f"stored config does not decode: {exc}", 0.0,
            ))
        if actual is not None:
            if actual == stamped:
                checks.append(_passed(
                    "config integrity", "config_digest matches payload"))
            else:
                checks.append(GuidelineCheck(
                    "config integrity", False, "error",
                    f"config_digest {stamped[:12]} does not match payload "
                    f"digest {actual[:12]} (tampered or torn record)", 0.0,
                ))

    t = answer.get("expected_time")
    if t is None:
        # nothing further to validate without a time estimate
        return verdict_from(checks)

    # -- finite, positive time ----------------------------------------------------
    if not (isinstance(t, (int, float)) and math.isfinite(t) and t > 0):
        checks.append(GuidelineCheck(
            "finite expected_time", False, "error",
            f"expected_time {t!r} is not a positive finite number", 0.0,
        ))
        return verdict_from(checks)
    checks.append(_passed("finite expected_time", f"{t:.3e}s"))

    # -- nbytes monotonicity ------------------------------------------------------
    m = float(answer.get("nbytes", 0.0))
    dips = 0
    for nb in neighbors:
        tn = nb.get("expected_time")
        mn = float(nb.get("nbytes", 0.0))
        if tn is None or mn == m or not math.isfinite(tn):
            continue
        if mn < m and t < tn * (1.0 - mono_tol):
            dips += 1
            checks.append(_violation(
                f"monotone nbytes (vs {mn:g}B)",
                f"served {m:g}B at {t:.3e}s dips below the stored "
                f"{mn:g}B point at {tn:.3e}s",
                cost=tn - t, rel_excess=(tn - t) / t,
            ))
        elif mn > m and tn < t * (1.0 - mono_tol):
            dips += 1
            checks.append(_violation(
                f"monotone nbytes (vs {mn:g}B)",
                f"served {m:g}B at {t:.3e}s exceeds the stored larger "
                f"{mn:g}B point at {tn:.3e}s (stale or mis-keyed entry)",
                cost=t - tn, rel_excess=(t - tn) / max(tn, 1e-30),
            ))
    if neighbors and not dips:
        checks.append(_passed(
            "monotone nbytes",
            f"consistent with {len(neighbors)} shard neighbor(s)"))

    # -- composition guidelines ---------------------------------------------------
    coll = answer.get("coll")
    operands = COMPOSITIONS.get(coll, ())
    if composition_times and operands and all(
        composition_times.get(op) is not None for op in operands
    ):
        bound = sum(composition_times[op] for op in operands)
        name = f"{coll} <= {'+'.join(operands)}"
        if bound > 0 and t > bound * (1.0 + tol):
            checks.append(_violation(
                name,
                f"{coll}={t:.3e}s vs {'+'.join(operands)}={bound:.3e}s "
                f"(ratio {t / bound:.3f}, tol {1 + tol:.2f})",
                cost=t - bound, rel_excess=t / bound - 1.0,
            ))
        else:
            checks.append(_passed(
                name, f"ratio {t / bound:.3f}" if bound > 0 else "bound 0"))

    return verdict_from(checks)
