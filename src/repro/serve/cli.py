"""Command-line front end for the decision-serving layer.

Tune once per hardware band, answer every runtime query from the store::

    # pre-populate shards for a fleet of machine presets
    python -m repro.serve.cli warm --fleet shaheen2:4x4,stampede2:2x8 \
        --colls bcast,allreduce --workers 4 --store .decisions

    # answer a batched query file (JSON list or JSONL; '-' = stdin)
    python -m repro.serve.cli serve --store .decisions --queries q.json

    # fold one store into another, then compact the shards
    python -m repro.serve.cli merge --into .decisions .decisions-other --compact

    # the serving-throughput study (emits BENCH_serve_qps.json)
    python -m repro.serve.cli bench --quick --floor 100000

Every served answer carries a provenance stamp (``exact`` / ``nearest``
/ ``interpolated`` / ``default``) and a guideline verdict; ``--strict``
refuses guideline-violating answers (exit code 3) instead of serving
them flagged.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs.cli import parse_nbytes
from repro.serve.service import DecisionService, Query
from repro.serve.store import DecisionStore
from repro.serve.warm import WARM_SPACES, parse_fleet, warm_store

__all__ = ["main"]


def _parse_query(doc: dict) -> Query:
    """One query from its JSON form (machine preset or raw band digest)."""
    band = doc.get("band")
    machine = None
    if not band and doc.get("machine"):
        machine = parse_fleet(str(doc["machine"]))[0]
    nbytes = doc["nbytes"]
    if isinstance(nbytes, str):
        nbytes = parse_nbytes(nbytes)
    return Query(
        coll=doc["coll"],
        nbytes=float(nbytes),
        commsize=int(doc.get("commsize", 0)),
        machine=machine,
        band=band,
    )


def _load_queries(path: str) -> list[Query]:
    text = sys.stdin.read() if path == "-" else Path(path).read_text()
    text = text.strip()
    if not text:
        return []
    if text.startswith("["):
        docs = json.loads(text)
    else:  # JSONL
        docs = [json.loads(line) for line in text.splitlines() if line.strip()]
    return [_parse_query(doc) for doc in docs]


# -- warm --------------------------------------------------------------------------


def cmd_warm(args) -> int:
    from repro.tuning.cache import MeasurementCache

    fleet = parse_fleet(args.fleet)
    store = DecisionStore(args.store)
    colls = tuple(c.strip() for c in args.colls.split(",") if c.strip())
    cache = MeasurementCache(args.cache) if args.cache else None
    summaries = warm_store(
        fleet, store, colls=colls, method=args.method,
        space=WARM_SPACES[args.space], workers=args.workers, cache=cache,
    )
    for s in summaries:
        print(
            f"warmed {s['machine']:<24} band={s['band'][:12]} "
            f"records={s['records']} searches={s['searches']} "
            f"wall={s['wall_s']:.2f}s"
        )
    print(f"store {args.store}: {store.stats()['records']} decisions in "
          f"{store.stats()['shards']} shard(s)")
    return 0


# -- serve -------------------------------------------------------------------------


def cmd_serve(args) -> int:
    store = DecisionStore(args.store)
    service = DecisionService(store, strict=args.strict)
    queries = _load_queries(args.queries)
    if not queries:
        print("no queries", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    decisions = service.decide_batch(queries)
    wall = time.perf_counter() - t0
    doc = {
        "queries": len(queries),
        "wall_s": wall,
        "qps": len(queries) / wall if wall > 0 else float("inf"),
        "stats": service.stats(),
        "decisions": [d.to_doc() for d in decisions],
    }
    out = json.dumps(doc, indent=1)
    if args.out:
        Path(args.out).write_text(out)
    if args.json and not args.out:
        print(out)
    else:
        stats = doc["stats"]
        print(f"served {len(queries)} queries in {wall:.4f}s "
              f"({doc['qps']:.0f} qps)")
        print(f"  provenance: {stats['decisions']}")
        print(f"  violations flagged: {stats['violations']}  "
              f"refused: {stats['refused']}")
        if args.out:
            print(f"  decisions written to {args.out}")
    if args.strict and any(d.refused for d in decisions):
        return 3
    return 0


# -- merge -------------------------------------------------------------------------


def cmd_merge(args) -> int:
    into = DecisionStore(args.into)
    total = 0
    for src in args.sources:
        absorbed = into.merge_from(DecisionStore(src))
        print(f"merged {src}: {absorbed} record(s) absorbed")
        total += absorbed
    if args.compact:
        stats = into.compact()
        print(f"compacted {stats['shards']} shard(s): "
              f"{stats['records']} records, "
              f"{stats['removed_segments']} segment(s) removed")
    print(f"store {args.into}: {into.stats()['records']} decisions")
    return 0


# -- bench -------------------------------------------------------------------------


def _bench_queries(store: DecisionStore, n: int) -> dict[str, list[Query]]:
    """Exact / nearest / interpolated / default workloads over a store."""
    points = []
    for band in store.bands():
        for coll in store.colls(band):
            points.extend((band, r) for r in store.records(band, coll))
    if not points:
        raise SystemExit("bench needs a non-empty store")
    exact, nearest, interp = [], [], []
    for i in range(n):
        band, rec = points[i % len(points)]
        exact.append(Query(rec["coll"], rec["nbytes"],
                           commsize=rec["commsize"], band=band))
        # outside the sampled range on alternating ends -> nearest
        factor = 2.0 ** 40 if i % 2 else 2.0 ** -40
        nearest.append(Query(rec["coll"], max(rec["nbytes"] * factor, 1.0),
                             commsize=rec["commsize"], band=band))
        # strictly between two samples (x1.5 of a sampled power of two)
        interp.append(Query(rec["coll"], rec["nbytes"] * 1.5,
                            commsize=rec["commsize"], band=band))
    default = [
        Query("bcast", 2.0 ** (10 + i % 12), commsize=8, band="0" * 64)
        for i in range(n)
    ]
    mixed = [q for group in (exact, nearest, interp, default)
             for q in group][:n]
    return {"exact": exact, "nearest": nearest, "interpolated": interp,
            "default": default, "mixed": mixed}


def cmd_bench(args) -> int:
    if args.quick:
        args.queries = min(args.queries, 2000)
    store = DecisionStore(args.store) if args.store else DecisionStore()
    if not len(store):
        fleet = parse_fleet(args.fleet)
        print(f"warming in-memory store from {args.fleet} "
              f"[{args.space} space] ...")
        for s in warm_store(fleet, store, colls=("bcast", "allreduce"),
                            space=WARM_SPACES[args.space],
                            workers=args.workers):
            print(f"  {s['machine']}: {s['records']} records "
                  f"in {s['wall_s']:.2f}s")
    workloads = _bench_queries(store, args.queries)
    service = DecisionService(store)
    qps: dict[str, float] = {}
    for name in ("exact", "mixed"):
        batch = workloads[name]
        service.decide_batch(batch)  # warm indexes + verdict cache
        best = 0.0
        for _ in range(max(1, args.repeat)):
            t0 = time.perf_counter()
            service.decide_batch(batch)
            dt = time.perf_counter() - t0
            best = max(best, len(batch) / dt if dt > 0 else float("inf"))
        qps[name] = best
        print(f"  {name:>6}: {best:12.0f} queries/s "
              f"({len(batch)} queries, best of {args.repeat})")
    # provenance correctness snapshot over one fresh mixed pass
    check = DecisionService(store)
    provs: dict[str, int] = {}
    for name in ("exact", "nearest", "interpolated", "default"):
        for d in check.decide_batch(workloads[name][:200]):
            provs[f"{name}->{d.provenance}"] = (
                provs.get(f"{name}->{d.provenance}", 0) + 1)
    floor_ok = args.floor is None or qps["exact"] >= args.floor
    out = {
        "store": store.stats(),
        "fleet": args.fleet if not args.store else str(args.store),
        "batch_queries": args.queries,
        "repeat": args.repeat,
        "qps": qps,
        "floor_qps": args.floor,
        "floor_ok": floor_ok,
        "workload_provenance": provs,
        "service_stats": check.stats(),
    }
    Path(args.out).write_text(json.dumps(out, indent=1))
    print(f"exact-hit {qps['exact']:.0f} qps, mixed {qps['mixed']:.0f} qps; "
          f"written to {args.out}")
    if not floor_ok:
        print(f"FAIL: exact-hit qps {qps['exact']:.0f} below floor "
              f"{args.floor:.0f}", file=sys.stderr)
        return 1
    return 0


# -- entry point -------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_warm = sub.add_parser("warm", help="pre-populate shards from a fleet")
    p_warm.add_argument("--fleet", required=True,
                        help="comma list of <preset>[:<nodes>x<ppn>]")
    p_warm.add_argument("--store", required=True,
                        help="decision-store directory")
    p_warm.add_argument("--colls", default="bcast,allreduce")
    p_warm.add_argument("--method", default="task+h",
                        choices=("exhaustive", "exhaustive+h", "task",
                                 "task+h"))
    p_warm.add_argument("--space", default="small",
                        choices=sorted(WARM_SPACES))
    p_warm.add_argument("--workers", type=int, default=0)
    p_warm.add_argument("--cache", default=None,
                        help="persistent measurement-cache directory")
    p_warm.set_defaults(fn=cmd_warm)

    p_serve = sub.add_parser("serve", help="answer a batched query file")
    p_serve.add_argument("--store", required=True)
    p_serve.add_argument("--queries", required=True,
                         help="JSON list / JSONL of queries ('-' = stdin)")
    p_serve.add_argument("--strict", action="store_true",
                         help="refuse guideline-violating answers (exit 3)")
    p_serve.add_argument("--json", action="store_true",
                         help="print the full decision document")
    p_serve.add_argument("--out", default=None,
                         help="write the decision document to this file")
    p_serve.set_defaults(fn=cmd_serve)

    p_merge = sub.add_parser("merge", help="fold stores together")
    p_merge.add_argument("--into", required=True)
    p_merge.add_argument("sources", nargs="+")
    p_merge.add_argument("--compact", action="store_true",
                         help="compact shards after merging")
    p_merge.set_defaults(fn=cmd_merge)

    p_bench = sub.add_parser(
        "bench", help="serving-throughput study (BENCH_serve_qps.json)"
    )
    p_bench.add_argument("--store", default=None,
                         help="existing store (default: warm in memory)")
    p_bench.add_argument("--fleet", default="tiny_cluster:2x2")
    p_bench.add_argument("--space", default="quick",
                         choices=sorted(WARM_SPACES))
    p_bench.add_argument("--queries", type=int, default=10000)
    p_bench.add_argument("--repeat", type=int, default=3)
    p_bench.add_argument("--workers", type=int, default=0)
    p_bench.add_argument("--quick", action="store_true",
                         help="cap the batch at 2000 queries")
    p_bench.add_argument("--floor", type=float, default=None,
                         help="fail if exact-hit qps drops below this")
    p_bench.add_argument("--out", default="BENCH_serve_qps.json")
    p_bench.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
