"""Tuned-decision serving: sharded decision store + high-traffic queries.

The HAN economics (paper III-C) only pay off when the expensive offline
search is amortized: tune once per hardware band, answer every runtime
``(collective, nbytes, commsize)`` query from a table.  This package is
that production story:

- :mod:`repro.serve.store` -- :class:`DecisionStore`, a sharded,
  mergeable, content-addressed store of tuned decisions (one shard per
  (machine band, collective); append-only JSONL segments with
  merge/compaction, reusing the
  :mod:`repro.tuning.cache` digest contract);
- :mod:`repro.serve.service` -- :class:`DecisionService`, the batched
  query API: O(1) exact point hits, log-scale nearest/interpolated
  fallback for never-measured points, provenance stamps on every answer
  and a guideline verdict (:mod:`repro.serve.guidelines`) before
  anything is served;
- :mod:`repro.serve.warm` -- pre-populate shards from
  :class:`~repro.tuning.autotuner.Autotuner` sweeps over a fleet of
  machine presets;
- ``python -m repro.serve.cli`` -- ``warm`` / ``serve`` / ``merge`` /
  ``bench`` front end (the bench emits ``BENCH_serve_qps.json``).
"""

from repro.serve.guidelines import GuidelineCheck, Verdict, validate_decision
from repro.serve.service import Decision, DecisionService, Query
from repro.serve.store import (
    SERVE_SCHEMA_VERSION,
    DecisionStore,
    band_digest,
    decision_record,
    point_key,
)
from repro.serve.warm import parse_fleet, warm_store

__all__ = [
    "Decision",
    "DecisionService",
    "DecisionStore",
    "GuidelineCheck",
    "Query",
    "SERVE_SCHEMA_VERSION",
    "Verdict",
    "band_digest",
    "decision_record",
    "parse_fleet",
    "point_key",
    "validate_decision",
    "warm_store",
]
