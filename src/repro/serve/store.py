"""Sharded, mergeable, content-addressed store of tuned decisions.

One *decision* is the winner of an autotuning search for one point
``(machine band, collective, nodes, ppn, nbytes)``: the chosen
:class:`~repro.core.config.HanConfig` plus its expected time and
provenance.  The store keeps millions of them queryable at memory speed:

- **band digest** -- the hardware identity of a machine with the job
  geometry erased (:meth:`~repro.hardware.spec.MachineSpec.band`),
  digested through the :func:`repro.tuning.cache.digest` contract.  Two
  jobs of different sizes on the same hardware share a band, so one
  tuning sweep serves every job shape on that fleet.
- **point key** -- content digest of (band, coll, n, p, nbytes): the
  dedup identity of a decision.  Same point tuned twice resolves to one
  record (newest ``wall_time`` wins; ties break on the smaller
  ``config_digest``, so resolution is deterministic in any merge order).
- **shard** -- one directory per (band, coll):
  ``<root>/<band[:16]>/<coll>/``.  Writers append whole JSONL lines with
  ``O_APPEND`` to ``open.jsonl`` (the :class:`~repro.obs.store.RunStore`
  idiom: no locks, torn lines from dead writers are skipped on read);
  :meth:`compact` folds every segment of a shard into one immutable,
  deduped, content-named ``seg-<digest>.jsonl``.
- **merge** -- :meth:`merge_from` folds another store in record by
  record through the same resolution rule, so post-merge query results
  equal the pre-merge union.

``root=None`` keeps every shard in memory -- the serving bench and unit
tests use this mode.
"""

from __future__ import annotations

import json
import hashlib
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.tuning.cache import digest
from repro.tuning.lookup import config_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import HanConfig
    from repro.hardware.spec import MachineSpec
    from repro.tuning.autotuner import TuningReport

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "DecisionStore",
    "band_digest",
    "decision_record",
    "point_key",
]

#: bump when the decision-record layout changes incompatibly
SERVE_SCHEMA_VERSION = 1

#: keys every reader must tolerate/strip when comparing record content
RECORD_HEADER_KEYS = frozenset({"schema_version", "wall_time", "source"})

_BAND_DIR_CHARS = 16


def band_digest(machine: "MachineSpec") -> str:
    """Stable digest of the machine's hardware band (geometry erased)."""
    return digest(
        "machine-band",
        schema=SERVE_SCHEMA_VERSION,
        machine=machine.band(),
    )


def point_key(band: str, coll: str, n: int, p: int, nbytes: float) -> str:
    """Content-addressed dedup identity of one decision point."""
    return digest(
        "serve-point",
        schema=SERVE_SCHEMA_VERSION,
        band=band,
        coll=coll,
        n=int(n),
        p=int(p),
        nbytes=float(nbytes),
    )


def decision_record(
    machine: "MachineSpec",
    coll: str,
    nbytes: float,
    config: "HanConfig",
    expected_time: Optional[float] = None,
    source: str = "manual",
    n: Optional[int] = None,
    p: Optional[int] = None,
    wall_time: Optional[float] = None,
    traffic=None,
) -> dict:
    """One store line for a tuned decision.

    ``n``/``p`` default to the machine's geometry (a decision is tuned
    *for* a job shape even though the band digest erases it).

    ``traffic`` is the resolved background :class:`~repro.tenancy.TrafficPlan`
    the tuning measurements ran under, if any: decisions tuned under
    load carry its digest so a consumer can tell a quiet-machine winner
    from an interference-aware one.
    """
    from repro.obs.store import config_digest, traffic_digest

    band = band_digest(machine)
    n = machine.num_nodes if n is None else int(n)
    p = machine.ppn if p is None else int(p)
    return {
        "schema_version": SERVE_SCHEMA_VERSION,
        "key": point_key(band, coll, n, p, nbytes),
        "band": band,
        "machine": f"{machine.name} {n}x{p}",
        "coll": coll,
        "n": n,
        "p": p,
        "commsize": n * p,
        "nbytes": float(nbytes),
        "config": config_to_dict(config),
        "config_digest": config_digest(config),
        "expected_time": None if expected_time is None else float(expected_time),
        "traffic_digest": None if traffic is None else traffic_digest(traffic),
        "source": source,
        "wall_time": time.time() if wall_time is None else float(wall_time),
    }


def _wins(a: dict, b: dict) -> bool:
    """True when record ``a`` beats ``b`` for the same point key."""
    wa, wb = a.get("wall_time", 0.0), b.get("wall_time", 0.0)
    if wa != wb:
        return wa > wb
    return a.get("config_digest", "") < b.get("config_digest", "")


class DecisionStore:
    """Sharded (band, coll) decision store with O(1) point resolution.

    ``version`` increments on every mutation (append, merge, compact,
    refresh) so index layers (:class:`~repro.serve.service.DecisionService`)
    know when a cached shard view is stale.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        #: (band, coll) -> {point key -> resolved record}
        self._shards: dict[tuple[str, str], dict[str, dict]] = {}
        self.appends = 0
        self.version = 0

    # -- layout ------------------------------------------------------------------

    def _band_dir(self, band: str) -> Path:
        return self.root / band[:_BAND_DIR_CHARS]

    def _shard_dir(self, band: str, coll: str) -> Path:
        return self._band_dir(band) / coll

    def _write_band_marker(self, band: str, machine_label: str) -> None:
        marker = self._band_dir(band) / "BAND.json"
        if marker.exists():
            return
        marker.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=marker.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump({
                    "schema_version": SERVE_SCHEMA_VERSION,
                    "band": band,
                    "machine": machine_label,
                }, fh)
            os.replace(tmp, marker)  # racing warmers agree on content
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- shard loading ------------------------------------------------------------

    @staticmethod
    def _absorb(shard: dict, rec: dict) -> bool:
        """Fold one record into a resolved shard view; True if it won."""
        key = rec.get("key")
        if not key:
            return False
        cur = shard.get(key)
        if cur is None or _wins(rec, cur):
            shard[key] = rec
            return True
        return False

    def _iter_lines(self, shard_dir: Path) -> Iterator[dict]:
        for f in sorted(shard_dir.glob("*.jsonl")):
            try:
                text = f.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line from a dead writer: skip

    def _shard(self, band: str, coll: str) -> dict[str, dict]:
        view = self._shards.get((band, coll))
        if view is not None:
            return view
        view = {}
        if self.root is not None:
            shard_dir = self._shard_dir(band, coll)
            if shard_dir.is_dir():
                for rec in self._iter_lines(shard_dir):
                    # a band-prefix collision lands foreign records in
                    # this directory; the full digest in each line keeps
                    # them out of the view
                    if rec.get("band") == band:
                        self._absorb(view, rec)
        self._shards[(band, coll)] = view
        return view

    def refresh(self) -> None:
        """Drop cached shard views (pick up other processes' appends)."""
        self._shards.clear()
        self.version += 1

    # -- writing -----------------------------------------------------------------

    def append(self, rec: dict) -> str:
        """Append one decision record; returns its point key."""
        for field in ("key", "band", "coll", "n", "p", "nbytes", "config"):
            if field not in rec:
                raise ValueError(f"decision record must carry {field!r}")
        rec.setdefault("schema_version", SERVE_SCHEMA_VERSION)
        band, coll = rec["band"], rec["coll"]
        if self.root is not None:
            self._write_band_marker(band, rec.get("machine", "?"))
            shard_dir = self._shard_dir(band, coll)
            shard_dir.mkdir(parents=True, exist_ok=True)
            line = json.dumps(rec, sort_keys=True) + "\n"
            fd = os.open(shard_dir / "open.jsonl",
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        self._absorb(self._shard(band, coll), rec)
        self.appends += 1
        self.version += 1
        return rec["key"]

    def put_decision(
        self,
        machine: "MachineSpec",
        coll: str,
        nbytes: float,
        config: "HanConfig",
        expected_time: Optional[float] = None,
        source: str = "manual",
        n: Optional[int] = None,
        p: Optional[int] = None,
        wall_time: Optional[float] = None,
        traffic=None,
    ) -> str:
        return self.append(decision_record(
            machine, coll, nbytes, config,
            expected_time=expected_time, source=source, n=n, p=p,
            wall_time=wall_time, traffic=traffic,
        ))

    def put_report(
        self,
        machine: "MachineSpec",
        report: "TuningReport",
        source: Optional[str] = None,
        traffic=None,
    ) -> int:
        """Store every lookup-table winner of a tuning report.

        ``traffic`` stamps each decision with the background-traffic
        plan the tuning ran under (see :func:`decision_record`).
        """
        src = source or f"autotuner.{report.method}"
        count = 0
        for coll, n, p, m, cfg, best_time in report.winners():
            self.put_decision(
                machine, coll, m, cfg,
                expected_time=best_time, source=src, n=n, p=p,
                traffic=traffic,
            )
            count += 1
        return count

    # -- reading -----------------------------------------------------------------

    def get(self, band: str, coll: str, n: int, p: int,
            nbytes: float) -> Optional[dict]:
        """Exact point hit (resolved record), or None."""
        return self._shard(band, coll).get(
            point_key(band, coll, n, p, nbytes)
        )

    def records(self, band: str, coll: str) -> list[dict]:
        """Resolved records of one shard, in canonical point order."""
        return sorted(
            self._shard(band, coll).values(),
            key=lambda r: (r["n"], r["p"], r["nbytes"], r["key"]),
        )

    def bands(self) -> list[str]:
        """Every band digest with at least one shard."""
        out = {band for (band, _coll), view in self._shards.items() if view}
        if self.root is not None:
            for marker in self.root.glob("*/BAND.json"):
                try:
                    out.add(json.loads(marker.read_text())["band"])
                except (OSError, json.JSONDecodeError, KeyError):
                    continue
        return sorted(out)

    def colls(self, band: str) -> list[str]:
        out = {coll for (b, coll), view in self._shards.items()
               if b == band and view}
        if self.root is not None:
            band_dir = self._band_dir(band)
            if band_dir.is_dir():
                out.update(d.name for d in band_dir.iterdir() if d.is_dir())
        return sorted(out)

    def __len__(self) -> int:
        """Total resolved decisions across every shard."""
        return sum(
            len(self._shard(band, coll))
            for band in self.bands() for coll in self.colls(band)
        )

    def stats(self) -> dict:
        bands = self.bands()
        return {
            "persistent": self.root is not None,
            "bands": len(bands),
            "shards": sum(len(self.colls(b)) for b in bands),
            "records": len(self),
            "appends": self.appends,
        }

    # -- merge / compaction --------------------------------------------------------

    def merge_from(self, other: "DecisionStore") -> int:
        """Fold every record of ``other`` in; returns records absorbed.

        Records that lose to an already-stored record for the same point
        (older ``wall_time``, or equal-time larger ``config_digest``) are
        skipped, so merging is idempotent and order-independent: any
        merge order of the same stores resolves to the same view.
        """
        absorbed = 0
        for band in other.bands():
            for coll in other.colls(band):
                mine = self._shard(band, coll)
                for rec in other.records(band, coll):
                    cur = mine.get(rec["key"])
                    if cur is None or _wins(rec, cur):
                        self.append(dict(rec))
                        absorbed += 1
        return absorbed

    def compact(self, band: Optional[str] = None,
                coll: Optional[str] = None) -> dict:
        """Fold each shard's segments into one immutable, deduped segment.

        The surviving segment is content-named (``seg-<digest>.jsonl``
        over its canonical, sorted lines) and written atomically, so a
        reader never sees a half-compacted shard and re-compacting an
        already-compact shard is a no-op that reproduces the same file.
        """
        if self.root is None:
            return {"shards": 0, "records": 0, "removed_segments": 0}
        shards = 0
        records = 0
        removed = 0
        for b in ([band] if band else self.bands()):
            for c in ([coll] if coll else self.colls(b)):
                shard_dir = self._shard_dir(b, c)
                if not shard_dir.is_dir():
                    continue
                self._shards.pop((b, c), None)
                resolved = self.records(b, c)
                if not resolved:
                    continue
                lines = "".join(
                    json.dumps(r, sort_keys=True) + "\n" for r in resolved
                )
                seg_digest = hashlib.sha256(lines.encode("utf-8")).hexdigest()
                seg = shard_dir / f"seg-{seg_digest[:12]}.jsonl"
                old = [f for f in shard_dir.glob("*.jsonl") if f != seg]
                if not seg.exists():
                    fd, tmp = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
                    try:
                        with os.fdopen(fd, "w") as fh:
                            fh.write(lines)
                        os.replace(tmp, seg)
                    except BaseException:
                        if os.path.exists(tmp):
                            os.unlink(tmp)
                        raise
                for f in old:
                    try:
                        f.unlink()
                        removed += 1
                    except OSError:
                        pass
                self._shards[(b, c)] = {r["key"]: r for r in resolved}
                shards += 1
                records += len(resolved)
        self.version += 1
        return {
            "shards": shards, "records": records,
            "removed_segments": removed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root is not None else "memory"
        return f"<DecisionStore {where} records={len(self)}>"
