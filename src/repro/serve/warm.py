"""Pre-populate decision shards from Autotuner sweeps over a fleet.

``warm`` is the expensive half of the serving economics: run the offline
search once per (machine preset, geometry), store every winner, and let
every subsequent runtime query hit the shard.  Measurements reuse the
:mod:`repro.tuning.parallel` fan-out (``workers=``) and the persistent
:class:`~repro.tuning.cache.MeasurementCache` (``cache=``), so warming a
fleet twice costs one sweep.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.hardware.machines import MACHINE_PRESETS
from repro.hardware.spec import MachineSpec
from repro.serve.store import DecisionStore, band_digest
from repro.tuning.autotuner import Autotuner
from repro.tuning.cache import MeasurementCache
from repro.tuning.space import SearchSpace

__all__ = ["WARM_SPACES", "parse_fleet", "warm_machine", "warm_store"]

KiB, MiB = 1024, 1024 * 1024

#: named search spaces for warming; "quick" keeps CI smokes fast,
#: "small" is the standard test sweep, "full" the real store build
WARM_SPACES = {
    "quick": SearchSpace(
        seg_sizes=(None, 256 * KiB),
        messages=[2.0 ** k for k in range(14, 23, 2)],  # 16KB .. 4MB
        adapt_algorithms=("chain",),
        inner_segs=(None,),
        smods=("sm",),
    ),
    "small": SearchSpace.small(),
    "full": SearchSpace(),
}


def parse_fleet(text: str) -> list[MachineSpec]:
    """``"shaheen2:4x4,tiny_cluster"`` -> machine specs.

    Each entry is ``<preset>[:<nodes>x<ppn>]``; without a geometry the
    preset's default job shape is used.
    """
    fleet: list[MachineSpec] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, geom = part.partition(":")
        try:
            preset = MACHINE_PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown machine preset {name!r}; "
                f"known: {', '.join(sorted(MACHINE_PRESETS))}"
            ) from None
        machine = preset()
        if geom:
            try:
                nodes, ppn = (int(v) for v in geom.split("x"))
            except ValueError:
                raise ValueError(
                    f"bad geometry {geom!r} in {part!r}; expected NxP"
                ) from None
            machine = machine.scaled(num_nodes=nodes, ppn=ppn)
        fleet.append(machine)
    if not fleet:
        raise ValueError("empty fleet specification")
    return fleet


def warm_machine(
    machine: MachineSpec,
    store: DecisionStore,
    colls: Sequence[str] = ("bcast", "allreduce"),
    method: str = "task+h",
    space: Optional[SearchSpace] = None,
    workers: int = 0,
    cache: Optional[MeasurementCache] = None,
) -> dict:
    """Tune one machine and store every winner; returns a summary."""
    t0 = time.perf_counter()
    tuner = Autotuner(
        machine,
        space=space if space is not None else WARM_SPACES["small"],
        workers=workers,
        cache=cache,
    )
    report = tuner.tune(colls=tuple(colls), method=method)
    stored = store.put_report(machine, report)
    return {
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "band": band_digest(machine),
        "colls": list(colls),
        "method": method,
        "records": stored,
        "searches": report.searches,
        "tuning_cost_simulated_s": report.tuning_cost,
        "wall_s": time.perf_counter() - t0,
    }


def warm_store(
    fleet: Sequence[MachineSpec],
    store: DecisionStore,
    colls: Sequence[str] = ("bcast", "allreduce"),
    method: str = "task+h",
    space: Optional[SearchSpace] = None,
    workers: int = 0,
    cache: Optional[MeasurementCache] = None,
) -> list[dict]:
    """Warm shards for every machine of a fleet; one summary per machine."""
    return [
        warm_machine(machine, store, colls=colls, method=method,
                     space=space, workers=workers, cache=cache)
        for machine in fleet
    ]
