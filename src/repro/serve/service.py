"""The high-traffic query API over a :class:`~repro.serve.store.DecisionStore`.

:class:`DecisionService` answers batches of
``(machine | band, collective, nbytes, commsize)`` queries at memory
speed.  Resolution mirrors the runtime decision contract of
:meth:`repro.tuning.lookup.LookupTable.decide` — geometry dominates,
message size is the fastest-varying axis, equidistant candidates break
ties on the canonical ``(n, p, nbytes)`` order — and every answer is
stamped with provenance:

=============  ==================================================
``exact``      the point was tuned: geometry and nbytes both hit
``nearest``    resolved to the log-scale nearest sampled point
``interpolated``  nbytes falls strictly between two samples of the
               matching geometry; the nearer sample's config is
               served and ``expected_time`` is log-log interpolated
``default``    no shard for (band, coll): the untuned
               :meth:`~repro.core.han.HanModule.default_config`
=============  ==================================================

Before an answer leaves the service it gets a guideline verdict
(:func:`~repro.serve.guidelines.validate_decision`); violations are
counted, and under ``strict=True`` the config is *refused* (the answer
carries the verdict and the rejected config, but no servable config).
Verdicts are cached per underlying record, so validation costs nothing
on the hot repeated-hit path.

The service keeps a metrics registry
(:class:`~repro.obs.metrics.MetricsRegistry`) — decision counters per
(provenance, collective), violation/refusal counters, a batch-latency
histogram — and bounded wall-clock :class:`~repro.obs.core.Span` records
on the batch query path, so a serving process exports through the same
observability plane as the simulator.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort
from dataclasses import dataclass
from math import log2
from typing import Optional, Sequence

from repro.core.config import HanConfig
from repro.obs.core import Span
from repro.obs.metrics import MetricsRegistry
from repro.serve.guidelines import Verdict, validate_decision, verdict_from
from repro.serve.guidelines import COMPOSITIONS, GuidelineCheck
from repro.serve.store import DecisionStore, band_digest

__all__ = ["Decision", "DecisionService", "Query"]

_EPS = 1e-12


@dataclass(frozen=True)
class Query:
    """One runtime decision request.

    Identify the platform either by ``machine`` (a
    :class:`~repro.hardware.spec.MachineSpec`; its band digest and
    ``num_ranks`` are derived) or directly by ``band`` digest plus
    ``commsize``.
    """

    coll: str
    nbytes: float
    commsize: int = 0  # 0 = derive from machine.num_ranks
    machine: Optional[object] = None
    band: Optional[str] = None


@dataclass(frozen=True)
class Decision:
    """One served answer: config + provenance + guideline verdict."""

    query: Query
    config: Optional[HanConfig]
    provenance: str  # "exact" | "nearest" | "interpolated" | "default"
    expected_time: Optional[float]
    verdict: Verdict
    refused: bool = False
    #: point key of the underlying store record ("" for default answers)
    source_key: str = ""
    #: config withheld by strict mode (None unless refused)
    rejected_config: Optional[HanConfig] = None

    def to_doc(self) -> dict:
        from repro.tuning.lookup import config_to_dict

        q = self.query
        return {
            "coll": q.coll,
            "nbytes": float(q.nbytes),
            "commsize": int(q.commsize),
            "band": q.band or "",
            "provenance": self.provenance,
            "config": (config_to_dict(self.config)
                       if self.config is not None else None),
            "rejected_config": (config_to_dict(self.rejected_config)
                                if self.rejected_config is not None else None),
            "expected_time": self.expected_time,
            "refused": self.refused,
            "verdict": self.verdict.to_doc(),
            "source_key": self.source_key,
        }


class _ShardIndex:
    """Point/geometry/size indexes over one shard's resolved records."""

    __slots__ = ("points", "geoms", "sizes", "comm_geom")

    def __init__(self, records: Sequence[dict]):
        #: (n, p, nbytes) -> record  (the O(1) exact-hit path)
        self.points: dict[tuple[int, int, float], dict] = {}
        #: sorted [(commsize, n, p)] for geometry-distance scans
        self.geoms: list[tuple[int, int, int]] = []
        #: (n, p) -> sorted sampled nbytes
        self.sizes: dict[tuple[int, int], list[float]] = {}
        #: commsize -> canonical (n, p) when exactly one geometry has it
        self.comm_geom: dict[int, Optional[tuple[int, int]]] = {}
        for rec in records:
            n, p, m = int(rec["n"]), int(rec["p"]), float(rec["nbytes"])
            self.points[(n, p, m)] = rec
            geom = (n * p, n, p)
            if geom not in self.geoms:
                insort(self.geoms, geom)
            insort(self.sizes.setdefault((n, p), []), m)
            cur = self.comm_geom.get(n * p, ())
            if cur == ():
                self.comm_geom[n * p] = (n, p)
            elif cur is not None and cur != (n, p):
                self.comm_geom[n * p] = None  # ambiguous commsize

    def __bool__(self) -> bool:
        return bool(self.points)


def _default_verdict(reason: str) -> Verdict:
    return verdict_from([GuidelineCheck(
        name="default config", passed=True, severity="ok",
        detail=reason, cost_seconds=0.0,
    )])


class DecisionService:
    """Batched tuned-decision serving over a sharded store."""

    def __init__(
        self,
        store: DecisionStore,
        strict: bool = False,
        validate: bool = True,
        registry: Optional[MetricsRegistry] = None,
        max_spans: int = 256,
    ):
        self.store = store
        self.strict = strict
        self.validate = validate
        self.metrics = registry if registry is not None else MetricsRegistry()
        #: bounded wall-clock spans over decide_batch calls
        self.spans: list[Span] = []
        self.max_spans = max_spans
        self._next_sid = 0
        self._indexes: dict[tuple[str, str], tuple[int, _ShardIndex]] = {}
        self._verdicts: dict[str, Verdict] = {}
        self._band_cache: dict[int, str] = {}
        # hot-path caches: parsed configs per record, resolved counter
        # handles per label set (label resolution sorts + tuples)
        self._configs: dict[str, HanConfig] = {}
        self._counters: dict[tuple, object] = {}

    # -- plumbing ----------------------------------------------------------------

    def _band_for(self, machine) -> str:
        band = self._band_cache.get(id(machine))
        if band is None:
            band = band_digest(machine)
            self._band_cache[id(machine)] = band
        return band

    def _index(self, band: str, coll: str) -> _ShardIndex:
        cached = self._indexes.get((band, coll))
        if cached is not None and cached[0] == self.store.version:
            return cached[1]
        idx = _ShardIndex(self.store.records(band, coll))
        self._indexes[(band, coll)] = (self.store.version, idx)
        return idx

    def _resolve(self, q: Query) -> tuple[str, int]:
        band = q.band or (self._band_for(q.machine)
                          if q.machine is not None else None)
        if band is None:
            raise ValueError("query needs a machine or a band digest")
        commsize = int(q.commsize) if q.commsize else (
            q.machine.num_ranks if q.machine is not None else 0
        )
        if commsize <= 0:
            raise ValueError("query needs a positive commsize or a machine")
        return band, commsize

    # -- validation --------------------------------------------------------------

    def _verdict_for(self, band: str, rec: dict) -> Verdict:
        cached = self._verdicts.get(rec["key"])
        if cached is not None:
            return cached
        n, p, m = int(rec["n"]), int(rec["p"]), float(rec["nbytes"])
        coll = rec["coll"]
        idx = self._index(band, coll)
        neighbors = [
            idx.points[(n, p, ms)]
            for ms in idx.sizes.get((n, p), ()) if ms != m
        ]
        comp_times = None
        operands = COMPOSITIONS.get(coll, ())
        if operands:
            comp_times = {}
            for op in operands:
                op_rec = self._index(band, op).points.get((n, p, m))
                comp_times[op] = (op_rec or {}).get("expected_time")
        verdict = validate_decision(rec, neighbors=neighbors,
                                    composition_times=comp_times)
        self._verdicts[rec["key"]] = verdict
        return verdict

    # -- the decision path -------------------------------------------------------

    def decide(self, q: Query) -> Decision:
        band, commsize = self._resolve(q)
        idx = self._index(band, q.coll)
        m = float(q.nbytes)

        if not idx:
            decision = Decision(
                query=Query(q.coll, m, commsize, None, band),
                config=_default_config(m),
                provenance="default",
                expected_time=None,
                verdict=_default_verdict(
                    f"no decisions stored for band {band[:12]}/{q.coll}"),
            )
            self._count(decision)
            return decision

        # O(1) exact-hit fast path: known geometry, sampled nbytes
        rec = None
        if q.machine is not None:
            rec = idx.points.get((q.machine.num_nodes, q.machine.ppn, m))
        if rec is None:
            geom = idx.comm_geom.get(commsize)
            if geom:
                rec = idx.points.get((geom[0], geom[1], m))
        if rec is not None:
            return self._finish(q, band, commsize, rec, "exact",
                                rec.get("expected_time"))

        # geometry: smallest log-distance on commsize, all ties kept;
        # when the querying machine's own (n, p) is among the ties it
        # wins outright (same commsize, different split)
        lc = log2(max(commsize, 1))
        best_gd = min(abs(log2(c) - lc) for c, _n, _p in idx.geoms)
        geo = [(n, p) for c, n, p in idx.geoms
               if abs(log2(c) - lc) <= best_gd + _EPS]
        if q.machine is not None:
            own = (q.machine.num_nodes, q.machine.ppn)
            if own in geo:
                geo = [own]
        geometry_exact = best_gd <= _EPS

        # nbytes: nearest sampled size among the tied geometries;
        # equidistant candidates fall back to the canonical (dm, n, p, m)
        # order — the PR 2 decide() tie-break, never insertion order
        lm = log2(max(m, 1.0))
        cands: list[tuple[float, int, int, float]] = []
        for n, p in geo:
            sizes = idx.sizes[(n, p)]
            i = bisect_left(sizes, m)
            for j in (i - 1, i):
                if 0 <= j < len(sizes):
                    ms = sizes[j]
                    cands.append(
                        (abs(log2(max(ms, 1.0)) - lm), n, p, ms))
        dm, n, p, ms = min(cands)
        rec = idx.points[(n, p, ms)]
        served_time = rec.get("expected_time")

        if geometry_exact and dm <= _EPS:
            provenance = "exact"
        elif geometry_exact:
            # interior query: interpolate between the bracketing samples
            sizes = idx.sizes[(n, p)]
            i = bisect_left(sizes, m)
            if 0 < i < len(sizes):
                lo, hi = sizes[i - 1], sizes[i]
                t_lo = idx.points[(n, p, lo)].get("expected_time")
                t_hi = idx.points[(n, p, hi)].get("expected_time")
                provenance = "interpolated"
                if t_lo is not None and t_hi is not None:
                    span = log2(hi) - log2(lo)
                    w = (lm - log2(lo)) / span if span > 0 else 0.0
                    served_time = t_lo + w * (t_hi - t_lo)
            else:
                provenance = "nearest"  # outside the sampled range
        else:
            provenance = "nearest"

        return self._finish(q, band, commsize, rec, provenance, served_time)

    def _finish(self, q: Query, band: str, commsize: int, rec: dict,
                provenance: str, served_time) -> Decision:
        verdict = (self._verdict_for(band, rec) if self.validate
                   else _default_verdict("validation disabled"))
        config = self._configs.get(rec["key"])
        if config is None:
            config = HanConfig(**rec["config"])
            self._configs[rec["key"]] = config
        refused = self.strict and not verdict.ok
        decision = Decision(
            query=Query(q.coll, float(q.nbytes), commsize, None, band),
            config=None if refused else config,
            provenance=provenance,
            expected_time=served_time,
            verdict=verdict,
            refused=refused,
            source_key=rec["key"],
            rejected_config=config if refused else None,
        )
        self._count(decision)
        return decision

    def decide_batch(self, queries: Sequence[Query]) -> list[Decision]:
        t0 = time.perf_counter()
        out = [self.decide(q) for q in queries]
        dt = time.perf_counter() - t0
        self.metrics.histogram("serve.batch_seconds").observe(dt)
        if dt > 0:
            self.metrics.gauge("serve.last_batch_qps").set(len(out) / dt)
        if len(self.spans) < self.max_spans:
            self.spans.append(Span(
                sid=self._next_sid, track="serve",
                name=f"decide_batch[{len(queries)}]", cat="serve",
                t0=t0, t1=t0 + dt,
                args={"queries": len(queries),
                      "refused": sum(1 for d in out if d.refused)},
            ))
            self._next_sid += 1
        return out

    def _counter(self, name: str, **labels):
        key = (name, *sorted(labels.items()))
        c = self._counters.get(key)
        if c is None:
            c = self.metrics.counter(name, **labels)
            self._counters[key] = c
        return c

    def _count(self, decision: Decision) -> None:
        coll = decision.query.coll
        self._counter("serve.decisions",
                      provenance=decision.provenance, coll=coll).inc()
        if not decision.verdict.ok:
            self._counter("serve.violations", coll=coll).inc()
        if decision.refused:
            self._counter("serve.refused", coll=coll).inc()

    # -- adapters ----------------------------------------------------------------

    def as_decision_fn(self, machine):
        """A ``(n, p, nbytes, coll) -> HanConfig`` hook for HanModule.

        Refused (strict-mode) answers fall back to the untuned default
        config — the runtime must always get *some* decision.
        """
        from repro.core.han import HanModule

        band = self._band_for(machine)

        def decide(n: int, p: int, nbytes: float, coll: str) -> HanConfig:
            d = self.decide(Query(coll=coll, nbytes=nbytes,
                                  commsize=int(n) * int(p), band=band))
            if d.config is None:
                return HanModule.default_config(nbytes)
            return d.config

        return decide

    def stats(self) -> dict:
        """Counter snapshot (hit/fallback/violation totals)."""
        out = {"decisions": {}, "violations": 0, "refused": 0}
        for c in self.metrics.counters:
            labels = dict(c.labels)
            if c.name == "serve.decisions":
                prov = labels.get("provenance", "?")
                out["decisions"][prov] = (
                    out["decisions"].get(prov, 0) + int(c.value))
            elif c.name == "serve.violations":
                out["violations"] += int(c.value)
            elif c.name == "serve.refused":
                out["refused"] += int(c.value)
        out["queries"] = sum(out["decisions"].values())
        return out


def _default_config(nbytes: float) -> HanConfig:
    """The untuned default config (lazy import keeps serving light)."""
    from repro.core.han import HanModule

    return HanModule.default_config(nbytes)
