"""The TrafficPlan: a declarative, seedable schedule of tenant jobs.

Mirrors :class:`repro.faults.FaultPlan` deliberately — same immutability,
same ``seed`` / ``trial`` realization semantics, same entropy tree
(:mod:`repro.util.entropy`)::

    SeedSequence(seed, spawn_key=(trial,))
        ├── child 0  -> tenant 0's RNG stream (gap jitter)
        ├── child 1  -> tenant 1's RNG stream
        └── ...

so one ``(seed, trial)`` pair is one reproducible background-traffic
realization, and the fault and traffic subsystems can share a top-level
seed without their streams interfering (they spawn from *different*
plan roots).

A plan is plain data end to end: it digests through
:func:`repro.tuning.cache.canonical` for the measurement-key contract,
and round-trips through JSON (:meth:`TrafficPlan.to_doc` /
:meth:`TrafficPlan.from_doc`) for CLI ``--traffic-plan`` file specs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.config import HanConfig
from repro.util.entropy import entropy_children

__all__ = [
    "PATTERNS",
    "TRAFFIC_PRESETS",
    "TenantWorkload",
    "TrafficPlan",
    "load_traffic",
    "traffic_preset",
]

KiB, MiB = 1024, 1024 * 1024

#: the three background-traffic shapes a tenant can replay
PATTERNS = ("periodic", "bursty", "sweep")

#: collectives a tenant may drive (must accept ``op(comm, nbytes)`` or
#: ``op(comm, nbytes, root=...)`` on :class:`~repro.core.han.HanModule`)
ROOTED_COLLS = ("bcast", "reduce")


@dataclass(frozen=True)
class TenantWorkload:
    """One background tenant: a job replaying a collective pattern.

    ======== =========================================================
    field    meaning
    ======== =========================================================
    name     label for stats / metrics (must be unique within a plan)
    coll     HAN collective the tenant drives
    pattern  ``periodic`` (one op per interval), ``bursty`` (``burst``
             back-to-back ops per interval), ``sweep`` (interval ops
             cycling through ``sizes``)
    nbytes   message size (``periodic`` / ``bursty``)
    sizes    message-size cycle (``sweep``; overrides ``nbytes``)
    gap      mean idle time between iterations, simulated seconds
    jitter   fractional gap perturbation drawn from the tenant's seeded
             RNG stream: ``gap * (1 + jitter * U[-1, 1))``
    burst    ops per iteration (>= 2 only for ``bursty``)
    ranks    world ranks the tenant occupies (``None`` = all of them)
    config   the tenant's own :class:`HanConfig` (``None`` = default)
    root     root rank for rooted collectives
    max_ops  stop after this many collectives (0 = run until stopped)
    ======== =========================================================
    """

    name: str
    coll: str = "allreduce"
    pattern: str = "periodic"
    nbytes: float = 256 * KiB
    sizes: Tuple[float, ...] = ()
    gap: float = 0.0
    jitter: float = 0.0
    burst: int = 1
    ranks: Optional[Tuple[int, ...]] = None
    config: Optional[HanConfig] = None
    root: int = 0
    max_ops: int = 0

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.pattern == "sweep" and len(self.sizes) < 2:
            raise ValueError("sweep tenants need at least two sizes")
        if self.pattern != "sweep" and self.sizes:
            raise ValueError("sizes is only meaningful for pattern='sweep'")
        if self.pattern == "bursty" and self.burst < 2:
            raise ValueError("bursty tenants need burst >= 2")
        if self.pattern != "bursty" and self.burst != 1:
            raise ValueError("burst != 1 is only meaningful for pattern='bursty'")
        if self.gap < 0 or self.jitter < 0:
            raise ValueError("gap and jitter must be >= 0")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("every sweep size must be positive")
        if self.max_ops < 0:
            raise ValueError("max_ops must be >= 0")

    def size_cycle(self) -> Tuple[float, ...]:
        """The message sizes one iteration's ops cycle through."""
        return self.sizes if self.sizes else (self.nbytes,)


@dataclass(frozen=True)
class TrafficPlan:
    """An immutable set of tenant workloads plus the entropy to drive them.

    ``seed=None`` means "resolve later" — consumers that own a
    :class:`~repro.core.HanConfig` substitute ``config.seed`` (see
    ``tuning.measure``); a still-unresolved seed falls back to 0 so a
    bare plan stays deterministic.  ``trial`` selects one traffic
    realization; repeated-trial measurement re-installs the plan with
    ``for_trial(0..k-1)``, exactly like :class:`FaultPlan`.
    """

    tenants: Tuple[TenantWorkload, ...] = ()
    seed: Optional[int] = None
    trial: int = 0

    def __post_init__(self) -> None:
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    def add(self, *tenants: TenantWorkload) -> "TrafficPlan":
        """Functional append (plans are immutable)."""
        return replace(self, tenants=self.tenants + tuple(tenants))

    def with_seed(self, seed: Optional[int]) -> "TrafficPlan":
        return replace(self, seed=seed)

    def for_trial(self, trial: int) -> "TrafficPlan":
        """The same tenants under the ``trial``-th traffic realization."""
        return replace(self, trial=int(trial))

    def resolve_seed(self, fallback: Optional[int]) -> "TrafficPlan":
        """Fill an unset seed from ``fallback`` (e.g. ``HanConfig.seed``)."""
        if self.seed is not None or fallback is None:
            return self
        return replace(self, seed=fallback)

    def tenant_children(self):
        """One entropy child per tenant, in tenant order (the shared tree)."""
        return entropy_children(self.seed, len(self.tenants), trial=self.trial)

    def describe(self) -> str:
        ten = ", ".join(
            f"{t.name}:{t.coll}/{t.pattern}" for t in self.tenants
        ) or "none"
        return f"TrafficPlan(seed={self.seed}, trial={self.trial}, [{ten}])"

    # -- JSON spec round-trip -----------------------------------------------------

    def to_doc(self) -> dict:
        """JSON-safe rendering (CLI file specs, result provenance)."""
        tenants = []
        for t in self.tenants:
            doc = {
                "name": t.name, "coll": t.coll, "pattern": t.pattern,
                "nbytes": t.nbytes, "sizes": list(t.sizes),
                "gap": t.gap, "jitter": t.jitter, "burst": t.burst,
                "ranks": None if t.ranks is None else list(t.ranks),
                "config": None, "root": t.root, "max_ops": t.max_ops,
            }
            if t.config is not None:
                doc["config"] = {
                    "fs": t.config.fs, "imod": t.config.imod,
                    "smod": t.config.smod, "ibalg": t.config.ibalg,
                    "iralg": t.config.iralg, "ibs": t.config.ibs,
                    "irs": t.config.irs,
                }
            tenants.append(doc)
        return {
            "__kind__": "traffic_plan",
            "seed": self.seed,
            "trial": self.trial,
            "tenants": tenants,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TrafficPlan":
        """Inverse of :meth:`to_doc` (tolerates a missing ``__kind__``)."""
        tenants = []
        for t in doc.get("tenants", ()):
            t = dict(t)
            cfg = t.get("config")
            if cfg is not None:
                t["config"] = HanConfig(**cfg)
            t["sizes"] = tuple(t.get("sizes") or ())
            ranks = t.get("ranks")
            t["ranks"] = None if ranks is None else tuple(ranks)
            tenants.append(TenantWorkload(**t))
        return cls(
            tenants=tuple(tenants),
            seed=doc.get("seed"),
            trial=int(doc.get("trial", 0)),
        )


# -- named presets (CLI --traffic-plan) ---------------------------------------------


def _allreduce_sweep() -> TrafficPlan:
    """One tenant sweeping allreduce sizes — the two-tenant smoke's load."""
    return TrafficPlan().add(
        TenantWorkload(
            name="bg-allreduce",
            coll="allreduce",
            pattern="sweep",
            sizes=(64 * KiB, 256 * KiB, 1 * MiB),
            gap=2e-5,
            jitter=0.5,
        )
    )


def _bcast_periodic() -> TrafficPlan:
    return TrafficPlan().add(
        TenantWorkload(
            name="bg-bcast",
            coll="bcast",
            pattern="periodic",
            nbytes=512 * KiB,
            gap=5e-5,
            jitter=0.25,
        )
    )


def _bursty_mix() -> TrafficPlan:
    """Two tenants: a bursty allreduce plus a steady periodic bcast."""
    return TrafficPlan().add(
        TenantWorkload(
            name="bg-bursty-allreduce",
            coll="allreduce",
            pattern="bursty",
            nbytes=256 * KiB,
            burst=3,
            gap=1e-4,
            jitter=0.5,
        ),
        TenantWorkload(
            name="bg-steady-bcast",
            coll="bcast",
            pattern="periodic",
            nbytes=128 * KiB,
            gap=2e-5,
        ),
    )


TRAFFIC_PRESETS = {
    "allreduce_sweep": _allreduce_sweep,
    "bcast_periodic": _bcast_periodic,
    "bursty_mix": _bursty_mix,
}


def traffic_preset(name: str) -> TrafficPlan:
    """A named background-traffic plan (see :data:`TRAFFIC_PRESETS`)."""
    try:
        return TRAFFIC_PRESETS[name]()
    except KeyError:
        raise ValueError(
            f"unknown traffic preset {name!r}; "
            f"want one of {sorted(TRAFFIC_PRESETS)}"
        ) from None


def load_traffic(spec: str, seed: Optional[int] = None) -> TrafficPlan:
    """A plan from a ``--traffic-plan`` spec: preset name or JSON file.

    The shared resolution rule for every CLI surface (``repro.tuning.cli``,
    the experiment drivers): preset names win, anything else must be a
    path to a :meth:`TrafficPlan.to_doc` JSON document.  ``seed``, when
    given, overrides the plan's own.
    """
    import json
    from pathlib import Path

    if spec in TRAFFIC_PRESETS:
        plan = TRAFFIC_PRESETS[spec]()
    else:
        path = Path(spec)
        if not path.exists():
            raise ValueError(
                f"traffic plan {spec!r} is neither a preset "
                f"({', '.join(sorted(TRAFFIC_PRESETS))}) nor a JSON file"
            )
        plan = TrafficPlan.from_doc(json.loads(path.read_text()))
    return plan.with_seed(seed) if seed is not None else plan
