"""Multi-tenant traffic: concurrent jobs sharing one simulated machine.

Production fabrics never run one job, yet every measurement the tuning
stack produces assumed a quiet machine.  This package closes that gap:

- :class:`TenantWorkload` / :class:`TrafficPlan` — a declarative,
  seedable description of background tenant jobs (periodic / bursty /
  message-size-sweep collective patterns), mirroring
  :class:`repro.faults.FaultPlan`'s entropy-tree contract
  (:mod:`repro.util.entropy`): one seed, one ``trial`` realization
  index, independent per-tenant RNG streams.
- :class:`TenantScheduler` — runs N simulated jobs concurrently on one
  :class:`~repro.hardware.MachineSpec`.  Each job gets its own
  communicator (private tag space via
  :meth:`repro.mpi.MPIRuntime.spawn_job`) but contends for the shared
  NIC / link / memory-bus fluid resources and per-rank progress
  servers — the existing max-min fair-share solver does all the work.
- ``measure_collective(traffic_plan=...)`` (:mod:`repro.tuning.measure`)
  times a foreground collective while the plan's tenants replay, and
  stamps the plan into the measurement digest so loaded and quiet
  measurements never alias in the cache, the run store, or the decision
  store.

Determinism contract (same as :mod:`repro.faults`): no plan or an empty
plan is bit-identical to a run without this subsystem; a fixed
``(seed, trial)`` replays the exact same background traffic; different
trials are independent realizations.
"""

from repro.tenancy.plan import (
    PATTERNS,
    TRAFFIC_PRESETS,
    TenantWorkload,
    TrafficPlan,
    load_traffic,
    traffic_preset,
)
from repro.tenancy.scheduler import TenantScheduler, measure_interference

__all__ = [
    "PATTERNS",
    "TRAFFIC_PRESETS",
    "TenantScheduler",
    "TenantWorkload",
    "TrafficPlan",
    "load_traffic",
    "measure_interference",
    "traffic_preset",
]
