"""The TenantScheduler: N simulated jobs contending on one machine.

Each tenant workload is launched as its own *job* — a fresh
communicator over its rank group (:meth:`repro.mpi.MPIRuntime.spawn_job`),
so tenant messages can never match foreground receives — and replays its
traffic pattern in a loop: seeded gap, then one (or a burst of)
collectives.  Contention needs no new machinery: all jobs share the
fabric's fluid NIC / link / memory-bus resources (max-min fair share)
and the per-rank serial progress servers, so background traffic slows
the foreground exactly the way a co-tenant does.

Stopping discipline: background tenants run until
:meth:`TenantScheduler.stop` force-finishes them
(:meth:`~repro.sim.engine.Engine.kill`) — a *single* deterministic point
in event order, taken when the last foreground rank completes.  A
cooperative per-iteration stop flag would be read by different tenant
ranks at different simulated times, letting some ranks enter a
collective that others skip — a deadlock; the kill cannot, because it
retires every rank of a tenant at the same instant.

Determinism: given one ``(machine, profile, TrafficPlan(seed, trial),
foreground program)`` tuple, two runs are bit-identical — tenant RNG
streams come from the plan's entropy tree, and the engine orders
same-instant events by (priority, sequence).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.sim.engine import SimProcess, Sleep
from repro.tenancy.plan import ROOTED_COLLS, TenantWorkload, TrafficPlan

__all__ = ["TenantScheduler", "measure_interference"]


def _tenant_program(
    comm,
    tenant: TenantWorkload,
    seed_seq,
    stats: dict,
) -> Generator:
    """One rank's replay loop for one tenant workload.

    Every rank of the tenant builds its RNG from the *same* entropy
    child, draws exactly one uniform per iteration, and therefore
    computes the same gap sequence — so ranks agree on the schedule
    without any coordination messages.
    """
    from repro.core.han import HanModule

    rng = np.random.Generator(np.random.PCG64(seed_seq))
    han = HanModule(config=tenant.config) if tenant.config else HanModule()
    op = getattr(han, tenant.coll)
    rooted = tenant.coll in ROOTED_COLLS
    sizes = tenant.size_cycle()
    ops_done = 0
    iteration = 0
    while tenant.max_ops == 0 or ops_done < tenant.max_ops:
        # one draw per iteration, used or not: keeps the stream aligned
        # across pattern variants with the same seed
        u = float(rng.random())
        gap = tenant.gap * max(0.0, 1.0 + tenant.jitter * (2.0 * u - 1.0))
        if gap > 0.0:
            yield Sleep(gap)
        for b in range(tenant.burst):
            nbytes = sizes[(iteration * tenant.burst + b) % len(sizes)]
            if rooted:
                yield from op(comm, nbytes, root=tenant.root)
            else:
                yield from op(comm, nbytes)
            ops_done += 1
            if comm.rank == 0:
                stats["ops"] += 1
                stats["bytes"] += float(nbytes)
            if tenant.max_ops and ops_done >= tenant.max_ops:
                break
        iteration += 1


class TenantScheduler:
    """Launch a :class:`TrafficPlan`'s tenants on a live runtime.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets
    per-tenant ``tenant_ops_total`` / ``tenant_bytes_total`` counters
    folded in at :meth:`stop` time; measurement timing is unaffected
    (counters are plain Python adds outside the simulated clock).
    """

    def __init__(
        self,
        runtime,
        plan: TrafficPlan,
        metrics=None,
    ):
        self.runtime = runtime
        self.plan = plan
        self.metrics = metrics
        #: tenant name -> {"ops": int, "bytes": float}
        self.stats: dict[str, dict] = {
            t.name: {"ops": 0, "bytes": 0.0} for t in plan.tenants
        }
        self._procs: list[SimProcess] = []
        self._launched = False
        self._stopped = False

    def launch(self) -> list[SimProcess]:
        """Spawn every tenant's ranks (idempotent; nothing runs yet)."""
        if self._launched:
            return self._procs
        self._launched = True
        children = self.plan.tenant_children()
        for tenant, child in zip(self.plan.tenants, children):
            self._procs.extend(
                self.runtime.spawn_job(
                    _tenant_program,
                    tenant,
                    child,
                    self.stats[tenant.name],
                    group=tenant.ranks,
                    name=f"tenant:{tenant.name}",
                )
            )
        return self._procs

    def stop(self) -> None:
        """Force-finish every unfinished tenant process (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        kill = self.runtime.engine.kill
        for proc in self._procs:
            kill(proc)
        if self.metrics is not None:
            for name, s in self.stats.items():
                self.metrics.counter(
                    "tenant_ops_total", tenant=name
                ).inc(s["ops"])
                self.metrics.counter(
                    "tenant_bytes_total", tenant=name
                ).inc(s["bytes"])

    def run(
        self,
        program: Callable[..., Generator],
        *args,
        group: Optional[tuple[int, ...]] = None,
        name: str = "foreground",
    ) -> list:
        """Run ``program`` as the foreground job under background load.

        Tenants are launched first (they start at t=0 alongside the
        foreground), the foreground job runs on its own communicator,
        and the moment its last rank completes the tenants are stopped —
        so the engine drains and foreground timings cover exactly the
        loaded interval.  Returns the foreground per-rank results.
        """
        self.launch()
        procs = self.runtime.spawn_job(program, *args, group=group, name=name)
        remaining = [len(procs)]

        def on_done(_ev) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self.stop()

        for p in procs:
            p.done_event.callbacks.append(on_done)
        self.runtime.engine.run()
        return [p.result for p in procs]


def measure_interference(
    machine,
    coll: str,
    nbytes: float,
    config,
    plan: TrafficPlan,
    profile=None,
    root: int = 0,
) -> dict:
    """Solo vs loaded foreground time for one collective (the smoke unit).

    Runs the same foreground collective twice — once on a quiet machine,
    once under ``plan``'s tenants — and reports the slowdown.  Both runs
    are deterministic, so the dict is reproducible bit-for-bit.
    """
    from repro.tuning.measure import measure_collective

    solo = measure_collective(
        machine, coll, nbytes, config, root=root, profile=profile
    )
    loaded = measure_collective(
        machine, coll, nbytes, config, root=root, profile=profile,
        traffic_plan=plan,
    )
    return {
        "coll": coll,
        "nbytes": float(nbytes),
        "traffic": plan.describe(),
        "solo_time": solo.time,
        "loaded_time": loaded.time,
        "slowdown": loaded.time / solo.time if solo.time else float("inf"),
    }
