"""Small cross-subsystem utilities (no simulation dependencies)."""

from repro.util.entropy import entropy_children, entropy_root, generators_from

__all__ = ["entropy_children", "entropy_root", "generators_from"]
