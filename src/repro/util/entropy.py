"""The repo-wide entropy-tree contract, in one place.

Every seeded *plan* (:class:`repro.faults.FaultPlan`,
:class:`repro.tenancy.TrafficPlan`) derives its randomness the same
way: one top-level integer seed, one realization index (``trial``), and
``numpy.random.SeedSequence.spawn`` for the children::

    SeedSequence(seed, spawn_key=(trial,))
        ├── child 0  -> item 0   (injector / tenant workload)
        ├── child 1  -> item 1
        └── ...

so each ``(seed, trial)`` pair is an independent, reproducible
realization and per-item RNG streams never interfere.  ``seed=None``
falls back to 0, keeping a bare plan deterministic.

This module is the *only* implementation of that tree; plans must not
re-derive it ad hoc.  The regression suite pins the realizations of the
pre-extraction :class:`FaultPlan` bit-identically against this helper,
so refactors here are observable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["entropy_children", "entropy_root", "generators_from"]


def entropy_root(
    seed: Optional[int], trial: Optional[int] = None
) -> np.random.SeedSequence:
    """The root ``SeedSequence`` of one plan realization.

    ``trial=None`` is the trial-less root (``SeedSequence(seed)`` with no
    spawn key) used by helpers that spawn outside any realization — it is
    *not* the same tree node as ``trial=0``, and the distinction is part
    of the pinned contract.
    """
    if trial is None:
        return np.random.SeedSequence(0 if seed is None else seed)
    return np.random.SeedSequence(
        0 if seed is None else seed, spawn_key=(int(trial),)
    )


def entropy_children(
    seed: Optional[int], n: int, trial: Optional[int] = None
) -> list[np.random.SeedSequence]:
    """``n`` independent child sequences of realization ``(seed, trial)``."""
    return entropy_root(seed, trial).spawn(n)


def generators_from(children) -> list[np.random.Generator]:
    """PCG64 generators, one per child sequence (the repo's stream type)."""
    return [np.random.Generator(np.random.PCG64(s)) for s in children]
