"""Classic collective communication algorithms.

These are the fine-grained algorithms HAN composes (paper section III):
the Tuned/Libnbc/ADAPT/SM/SOLO submodules all pick from this library.
Every algorithm is a generator taking a communicator and is *data-capable*:
pass numpy payloads and the collective computes real results (used by the
correctness test-suite); pass ``payload=None`` and only the communication
timing is simulated (used by benchmarks at large message sizes).

Registries (``BCAST_ALGORITHMS`` etc.) map algorithm names to callables so
the autotuner can enumerate the search space (Table II's ``ibalg``/
``iralg`` entries).
"""

from repro.colls.barrier import (
    barrier_dissemination,
    barrier_linear,
    barrier_recursive_doubling,
    barrier_tree,
)
from repro.colls.bcast import (
    bcast_binary,
    bcast_binomial,
    bcast_chain,
    bcast_linear,
    bcast_scatter_allgather,
    bcast_split_binary,
)
from repro.colls.reduce import (
    reduce_binary,
    reduce_binomial,
    reduce_chain,
    reduce_linear,
)
from repro.colls.allreduce import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
    allreduce_ring,
)
from repro.colls.allgather import (
    allgather_bruck,
    allgather_linear,
    allgather_recursive_doubling,
    allgather_ring,
)
from repro.colls.gather import gather_binomial, gather_linear
from repro.colls.scatter import scatter_binomial, scatter_linear
from repro.colls.reduce_scatter import (
    reduce_scatter_recursive_halving,
    reduce_scatter_ring,
)
from repro.colls.alltoall import alltoall_bruck, alltoall_pairwise
from repro.colls.scan import exscan_linear, scan_linear, scan_recursive_doubling

BCAST_ALGORITHMS = {
    "linear": bcast_linear,
    "chain": bcast_chain,
    "binary": bcast_binary,
    "binomial": bcast_binomial,
    "split_binary": bcast_split_binary,
    "scatter_allgather": bcast_scatter_allgather,
}

REDUCE_ALGORITHMS = {
    "linear": reduce_linear,
    "chain": reduce_chain,
    "binary": reduce_binary,
    "binomial": reduce_binomial,
}

ALLREDUCE_ALGORITHMS = {
    "recursive_doubling": allreduce_recursive_doubling,
    "ring": allreduce_ring,
    "rabenseifner": allreduce_rabenseifner,
    "reduce_bcast": allreduce_reduce_bcast,
}

ALLGATHER_ALGORITHMS = {
    "ring": allgather_ring,
    "bruck": allgather_bruck,
    "recursive_doubling": allgather_recursive_doubling,
    "linear": allgather_linear,
}

GATHER_ALGORITHMS = {"linear": gather_linear, "binomial": gather_binomial}
SCATTER_ALGORITHMS = {"linear": scatter_linear, "binomial": scatter_binomial}
REDUCE_SCATTER_ALGORITHMS = {
    "ring": reduce_scatter_ring,
    "recursive_halving": reduce_scatter_recursive_halving,
}
BARRIER_ALGORITHMS = {
    "dissemination": barrier_dissemination,
    "recursive_doubling": barrier_recursive_doubling,
    "tree": barrier_tree,
    "linear": barrier_linear,
}
ALLTOALL_ALGORITHMS = {"pairwise": alltoall_pairwise, "bruck": alltoall_bruck}
SCAN_ALGORITHMS = {
    "linear": scan_linear,
    "recursive_doubling": scan_recursive_doubling,
}

__all__ = [
    "BCAST_ALGORITHMS",
    "REDUCE_ALGORITHMS",
    "ALLREDUCE_ALGORITHMS",
    "ALLGATHER_ALGORITHMS",
    "GATHER_ALGORITHMS",
    "SCATTER_ALGORITHMS",
    "REDUCE_SCATTER_ALGORITHMS",
    "BARRIER_ALGORITHMS",
    "ALLTOALL_ALGORITHMS",
    "SCAN_ALGORITHMS",
    # bcast
    "bcast_linear",
    "bcast_chain",
    "bcast_binary",
    "bcast_binomial",
    "bcast_split_binary",
    "bcast_scatter_allgather",
    # reduce
    "reduce_linear",
    "reduce_chain",
    "reduce_binary",
    "reduce_binomial",
    # allreduce
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "allreduce_rabenseifner",
    "allreduce_reduce_bcast",
    # allgather
    "allgather_ring",
    "allgather_bruck",
    "allgather_recursive_doubling",
    "allgather_linear",
    # gather / scatter
    "gather_linear",
    "gather_binomial",
    "scatter_linear",
    "scatter_binomial",
    # reduce_scatter
    "reduce_scatter_ring",
    "reduce_scatter_recursive_halving",
    # barrier
    "barrier_dissemination",
    "barrier_recursive_doubling",
    "barrier_tree",
    "barrier_linear",
    # alltoall
    "alltoall_pairwise",
    "alltoall_bruck",
    # scan
    "scan_linear",
    "scan_recursive_doubling",
    "exscan_linear",
]
