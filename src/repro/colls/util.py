"""Shared helpers for collective algorithms: tags, segmentation, buffers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mpi.communicator import Communicator
from repro.mpi.constants import INTERNAL_TAG_BASE

__all__ = ["coll_tag_block", "Segmenter", "vrank", "unvrank", "charge_reduce", "combine"]

# Collective traffic lives in its own tag region, below the runtime's
# internal region, above anything user code should use.  Blocks are
# allocated monotonically — never recycled — so a long-lived collective
# (e.g. a nonblocking inter-node phase still draining) can never alias
# the tags of a later call on the same communicator.  The region spans
# everything up to the internal base: 2^25 blocks of 4096 tags.
COLL_TAG_BASE = 1 << 28
_TAG_BLOCK = 4096
_TAG_SLOTS = (INTERNAL_TAG_BASE - COLL_TAG_BASE) // _TAG_BLOCK


def coll_tag_block(comm: Communicator) -> int:
    """Allocate a fresh block of tags for one collective call.

    Ranks allocate identically because MPI requires collective calls to be
    issued in the same order on every rank of a communicator.

    Raises once a communicator has issued ``_TAG_SLOTS`` collectives:
    reusing a block while a prior collective is still in flight would
    silently cross-match messages, and the allocator cannot know which
    blocks have drained.  Communicators needing more should ``dup()``
    themselves a fresh tag space.
    """
    seq = getattr(comm, "_coll_seq", 0)
    if seq >= _TAG_SLOTS:
        raise RuntimeError(
            f"collective tag space exhausted on {comm!r}: {seq} collectives "
            f"issued (max {_TAG_SLOTS}); reusing tag blocks could alias an "
            "in-flight collective — dup() the communicator for a fresh space"
        )
    comm._coll_seq = seq + 1
    return COLL_TAG_BASE + seq * _TAG_BLOCK


def vrank(rank: int, root: int, size: int) -> int:
    """Virtual rank with the root rotated to 0."""
    return (rank - root) % size


def unvrank(v: int, root: int, size: int) -> int:
    """Inverse of :func:`vrank`."""
    return (v + root) % size


class Segmenter:
    """Splits one message into pipeline segments.

    The segment *structure* (count and nominal byte sizes) derives only
    from the declared ``(nbytes, segsize)`` pair, so every rank of a
    collective -- with or without a payload in hand -- agrees on how many
    messages will flow.  When a payload is supplied (1-D numpy array),
    segment *data* is an nseg-way element-aligned split of it (views, no
    copies); actual view byte counts may differ from the nominal sizes by
    up to one element, which is timing-irrelevant.
    """

    def __init__(
        self,
        nbytes: float,
        segsize: Optional[float],
        payload: Optional[np.ndarray] = None,
    ):
        if payload is not None:
            if payload.ndim != 1:
                raise ValueError("payloads must be 1-D numpy arrays")
            if nbytes is None:
                nbytes = payload.nbytes
        self.nbytes = float(nbytes)
        self.payload = payload
        if segsize is None or segsize <= 0 or segsize >= nbytes or nbytes == 0:
            nseg = 1
        else:
            nseg = int(np.ceil(nbytes / segsize))
            # Float ceil overshoots when nbytes is a near-integer multiple
            # of segsize, minting a ~0-byte trailing segment (a spurious
            # zero-size message on the wire).  Merge such a sliver into
            # the previous segment instead.
            trailing = self.nbytes - (nseg - 1) * segsize
            if nseg > 1 and trailing <= segsize * 1e-6:
                nseg -= 1
        self.nseg = nseg
        bounds = []
        off = 0.0
        per = self.nbytes / nseg if segsize is None or nseg == 1 else segsize
        for i in range(nseg):
            # the last segment absorbs the remainder (which after a merge
            # may slightly exceed the nominal segment size)
            step = self.nbytes - off if i == nseg - 1 else min(per, self.nbytes - off)
            bounds.append((off, step))
            off += step
        self._bounds = bounds
        if self.nbytes > 0:
            assert all(step > 0 for _off, step in bounds), (
                f"degenerate segment in {self.nbytes}B / {segsize} split"
            )
        if payload is None:
            self._elem_bounds = None
        else:
            eb = np.linspace(0, payload.size, nseg + 1).astype(int)
            self._elem_bounds = [
                (int(eb[i]), int(eb[i + 1] - eb[i])) for i in range(nseg)
            ]

    def seg_nbytes(self, i: int) -> float:
        return self._bounds[i][1]

    def seg_view(self, i: int) -> Optional[np.ndarray]:
        """View of segment ``i`` of the payload (None in timing-only mode)."""
        if self.payload is None:
            return None
        off, n = self._elem_bounds[i]
        return self.payload[off : off + n]

    def assemble(self, pieces: list) -> Optional[np.ndarray]:
        """Concatenate received segment payloads (timing mode: None)."""
        if self.payload is not None:
            return self.payload
        if any(p is None for p in pieces):
            return None
        return np.concatenate(pieces)


def charge_reduce(comm: Communicator, nbytes: float, avx: bool):
    """Charge reduction CPU time for ``nbytes`` of combined input."""
    if nbytes > 0:
        yield from comm.reduce_compute(nbytes, avx=avx)


def combine(op, acc, incoming):
    """Apply ``op`` to payloads, tolerating timing-only (None) buffers."""
    if acc is None or incoming is None:
        return acc if incoming is None else incoming
    return op(acc, incoming)
