"""Allgather algorithms: ring, Bruck, recursive doubling, gather+bcast.

Contract: every rank contributes one block (``payload`` or ``nbytes``
*per rank*); everyone returns the concatenation in rank order.
"""

from __future__ import annotations

import numpy as np

from repro.colls.bcast import bcast_binomial
from repro.colls.gather import gather_binomial
from repro.colls.util import coll_tag_block
from repro.mpi.communicator import Communicator

__all__ = [
    "allgather_ring",
    "allgather_bruck",
    "allgather_recursive_doubling",
    "allgather_linear",
]


def allgather_ring(comm: Communicator, nbytes, payload=None):
    """P-1 neighbour exchanges; bandwidth-optimal for large blocks."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    blocks: dict[int, object] = {rank: payload}
    right, left = (rank + 1) % size, (rank - 1) % size
    send_idx = rank
    for _ in range(size - 1):
        recv_idx = (send_idx - 1) % size
        msg = yield from comm.sendrecv(
            right,
            left,
            payload=blocks[send_idx],
            nbytes=nbytes,
            send_tag=tag,
            recv_tag=tag,
        )
        blocks[recv_idx] = msg.payload
        send_idx = recv_idx
    return _concat(blocks, size, payload)


def allgather_bruck(comm: Communicator, nbytes, payload=None):
    """Bruck's algorithm: ceil(log2 P) rounds of doubling shifted runs."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    # Work in a rotated space: slot j holds the block of rank (rank+j)%size.
    slots: dict[int, object] = {0: payload}
    have = 1
    step = 1
    while have < size:
        cnt = min(have, size - have)
        dst = (rank - step) % size
        src = (rank + step) % size
        buf = _maybe_concat([slots[j] for j in range(cnt)])
        msg = yield from comm.sendrecv(
            dst, src, payload=buf, nbytes=nbytes * cnt, send_tag=tag, recv_tag=tag
        )
        incoming = msg.payload
        for j in range(cnt):
            slots[have + j] = _nth_block(incoming, cnt, j)
        have += cnt
        step <<= 1
    # Un-rotate: block of rank r sits in slot (r - rank) % size.
    blocks = {((rank + j) % size): slots[j] for j in range(size)}
    return _concat(blocks, size, payload)


def allgather_recursive_doubling(comm: Communicator, nbytes, payload=None):
    """Power-of-two recursive doubling; falls back to ring otherwise."""
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        result = yield from allgather_ring(comm, nbytes, payload)
        return result
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    blocks: dict[int, object] = {rank: payload}
    mask = 1
    while mask < size:
        partner = rank ^ mask
        mine = sorted(blocks)
        buf = _maybe_concat([blocks[i] for i in mine])
        msg = yield from comm.sendrecv(
            partner,
            partner,
            payload=buf,
            nbytes=nbytes * len(mine),
            send_tag=tag,
            recv_tag=tag,
        )
        # Partner's owned indices are mine with the `mask` bit flipped.
        theirs = sorted(i ^ mask for i in mine)
        for j, i in enumerate(theirs):
            blocks[i] = _nth_block(msg.payload, len(theirs), j)
        mask <<= 1
    return _concat(blocks, size, payload)


def allgather_linear(comm: Communicator, nbytes, payload=None):
    """Gather to rank 0 then broadcast (small-message baseline)."""
    gathered = yield from gather_binomial(comm, nbytes, root=0, payload=payload)
    result = yield from bcast_binomial(
        comm, nbytes * comm.size, root=0, payload=gathered
    )
    return result


def _maybe_concat(parts):
    if any(p is None for p in parts):
        return None
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


def _nth_block(buf, count, j):
    if buf is None:
        return None
    per = buf.size // count
    return buf[j * per : (j + 1) * per]


def _concat(blocks, size, payload):
    if payload is None:
        return None
    parts = [blocks[i] for i in range(size)]
    if any(p is None for p in parts):
        return None
    return np.concatenate(parts)
