"""Reduce algorithms: linear, chain, binary, binomial.

Pipelined tree reductions stream segments *up* the tree: a rank receives
a segment from each child, folds it into its own contribution (charging
reduction CPU time), and forwards the partial result to its parent.
``avx=True`` charges the vectorized kernel rate (only SOLO/ADAPT have it,
paper IV-A2).

Every rank must pass its contribution (``payload`` or ``nbytes``); the
reduced array is returned at the root, ``None`` elsewhere.
"""

from __future__ import annotations

from repro.colls.trees import binary_tree, binomial_tree, chain_tree
from repro.colls.util import (
    Segmenter,
    charge_reduce,
    coll_tag_block,
    combine,
    unvrank,
    vrank,
)
from repro.mpi.communicator import Communicator
from repro.mpi.op import SUM

__all__ = ["reduce_linear", "reduce_chain", "reduce_binary", "reduce_binomial"]


def _reduce_tree(comm, nbytes, root, payload, op, segsize, tree_fn, tag, avx):
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    v = vrank(rank, root, size)
    if not op.commutative and tree_fn is not chain_tree:
        raise ValueError(
            f"non-commutative op {op.name} needs an order-preserving "
            "algorithm (chain/linear)"
        )
    tree = tree_fn(v, size)
    seg = Segmenter(nbytes, segsize, payload)
    out_pieces = []

    for i in range(seg.nseg):
        acc = seg.seg_view(i)
        nb = seg.seg_nbytes(i)
        for c in tree.children:
            msg = yield from comm.recv(source=unvrank(c, root, size), tag=tag + 1)
            yield from charge_reduce(comm, nb, avx)
            acc = combine(op, acc, msg.payload)
        if tree.parent >= 0:
            yield from comm.send(
                unvrank(tree.parent, root, size), payload=acc, nbytes=nb, tag=tag + 1
            )
        else:
            out_pieces.append(acc)

    if tree.parent >= 0:
        return None
    return seg.assemble(out_pieces) if payload is None else _reassemble(out_pieces)


def _reassemble(pieces):
    import numpy as np

    if len(pieces) == 1:
        return pieces[0]
    return np.concatenate(pieces)


def reduce_linear(
    comm: Communicator, nbytes, root=0, payload=None, op=SUM, segsize=None, avx=False
):
    """Every rank sends its buffer straight to the root."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    if rank != root:
        yield from comm.send(root, payload=payload, nbytes=nbytes, tag=tag)
        return None
    acc = payload
    # Receive in rank order for non-commutative safety; commutative ops
    # could use ANY_SOURCE but the cost is identical in the simulator.
    for src in range(size):
        if src == root:
            continue
        msg = yield from comm.recv(source=src, tag=tag)
        yield from charge_reduce(comm, nbytes, avx)
        acc = combine(op, acc, msg.payload)
    return acc


def reduce_chain(
    comm: Communicator, nbytes, root=0, payload=None, op=SUM, segsize=None, avx=False
):
    """Pipelined chain reduction (order-preserving)."""
    tag = coll_tag_block(comm)
    result = yield from _reduce_tree(
        comm, nbytes, root, payload, op, segsize, chain_tree, tag, avx
    )
    return result


def reduce_binary(
    comm: Communicator, nbytes, root=0, payload=None, op=SUM, segsize=None, avx=False
):
    """Pipelined binary-tree reduction (commutative ops)."""
    tag = coll_tag_block(comm)
    result = yield from _reduce_tree(
        comm, nbytes, root, payload, op, segsize, binary_tree, tag, avx
    )
    return result


def reduce_binomial(
    comm: Communicator, nbytes, root=0, payload=None, op=SUM, segsize=None, avx=False
):
    """Binomial-tree reduction (commutative ops)."""
    tag = coll_tag_block(comm)
    result = yield from _reduce_tree(
        comm, nbytes, root, payload, op, segsize, binomial_tree, tag, avx
    )
    return result
