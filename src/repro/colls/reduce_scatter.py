"""Reduce-scatter algorithms: ring and recursive halving.

Contract: every rank contributes a full-size buffer (``size`` equal
blocks); rank ``i`` returns the fully reduced block ``i``.
"""

from __future__ import annotations

import numpy as np

from repro.colls.util import charge_reduce, coll_tag_block, combine
from repro.mpi.communicator import Communicator
from repro.mpi.op import SUM

__all__ = ["reduce_scatter_ring", "reduce_scatter_recursive_halving"]


def reduce_scatter_ring(
    comm: Communicator, nbytes, payload=None, op=SUM, avx=False
):
    """Ring pass identical to the first phase of the ring allreduce."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    if payload is not None:
        bounds = np.linspace(0, payload.size, size + 1).astype(int)
        sizes = [
            float((bounds[i + 1] - bounds[i]) * payload.itemsize)
            for i in range(size)
        ]

        def view(i):
            return payload[bounds[i] : bounds[i + 1]]

    else:
        sizes = [nbytes / size] * size

        def view(_i):
            return None

    chunks = {i: view(i) for i in range(size)}
    right, left = (rank + 1) % size, (rank - 1) % size
    # The circulation starting at s0 leaves the fully reduced chunk
    # (s0+1) % size behind; start at rank-1 so it lands on our own chunk.
    send_idx = (rank - 1) % size
    for _ in range(size - 1):
        recv_idx = (send_idx - 1) % size
        msg = yield from comm.sendrecv(
            right,
            left,
            payload=chunks[send_idx],
            nbytes=sizes[send_idx],
            send_tag=tag,
            recv_tag=tag,
        )
        yield from charge_reduce(comm, sizes[recv_idx], avx)
        chunks[recv_idx] = combine(op, chunks[recv_idx], msg.payload)
        send_idx = recv_idx
    return chunks[rank]


def reduce_scatter_recursive_halving(
    comm: Communicator, nbytes, payload=None, op=SUM, avx=False
):
    """Power-of-two recursive halving; falls back to ring otherwise."""
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        result = yield from reduce_scatter_ring(comm, nbytes, payload, op, avx)
        return result
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    if payload is not None:
        bounds = np.linspace(0, payload.size, size + 1).astype(int)
    work = payload
    lo, hi = 0, size

    def span_bytes(a, b):
        if payload is not None:
            return float((bounds[b] - bounds[a]) * payload.itemsize)
        return nbytes * (b - a) / size

    def span_view(buf, a, b):
        if buf is None:
            return None
        return buf[bounds[a] : bounds[b]]

    mask = size >> 1
    while mask >= 1:
        partner = rank ^ mask
        mid = (lo + hi) // 2
        if rank & mask:
            send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
        else:
            send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
        msg = yield from comm.sendrecv(
            partner,
            partner,
            payload=span_view(work, send_lo, send_hi),
            nbytes=span_bytes(send_lo, send_hi),
            send_tag=tag,
            recv_tag=tag,
        )
        yield from charge_reduce(comm, span_bytes(keep_lo, keep_hi), avx)
        reduced = combine(op, span_view(work, keep_lo, keep_hi), msg.payload)
        if work is not None:
            work = work.copy()
            work[bounds[keep_lo] : bounds[keep_hi]] = reduced
        lo, hi = keep_lo, keep_hi
        mask >>= 1
    # The surviving range is exactly this rank's block.
    assert hi - lo == 1 and lo == _owned_block(rank, size)
    return span_view(work, lo, hi)


def _owned_block(rank: int, size: int) -> int:
    """Block index recursive halving leaves at `rank` (== rank itself)."""
    return rank
