"""Scan (inclusive) and exscan (exclusive) prefix reductions.

Completes the collective algorithm library: linear chains for
non-commutative safety and Hillis-Steele recursive doubling for
logarithmic depth (commutative or not -- prefix order is preserved by
construction).
"""

from __future__ import annotations

from repro.colls.util import charge_reduce, coll_tag_block, combine
from repro.mpi.communicator import Communicator
from repro.mpi.op import SUM

__all__ = ["scan_linear", "scan_recursive_doubling", "exscan_linear"]


def scan_linear(comm: Communicator, nbytes, payload=None, op=SUM, avx=False):
    """Chain scan: rank r receives prefix of 0..r-1, adds its own."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    acc = payload
    if rank > 0:
        msg = yield from comm.recv(source=rank - 1, tag=tag)
        yield from charge_reduce(comm, nbytes, avx)
        acc = combine(op, msg.payload, acc)
    if rank + 1 < size:
        yield from comm.send(rank + 1, payload=acc, nbytes=nbytes, tag=tag)
    return acc


def scan_recursive_doubling(
    comm: Communicator, nbytes, payload=None, op=SUM, avx=False
):
    """Hillis-Steele: log2(P) rounds; round k adds the partial from
    rank - 2^k (prefix order preserved: incoming is always the lower
    range)."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    acc = payload
    dist = 1
    while dist < size:
        reqs = []
        if rank + dist < size:
            reqs.append(comm.isend(rank + dist, payload=acc, nbytes=nbytes,
                                   tag=tag))
        incoming = None
        if rank - dist >= 0:
            rreq = comm.irecv(source=rank - dist, tag=tag)
            msg = yield from comm.wait(rreq)
            incoming = msg.payload
            yield from charge_reduce(comm, nbytes, avx)
        if reqs:
            yield from comm.waitall(reqs)
        if rank - dist >= 0:
            acc = combine(op, incoming, acc)
        dist <<= 1
        tag += 1
    return acc


def exscan_linear(comm: Communicator, nbytes, payload=None, op=SUM, avx=False):
    """Exclusive chain scan: rank r gets the prefix of 0..r-1 (rank 0
    returns ``None``)."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    prefix = None
    if rank > 0:
        msg = yield from comm.recv(source=rank - 1, tag=tag)
        prefix = msg.payload
    if rank + 1 < size:
        if rank == 0:
            outgoing = payload
        else:
            yield from charge_reduce(comm, nbytes, avx)
            outgoing = combine(op, prefix, payload)
        yield from comm.send(rank + 1, payload=outgoing, nbytes=nbytes, tag=tag)
    return prefix
