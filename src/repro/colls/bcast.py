"""Broadcast algorithms: linear, chain, binary, binomial, split-binary,
scatter-allgather (van de Geijn).

These mirror the algorithm set of Open MPI's ``coll_tuned`` component and
of the ADAPT module's ``MPI_Ibcast`` (the paper names chain, binary and
binomial for ADAPT, section III).  Tree algorithms accept a ``segsize``
for pipelining: segments flow down the tree back-to-back, which is the
"pipelining technique to overlap communications" at the heart of HAN.

Every algorithm returns the broadcast payload on every rank (``None`` in
timing-only mode).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.colls.trees import binary_tree, binomial_tree, chain_tree
from repro.colls.util import Segmenter, coll_tag_block, unvrank, vrank
from repro.mpi.communicator import Communicator

__all__ = [
    "bcast_linear",
    "bcast_chain",
    "bcast_binary",
    "bcast_binomial",
    "bcast_split_binary",
    "bcast_scatter_allgather",
]


def _bcast_tree(comm, nbytes, root, payload, segsize, tree_fn, tag):
    """Generic pipelined tree broadcast."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    v = vrank(rank, root, size)
    tree = tree_fn(v, size)
    seg = Segmenter(nbytes, segsize, payload)
    pieces: list = []

    recv_reqs = []
    if tree.parent >= 0:
        parent = unvrank(tree.parent, root, size)
        # Pre-post all segment receives (they match in order).
        recv_reqs = [comm.irecv(source=parent, tag=tag + 1) for _ in range(seg.nseg)]

    for i in range(seg.nseg):
        if tree.parent >= 0:
            msg = yield recv_reqs[i].event
            piece = msg.payload
            pieces.append(piece)
        else:
            piece = seg.seg_view(i)
        send_reqs = [
            comm.isend(
                unvrank(c, root, size),
                payload=piece,
                nbytes=seg.seg_nbytes(i),
                tag=tag + 1,
            )
            for c in tree.children
        ]
        # Forward the segment fully before touching the next one; the
        # next segment's receive is already posted, so the pipeline stays
        # full (this is what "constructing the pipeline" means in Fig 3).
        yield from comm.waitall(send_reqs)

    if tree.parent >= 0:
        if payload is not None:
            raise ValueError("payload may only be supplied at the root")
        return seg.assemble(pieces)
    return payload


def bcast_linear(comm: Communicator, nbytes, root=0, payload=None, segsize=None):
    """Root sends the whole message directly to every other rank."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    if rank == root:
        reqs = [
            comm.isend(dst, payload=payload, nbytes=nbytes, tag=tag)
            for dst in range(size)
            if dst != root
        ]
        yield from comm.waitall(reqs)
        return payload
    msg = yield from comm.recv(source=root, tag=tag)
    return msg.payload


def bcast_chain(comm: Communicator, nbytes, root=0, payload=None, segsize=None):
    """Pipelined chain: rank i forwards each segment to rank i+1."""
    tag = coll_tag_block(comm)
    result = yield from _bcast_tree(
        comm, nbytes, root, payload, segsize, chain_tree, tag
    )
    return result


def bcast_binary(comm: Communicator, nbytes, root=0, payload=None, segsize=None):
    """Pipelined balanced binary tree."""
    tag = coll_tag_block(comm)
    result = yield from _bcast_tree(
        comm, nbytes, root, payload, segsize, binary_tree, tag
    )
    return result


def bcast_binomial(comm: Communicator, nbytes, root=0, payload=None, segsize=None):
    """(Optionally pipelined) binomial tree."""
    tag = coll_tag_block(comm)
    result = yield from _bcast_tree(
        comm, nbytes, root, payload, segsize, binomial_tree, tag
    )
    return result


def bcast_split_binary(comm: Communicator, nbytes, root=0, payload=None, segsize=None):
    """Split-binary: halves flow down two binary trees, then pairs swap.

    Open MPI's tuned component uses this shape for large messages: each
    rank ends up with one half from the tree and the other half from a
    neighbour exchange, doubling effective tree bandwidth.
    """
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    if size == 2 or nbytes < 2:
        result = yield from _bcast_tree(
            comm, nbytes, root, payload, segsize, binary_tree, tag
        )
        return result

    if payload is not None:
        half_elems = payload.size // 2
        halves = [payload[:half_elems], payload[half_elems:]]
        half_bytes = [h.nbytes for h in halves]
    else:
        halves = [None, None]
        half_bytes = [nbytes / 2, nbytes - nbytes / 2]

    # Both halves stream down the same binary tree *concurrently* (they
    # interleave on the links, doubling effective pipeline utilisation),
    # on disjoint tag sub-blocks.
    from repro.sim.engine import Join, Spawn

    p0 = yield Spawn(
        _bcast_tree(
            comm,
            half_bytes[0],
            root,
            halves[0] if rank == root else None,
            segsize,
            binary_tree,
            tag,
        )
    )
    p1 = yield Spawn(
        _bcast_tree(
            comm,
            half_bytes[1],
            root,
            halves[1] if rank == root else None,
            segsize,
            binary_tree,
            tag + 2,
        )
    )
    res0 = yield Join(p0)
    res1 = yield Join(p1)
    if payload is not None and rank == root:
        return payload
    if res0 is None or res1 is None:
        return None
    return np.concatenate([res0, res1])


def bcast_scatter_allgather(
    comm: Communicator, nbytes, root=0, payload=None, segsize=None
):
    """Van de Geijn: binomial scatter of 1/P chunks + ring allgather.

    The bandwidth-optimal large-message broadcast (2x the bytes of the
    message cross each NIC, independent of P).
    """
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    v = vrank(rank, root, size)

    # ---- chunk layout: chunk i belongs to virtual rank i
    if payload is not None:
        elem_bounds = np.linspace(0, payload.size, size + 1).astype(int)
        chunk_bytes = [
            float((elem_bounds[i + 1] - elem_bounds[i]) * payload.itemsize)
            for i in range(size)
        ]
    else:
        base = nbytes / size
        chunk_bytes = [base] * size
        elem_bounds = None

    def chunk_view(i, buf):
        if buf is None:
            return None
        return buf[elem_bounds[i] : elem_bounds[i + 1]]

    # ---- binomial scatter: each internal vertex forwards the chunks of
    # its subtree.  Walk the binomial tree from the root down.  A subtree
    # run travels as *one* message whose payload is the list of chunk
    # views (chunk sizes are uneven when size does not divide the
    # element count, and only the root knows the exact boundaries).
    tree = binomial_tree(v, size)
    my_chunks: dict[int, Optional[np.ndarray]] = {}
    if v == 0:
        for i in range(size):
            my_chunks[i] = chunk_view(i, payload)
        # the receiver also needs per-chunk byte sizes for the ring phase
        true_chunk_bytes = chunk_bytes
    else:
        parent = unvrank(tree.parent, root, size)
        msg = yield from comm.recv(source=parent, tag=tag)
        span = _subtree_span(v, size)
        if msg.payload is not None:
            run_chunks, run_bytes = msg.payload
            for j in range(span):
                my_chunks[v + j] = run_chunks[j]
            true_chunk_bytes = list(chunk_bytes)
            for j in range(span):
                true_chunk_bytes[v + j] = run_bytes[j]
        else:
            for j in range(span):
                my_chunks[v + j] = None
            true_chunk_bytes = chunk_bytes
    for c in tree.children:
        span = _subtree_span(c, size)
        nb = float(sum(true_chunk_bytes[c : c + span]))
        if my_chunks.get(c) is not None:
            buf = (
                [my_chunks[c + j] for j in range(span)],
                [true_chunk_bytes[c + j] for j in range(span)],
            )
        else:
            buf = None
        yield from comm.send(unvrank(c, root, size), payload=buf, nbytes=nb, tag=tag)
    chunk_bytes = true_chunk_bytes

    # ---- ring allgather of the chunks (in virtual-rank space)
    have = {v: my_chunks[v]}
    right = unvrank((v + 1) % size, root, size)
    left = unvrank((v - 1) % size, root, size)
    send_idx = v
    for _ in range(size - 1):
        recv_idx = (send_idx - 1) % size
        msg = yield from comm.sendrecv(
            right,
            left,
            payload=have.get(send_idx),
            nbytes=chunk_bytes[send_idx],
            send_tag=tag + 1,
            recv_tag=tag + 1,
        )
        have[recv_idx] = msg.payload
        send_idx = recv_idx

    if payload is not None and rank == root:
        return payload
    if payload is None and all(have.get(i) is None for i in range(size)):
        return None
    pieces = [have[i] for i in range(size)]
    if any(p is None for p in pieces):
        return None
    return np.concatenate(pieces)


def _subtree_span(v: int, size: int) -> int:
    """Number of consecutive virtual ranks in v's binomial subtree."""
    lowbit = v & -v if v else size
    return min(lowbit, size - v)
