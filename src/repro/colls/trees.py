"""Communication tree shapes shared by tree-based algorithms.

All trees are expressed in *virtual* ranks (root = 0); callers translate
with :func:`repro.colls.util.vrank`/``unvrank``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Tree", "binomial_tree", "binary_tree", "chain_tree", "knomial_tree"]


@dataclass(frozen=True)
class Tree:
    """Parent/children of one virtual rank within a tree of ``size``."""

    parent: int  # -1 for the root
    children: tuple[int, ...]


def binomial_tree(v: int, size: int) -> Tree:
    """Binomial tree: child k of v is v + 2^k (standard MST broadcast tree)."""
    if size < 1 or not (0 <= v < size):
        raise ValueError(f"bad tree query v={v} size={size}")
    parent = -1 if v == 0 else v & (v - 1)  # clear lowest set bit
    # Children sit at v + 2^k for 2^k below v's lowest set bit (all powers
    # of two for the root).  Listed largest-first: broadcasts serve the
    # biggest subtree first, the classic binomial send order.
    children: List[int] = []
    lowbit = v & -v if v else size
    mask = 1
    while mask < lowbit and v + mask < size:
        children.append(v + mask)
        mask <<= 1
    children.reverse()
    return Tree(parent=parent, children=tuple(children))


def binary_tree(v: int, size: int) -> Tree:
    """Complete binary tree laid out in breadth-first order."""
    if size < 1 or not (0 <= v < size):
        raise ValueError(f"bad tree query v={v} size={size}")
    parent = -1 if v == 0 else (v - 1) // 2
    children = tuple(c for c in (2 * v + 1, 2 * v + 2) if c < size)
    return Tree(parent=parent, children=children)


def chain_tree(v: int, size: int) -> Tree:
    """Chain (pipeline): 0 -> 1 -> 2 -> ..."""
    if size < 1 or not (0 <= v < size):
        raise ValueError(f"bad tree query v={v} size={size}")
    parent = -1 if v == 0 else v - 1
    children = (v + 1,) if v + 1 < size else ()
    return Tree(parent=parent, children=children)


def knomial_tree(v: int, size: int, radix: int = 4) -> Tree:
    """k-nomial tree generalizing the binomial tree (radix >= 2)."""
    if radix < 2:
        raise ValueError("radix must be >= 2")
    if size < 1 or not (0 <= v < size):
        raise ValueError(f"bad tree query v={v} size={size}")
    # Decompose v in base `radix`; the parent clears the least significant
    # non-zero digit; children add digits below it.
    parent = -1
    if v != 0:
        place = 1
        while (v // place) % radix == 0:
            place *= radix
        parent = v - ((v // place) % radix) * place
    children = []
    place = 1
    while place < size:
        if (v // place) % radix != 0:
            break
        for d in range(1, radix):
            c = v + d * place
            if c < size:
                children.append(c)
        place *= radix
    return Tree(parent=parent, children=tuple(children))
