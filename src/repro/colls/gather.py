"""Gather algorithms: linear and binomial.

Contract: every rank contributes an equal-size block (``payload`` or
``nbytes`` *per rank*); the root returns the concatenation in rank order,
other ranks return ``None``.
"""

from __future__ import annotations

import numpy as np

from repro.colls.trees import binomial_tree
from repro.colls.util import coll_tag_block, unvrank, vrank
from repro.mpi.communicator import Communicator

__all__ = ["gather_linear", "gather_binomial"]


def gather_linear(comm: Communicator, nbytes, root=0, payload=None):
    """Everyone sends straight to the root."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    if rank != root:
        yield from comm.send(root, payload=payload, nbytes=nbytes, tag=tag)
        return None
    parts: list = [None] * size
    parts[root] = payload
    for _ in range(size - 1):
        msg = yield from comm.recv(tag=tag)
        parts[msg.source] = msg.payload
    if any(p is None for p in parts):
        return None
    return np.concatenate(parts)


def gather_binomial(comm: Communicator, nbytes, root=0, payload=None):
    """Binomial-tree gather: interior vertices forward growing runs.

    Subtree data is contiguous in virtual-rank order (the mirror of the
    binomial scatter used by the van de Geijn broadcast).
    """
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    v = vrank(rank, root, size)
    tree = binomial_tree(v, size)

    # Collect: my block plus each child's (contiguous) subtree run.
    # Children arrive smallest-vrank-last; store by vrank offset.
    runs: dict[int, object] = {v: payload}
    run_bytes: dict[int, float] = {v: float(nbytes)}
    for c in tree.children:
        msg = yield from comm.recv(source=unvrank(c, root, size), tag=tag)
        runs[c] = msg.payload
        run_bytes[c] = msg.nbytes

    ordered = sorted(runs)
    bufs = [runs[k] for k in ordered]
    total_bytes = float(sum(run_bytes[k] for k in ordered))
    if any(b is None for b in bufs):
        merged = None
    else:
        merged = np.concatenate(bufs)

    if tree.parent >= 0:
        yield from comm.send(
            unvrank(tree.parent, root, size),
            payload=merged,
            nbytes=total_bytes,
            tag=tag,
        )
        return None
    if merged is None:
        return None
    # merged holds virtual ranks 0..size-1; rotate back to true rank order.
    if root == 0:
        return merged
    per = merged.size // size
    return np.concatenate([merged[-root * per :], merged[: -root * per]])
