"""Barrier algorithms: dissemination, recursive doubling, tree, linear."""

from __future__ import annotations

from repro.colls.trees import binomial_tree
from repro.colls.util import coll_tag_block, unvrank, vrank
from repro.mpi.communicator import Communicator

__all__ = [
    "barrier_dissemination",
    "barrier_recursive_doubling",
    "barrier_tree",
    "barrier_linear",
]


def barrier_dissemination(comm: Communicator):
    """ceil(log2 P) rounds of shifted zero-byte exchanges."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return
    dist = 1
    while dist < size:
        yield from comm.sendrecv(
            (rank + dist) % size,
            (rank - dist) % size,
            nbytes=0,
            send_tag=tag,
            recv_tag=tag,
        )
        dist <<= 1


def barrier_recursive_doubling(comm: Communicator):
    """Pairwise XOR exchanges; extra ranks fold in at the edges."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return
    pof2 = 1 << (size.bit_length() - 1)
    rem = size - pof2
    if rank >= pof2:
        yield from comm.send(rank - pof2, nbytes=0, tag=tag)
        yield from comm.recv(source=rank - pof2, tag=tag + 2)
        return
    if rank < rem:
        yield from comm.recv(source=rank + pof2, tag=tag)
    mask = 1
    while mask < pof2:
        partner = rank ^ mask
        yield from comm.sendrecv(
            partner, partner, nbytes=0, send_tag=tag + 1, recv_tag=tag + 1
        )
        mask <<= 1
    if rank < rem:
        yield from comm.send(rank + pof2, nbytes=0, tag=tag + 2)


def barrier_tree(comm: Communicator):
    """Binomial fan-in to rank 0 followed by binomial fan-out."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return
    v = vrank(rank, 0, size)
    tree = binomial_tree(v, size)
    for c in tree.children:
        yield from comm.recv(source=unvrank(c, 0, size), tag=tag)
    if tree.parent >= 0:
        yield from comm.send(unvrank(tree.parent, 0, size), nbytes=0, tag=tag)
        yield from comm.recv(source=unvrank(tree.parent, 0, size), tag=tag + 1)
    for c in tree.children:
        yield from comm.send(unvrank(c, 0, size), nbytes=0, tag=tag + 1)


def barrier_linear(comm: Communicator):
    """Everyone reports to rank 0, rank 0 releases everyone."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return
    if rank == 0:
        for _ in range(size - 1):
            yield from comm.recv(tag=tag)
        reqs = [comm.isend(d, nbytes=0, tag=tag + 1) for d in range(1, size)]
        yield from comm.waitall(reqs)
    else:
        yield from comm.send(0, nbytes=0, tag=tag)
        yield from comm.recv(source=0, tag=tag + 1)
