"""Scatter algorithms: linear and binomial.

Contract: the root supplies ``payload`` holding ``size`` equal blocks in
rank order (or ``nbytes`` = *total* bytes in timing mode); every rank
returns its own block.
"""

from __future__ import annotations

import numpy as np

from repro.colls.trees import binomial_tree
from repro.colls.util import coll_tag_block, unvrank, vrank
from repro.mpi.communicator import Communicator

__all__ = ["scatter_linear", "scatter_binomial"]


def _block_bounds(payload, size):
    return np.linspace(0, payload.size, size + 1).astype(int)


def scatter_linear(comm: Communicator, nbytes, root=0, payload=None):
    """Root sends each rank its block directly."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    per = nbytes / size
    if rank == root:
        bounds = None if payload is None else _block_bounds(payload, size)
        reqs = []
        for dst in range(size):
            if dst == root:
                continue
            view = (
                None if payload is None else payload[bounds[dst] : bounds[dst + 1]]
            )
            reqs.append(comm.isend(dst, payload=view, nbytes=per, tag=tag))
        yield from comm.waitall(reqs)
        if payload is None:
            return None
        return payload[bounds[root] : bounds[root + 1]]
    msg = yield from comm.recv(source=root, tag=tag)
    return msg.payload


def scatter_binomial(comm: Communicator, nbytes, root=0, payload=None):
    """Binomial-tree scatter: interior vertices forward subtree runs."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    v = vrank(rank, root, size)
    tree = binomial_tree(v, size)
    per = nbytes / size

    def span(u):
        lowbit = u & -u if u else size
        return min(lowbit, size - u)

    if v == 0:
        if payload is None:
            run = None
        else:
            # Rotate into virtual order so subtree runs are contiguous.
            bounds = _block_bounds(payload, size)
            blocks = [payload[bounds[i] : bounds[i + 1]] for i in range(size)]
            run = np.concatenate([blocks[unvrank(i, root, size)] for i in range(size)])
    else:
        msg = yield from comm.recv(source=unvrank(tree.parent, root, size), tag=tag)
        run = msg.payload

    my_span = span(v)
    for c in tree.children:
        c_span = span(c)
        if run is None:
            buf = None
        else:
            per_elems = run.size // my_span
            lo = (c - v) * per_elems
            buf = run[lo : lo + c_span * per_elems]
        yield from comm.send(
            unvrank(c, root, size), payload=buf, nbytes=per * c_span, tag=tag
        )

    if run is None:
        return None
    per_elems = run.size // my_span
    return run[:per_elems]
