"""Allreduce algorithms: recursive doubling, ring, Rabenseifner,
reduce+bcast.

The ring and Rabenseifner algorithms are the bandwidth-optimal choices
for large messages; recursive doubling is latency-optimal for small ones.
These are the flat (single-level) algorithms the default Open MPI and the
comparator libraries use, and which HAN's hierarchical design is compared
against.
"""

from __future__ import annotations

import numpy as np

from repro.colls.bcast import bcast_binomial
from repro.colls.reduce import reduce_binomial
from repro.colls.util import charge_reduce, coll_tag_block, combine
from repro.mpi.communicator import Communicator
from repro.mpi.op import SUM

__all__ = [
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "allreduce_rabenseifner",
    "allreduce_reduce_bcast",
]


def _chunk_bounds(payload, nbytes, parts):
    """Element bounds (payload mode) or byte sizes (timing mode)."""
    if payload is not None:
        bounds = np.linspace(0, payload.size, parts + 1).astype(int)
        sizes = [
            float((bounds[i + 1] - bounds[i]) * payload.itemsize)
            for i in range(parts)
        ]
        return bounds, sizes
    return None, [nbytes / parts] * parts


def allreduce_recursive_doubling(
    comm: Communicator, nbytes, payload=None, op=SUM, segsize=None, avx=False
):
    """Latency-optimal: log2(P) full-buffer exchanges.

    Non-power-of-two sizes use the standard fold: the first ``2*rem``
    ranks pair up, odd members join the power-of-two core, even members
    receive the result at the end.
    """
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    pof2 = 1 << (size.bit_length() - 1)  # largest power of two <= size
    rem = size - pof2

    acc = payload
    newrank = -1
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.send(rank + 1, payload=acc, nbytes=nbytes, tag=tag)
        else:
            msg = yield from comm.recv(source=rank - 1, tag=tag)
            yield from charge_reduce(comm, nbytes, avx)
            acc = combine(op, acc, msg.payload)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank >= 0:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            )
            msg = yield from comm.sendrecv(
                partner,
                partner,
                payload=acc,
                nbytes=nbytes,
                send_tag=tag + 1,
                recv_tag=tag + 1,
            )
            yield from charge_reduce(comm, nbytes, avx)
            acc = combine(op, acc, msg.payload)
            mask <<= 1

    if rank < 2 * rem:
        if rank % 2 == 0:
            msg = yield from comm.recv(source=rank + 1, tag=tag + 2)
            acc = msg.payload if msg.payload is not None else acc
        else:
            yield from comm.send(rank - 1, payload=acc, nbytes=nbytes, tag=tag + 2)
    return acc


def allreduce_ring(
    comm: Communicator, nbytes, payload=None, op=SUM, segsize=None, avx=False
):
    """Bandwidth-optimal ring: reduce-scatter pass + allgather pass.

    2*(P-1) steps, each moving ~1/P of the buffer -- total bytes per NIC
    approach 2*nbytes regardless of P.
    """
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    bounds, sizes = _chunk_bounds(payload, nbytes, size)

    def view(i):
        if payload is None:
            return None
        return payload[bounds[i] : bounds[i + 1]]

    chunks = {i: view(i) for i in range(size)}
    right, left = (rank + 1) % size, (rank - 1) % size

    # reduce-scatter: after P-1 steps, rank owns the fully reduced chunk
    # (rank+1) % size.
    send_idx = rank
    for _ in range(size - 1):
        recv_idx = (send_idx - 1) % size
        msg = yield from comm.sendrecv(
            right,
            left,
            payload=chunks[send_idx],
            nbytes=sizes[send_idx],
            send_tag=tag,
            recv_tag=tag,
        )
        yield from charge_reduce(comm, sizes[recv_idx], avx)
        chunks[recv_idx] = combine(op, chunks[recv_idx], msg.payload)
        send_idx = recv_idx

    # allgather: circulate the reduced chunks.
    send_idx = (rank + 1) % size
    for _ in range(size - 1):
        recv_idx = (send_idx - 1) % size
        msg = yield from comm.sendrecv(
            right,
            left,
            payload=chunks[send_idx],
            nbytes=sizes[send_idx],
            send_tag=tag + 1,
            recv_tag=tag + 1,
        )
        chunks[recv_idx] = msg.payload if payload is not None else None
        send_idx = recv_idx

    if payload is None:
        return None
    return np.concatenate([chunks[i] for i in range(size)])


def allreduce_rabenseifner(
    comm: Communicator, nbytes, payload=None, op=SUM, segsize=None, avx=False
):
    """Recursive-halving reduce-scatter + recursive-doubling allgather.

    Bandwidth-optimal like the ring but with log2(P) steps, so better at
    mid-range message sizes.  Non-power-of-two uses the same fold as
    recursive doubling.
    """
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    pof2 = 1 << (size.bit_length() - 1)
    rem = size - pof2
    acc = payload

    newrank = -1
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.send(rank + 1, payload=acc, nbytes=nbytes, tag=tag)
        else:
            msg = yield from comm.recv(source=rank - 1, tag=tag)
            yield from charge_reduce(comm, nbytes, avx)
            acc = combine(op, acc, msg.payload)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank >= 0:
        bounds, _sizes = _chunk_bounds(acc, nbytes, pof2)

        def span_bytes(lo, hi):
            if acc is not None:
                return float((bounds[hi] - bounds[lo]) * acc.itemsize)
            return nbytes * (hi - lo) / pof2

        def span_view(buf, lo, hi):
            if buf is None:
                return None
            return buf[bounds[lo] : bounds[hi]]

        def to_rank(nr):
            return nr * 2 + 1 if nr < rem else nr + rem

        work = acc
        lo, hi = 0, pof2  # owned chunk range, in pof2 units
        mask = pof2 >> 1
        # reduce-scatter by recursive halving
        while mask >= 1:
            partner_new = newrank ^ mask
            mid = (lo + hi) // 2
            if newrank & mask:
                send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
            else:
                send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
            msg = yield from comm.sendrecv(
                to_rank(partner_new),
                to_rank(partner_new),
                payload=span_view(work, send_lo, send_hi),
                nbytes=span_bytes(send_lo, send_hi),
                send_tag=tag + 1,
                recv_tag=tag + 1,
            )
            yield from charge_reduce(comm, span_bytes(keep_lo, keep_hi), avx)
            kept = span_view(work, keep_lo, keep_hi)
            reduced = combine(op, kept, msg.payload)
            if work is not None:
                work = work.copy()
                work[bounds[keep_lo] : bounds[keep_hi]] = reduced
            lo, hi = keep_lo, keep_hi
            mask >>= 1

        # allgather by recursive doubling (reverse the halving order)
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            # partner owns the mirror range at this level
            width = hi - lo
            if newrank & mask:
                recv_lo, recv_hi = lo - width, lo
            else:
                recv_lo, recv_hi = hi, hi + width
            msg = yield from comm.sendrecv(
                to_rank(partner_new),
                to_rank(partner_new),
                payload=span_view(work, lo, hi),
                nbytes=span_bytes(lo, hi),
                send_tag=tag + 2,
                recv_tag=tag + 2,
            )
            if work is not None and msg.payload is not None:
                work = work.copy()
                work[bounds[recv_lo] : bounds[recv_hi]] = msg.payload
            lo, hi = min(lo, recv_lo), max(hi, recv_hi)
            mask <<= 1
        acc = work

    if rank < 2 * rem:
        if rank % 2 == 0:
            msg = yield from comm.recv(source=rank + 1, tag=tag + 3)
            acc = msg.payload if msg.payload is not None else acc
        else:
            yield from comm.send(rank - 1, payload=acc, nbytes=nbytes, tag=tag + 3)
    return acc


def allreduce_reduce_bcast(
    comm: Communicator, nbytes, payload=None, op=SUM, segsize=None, avx=False
):
    """Compose a binomial reduce with a binomial broadcast to rank 0."""
    reduced = yield from reduce_binomial(
        comm, nbytes, root=0, payload=payload, op=op, segsize=segsize, avx=avx
    )
    result = yield from bcast_binomial(
        comm, nbytes, root=0, payload=reduced, segsize=segsize
    )
    return result
