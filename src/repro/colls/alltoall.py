"""All-to-all algorithms: pairwise exchange and Bruck.

Contract: every rank contributes ``size`` equal blocks (block ``j`` is
destined for rank ``j``); every rank returns the ``size`` blocks it
received, concatenated in source-rank order.  ``nbytes`` is the size of
*one* block.
"""

from __future__ import annotations

import numpy as np

from repro.colls.util import coll_tag_block
from repro.mpi.communicator import Communicator

__all__ = ["alltoall_pairwise", "alltoall_bruck"]


def _blocks(payload, size):
    bounds = np.linspace(0, payload.size, size + 1).astype(int)
    return [payload[bounds[i] : bounds[i + 1]] for i in range(size)]


def alltoall_pairwise(comm: Communicator, nbytes, payload=None):
    """size-1 rounds; in round k exchange with rank^(xor)/shifted peer."""
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    send_blocks = None if payload is None else _blocks(payload, size)
    recv_blocks: list = [None] * size
    recv_blocks[rank] = None if send_blocks is None else send_blocks[rank]
    for k in range(1, size):
        dst = (rank + k) % size
        src = (rank - k) % size
        msg = yield from comm.sendrecv(
            dst,
            src,
            payload=None if send_blocks is None else send_blocks[dst],
            nbytes=nbytes,
            send_tag=tag,
            recv_tag=tag,
        )
        recv_blocks[src] = msg.payload
    if payload is None:
        return None
    if any(b is None for b in recv_blocks):
        return None
    return np.concatenate(recv_blocks)


def alltoall_bruck(comm: Communicator, nbytes, payload=None):
    """Bruck: log2(P) rounds moving half the buffer each time.

    Latency-optimal for small blocks at the cost of extra data volume
    (each block travels up to log2(P) hops).
    """
    size, rank = comm.size, comm.rank
    tag = coll_tag_block(comm)
    if size == 1:
        return payload
    # Phase 0: local rotation so slot j holds the block for (rank+j)%size.
    if payload is not None:
        blocks = _blocks(payload, size)
        slots = [blocks[(rank + j) % size] for j in range(size)]
    else:
        slots = [None] * size

    step = 1
    while step < size:
        idxs = [j for j in range(size) if j & step]
        buf = (
            None
            if payload is None
            else np.concatenate([slots[j] for j in idxs])
        )
        dst = (rank + step) % size
        src = (rank - step) % size
        msg = yield from comm.sendrecv(
            dst,
            src,
            payload=buf,
            nbytes=nbytes * len(idxs),
            send_tag=tag,
            recv_tag=tag,
        )
        if payload is not None and msg.payload is not None:
            per = msg.payload.size // len(idxs)
            for pos, j in enumerate(idxs):
                slots[j] = msg.payload[pos * per : (pos + 1) * per]
        step <<= 1

    if payload is None:
        return None
    # Final inverse rotation: received slot j came from (rank-j)%size.
    out: list = [None] * size
    for j in range(size):
        out[(rank - j) % size] = slots[j]
    return np.concatenate(out)
