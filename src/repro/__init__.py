"""Reproduction of "HAN: a Hierarchical AutotuNed Collective Communication
Framework" (IEEE CLUSTER 2020) on a simulated MPI substrate.

Package map (details in README.md / DESIGN.md):

- ``repro.sim``         discrete-event engine + fluid bandwidth solver
- ``repro.topology``    interconnect topologies and routing
- ``repro.hardware``    machine descriptions (Shaheen II, Stampede2, ...)
- ``repro.netsim``      transport: P2P profiles, progress servers, fabric
- ``repro.mpi``         the simulated MPI runtime
- ``repro.colls``       classic collective algorithms
- ``repro.modules``     Open MPI-style modules (tuned/libnbc/adapt/sm/solo)
- ``repro.core``        HAN itself (the paper's contribution)
- ``repro.tuning``      the task-based autotuner (the paper's second
  contribution)
- ``repro.comparators`` Cray MPI / Intel MPI / MVAPICH2 / default Open MPI
- ``repro.bench``       IMB- and Netpipe-style measurement harnesses
- ``repro.apps``        ASP and Horovod-style applications
- ``repro.experiments`` drivers regenerating every paper table/figure
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
