"""Task-based autotuning of HAN collectives (paper section III-C).

Two-step autotuning, as the paper frames it:

1. *Build a lookup table*: for sampled inputs (Table I: number of nodes
   ``n``, processes per node ``p``, message size ``m``, collective type
   ``t``) find the best configuration (Table II).  Four search methods
   are implemented, matching Fig 8/9:

   - ``exhaustive``       -- time every full collective configuration;
   - ``exhaustive+h``     -- exhaustive pruned by heuristics;
   - ``task``             -- benchmark HAN *tasks* once per (segment size,
     algorithm) and estimate every message size with the cost model
     (eqs. 3 and 4) -- the paper's contribution;
   - ``task+h``           -- the task method pruned by heuristics.

2. *Decide at runtime*: interpolate the lookup table for arbitrary
   inputs (:class:`~repro.tuning.lookup.LookupTable` plugs into
   :class:`~repro.core.HanModule` as its decision function).
"""

from repro.tuning.space import SearchSpace, TuningInputs
from repro.tuning.cache import MeasurementCache, canonical, digest
from repro.tuning.measure import (
    CollectiveMeasurement,
    measure_collective,
    measurement_from_doc,
    measurement_key,
    measurement_to_doc,
    resolve_traffic,
)
from repro.tuning.taskbench import (
    AllreduceTaskCosts,
    BcastTaskCosts,
    ReduceTaskCosts,
    TaskBench,
    costs_from_doc,
    costs_to_doc,
)
from repro.tuning.bandit import BanditAllocator, BanditResult
from repro.tuning.parallel import MeasurePoint, TaskPoint, parallel_map, run_cached
from repro.tuning.costmodel import (
    estimate_allreduce,
    estimate_bcast,
    estimate_reduce,
)
from repro.tuning.heuristics import prune_configs
from repro.tuning.lookup import LookupTable
from repro.tuning.decision_tree import DecisionRules, compile_rules
from repro.tuning.online import OnlineTuner
from repro.tuning.autotuner import Autotuner, TuningReport

__all__ = [
    "AllreduceTaskCosts",
    "Autotuner",
    "BanditAllocator",
    "BanditResult",
    "BcastTaskCosts",
    "CollectiveMeasurement",
    "DecisionRules",
    "LookupTable",
    "MeasurePoint",
    "MeasurementCache",
    "OnlineTuner",
    "ReduceTaskCosts",
    "SearchSpace",
    "TaskBench",
    "TaskPoint",
    "TuningInputs",
    "TuningReport",
    "canonical",
    "compile_rules",
    "costs_from_doc",
    "costs_to_doc",
    "digest",
    "estimate_allreduce",
    "estimate_bcast",
    "estimate_reduce",
    "measure_collective",
    "measurement_from_doc",
    "measurement_key",
    "measurement_to_doc",
    "resolve_traffic",
    "parallel_map",
    "prune_configs",
    "run_cached",
]
