"""STAR-MPI-style online tuning (the road the paper chose *not* to take).

Section II-B: "Online tuning is another approach ... STAR-MPI selects
algorithms dynamically ... The time to converge to the best selection is
uncertain, and the cost of timing and maintaining the decision matrix
online inevitably brings overhead."  This module implements that
approach so the claim can be measured (see
``benchmarks/test_ablations.py``): an :class:`OnlineTuner` times each
candidate configuration in turn on the live application's collectives,
then locks in the per-(collective, message-bucket) winner.

Consistency across ranks: every rank walks the same candidate schedule
(collective calls are issued in lockstep), per-trial costs are shared as
the max across ranks that have reported (the collective cost
definition), and the first rank to finish exploration locks the winner
for everyone -- mirroring STAR-MPI's shared decision matrix without
extra messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.mpi.op import SUM

__all__ = ["OnlineTuner"]


def _bucket(nbytes: float) -> int:
    """Message sizes are binned per power of two (STAR-MPI's grouping)."""
    return int(math.log2(max(nbytes, 1.0)))


@dataclass
class _State:
    #: per-rank position in the exploration schedule
    rank_pos: dict = field(default_factory=dict)
    #: trial index -> max duration reported so far
    trial_max: dict = field(default_factory=dict)
    locked: Optional[HanConfig] = None
    #: exploration calls each rank spent before the lock (overhead metric)
    explore_calls: int = 0


@dataclass
class OnlineTuner:
    """HAN with per-call online selection.

    The measurement overhead *is* the application's collective time --
    slow candidates hurt the live run, which is exactly the drawback the
    paper cites when justifying offline tuning.
    """

    candidates: Sequence[HanConfig]
    trials_per_candidate: int = 1
    _han: HanModule = field(default_factory=HanModule)
    _states: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.candidates = list(self.candidates)
        if not self.candidates:
            raise ValueError("OnlineTuner needs at least one candidate")

    @property
    def total_trials(self) -> int:
        return len(self.candidates) * self.trials_per_candidate

    def _state(self, coll: str, nbytes: float) -> _State:
        key = (coll, _bucket(nbytes))
        st = self._states.get(key)
        if st is None:
            st = self._states[key] = _State()
        return st

    def _pick(self, st: _State, rank: int) -> tuple[HanConfig, Optional[int]]:
        """Config for this rank's next call; trial index while exploring."""
        if st.locked is not None:
            return st.locked, None
        pos = st.rank_pos.get(rank, 0)
        if pos >= self.total_trials:
            # exploration over for this rank: lock the best known trial
            per: dict[int, list[float]] = {}
            for t, d in st.trial_max.items():
                per.setdefault(t // self.trials_per_candidate, []).append(d)
            best = min(per, key=lambda c: sum(per[c]) / len(per[c]))
            st.locked = self.candidates[best]
            st.explore_calls = self.total_trials
            return st.locked, None
        return self.candidates[pos // self.trials_per_candidate], pos

    def _record(self, st: _State, rank: int, trial: int, dt: float) -> None:
        st.rank_pos[rank] = st.rank_pos.get(rank, 0) + 1
        st.trial_max[trial] = max(st.trial_max.get(trial, 0.0), dt)

    def converged(self, coll: str, nbytes: float) -> bool:
        st = self._states.get((coll, _bucket(nbytes)))
        return bool(st and st.locked is not None)

    def decision(self, coll: str, nbytes: float) -> Optional[HanConfig]:
        st = self._states.get((coll, _bucket(nbytes)))
        return st.locked if st else None

    # -- collective entry points (generator API like a module) --------------------

    def bcast(self, comm, nbytes, root=0, payload=None):
        st = self._state("bcast", nbytes)
        cfg, trial = self._pick(st, comm.rank)
        t0 = comm.now
        out = yield from self._han.bcast(
            comm, nbytes, root=root, payload=payload, config=cfg
        )
        if trial is not None:
            self._record(st, comm.rank, trial, comm.now - t0)
        return out

    def allreduce(self, comm, nbytes, payload=None, op=SUM):
        st = self._state("allreduce", nbytes)
        cfg, trial = self._pick(st, comm.rank)
        t0 = comm.now
        out = yield from self._han.allreduce(
            comm, nbytes, payload=payload, op=op, config=cfg
        )
        if trial is not None:
            self._record(st, comm.rank, trial, comm.now - t0)
        return out
