"""The HAN cost model (paper equations 3 and 4).

MPI_Bcast, eq. (3)::

    cost = max_i( T_i(ib(0)) + (u-1) * T_i(sbib(s)) + T_i(sb(u-1)) )

MPI_Allreduce, eq. (4)::

    cost = max_i( T_i(sr(0)) + T_i(irsr(1)) + T_i(ibirsr(2))
                  + (u-3) * T_i(sbibirsr(s))
                  + T_i(sbibir) + T_i(sbib) + T_i(sb) )

where ``u = ceil(m / fs)`` is the segment count and ``T_i(task(s))`` is
the *stabilized* in-context task cost on node leader ``i`` measured by
:mod:`repro.tuning.taskbench`.  The max runs over node leaders -- the
paper argues (III-A2) leader time dominates because ``sbib`` contains
``sb`` plus an extra ``ib``.

Short messages degenerate: with ``u == 1`` a bcast is just
``ib(0) + sb(0)`` and an allreduce is ``sr + ir + ib + sb`` (approximated
with the measured warm-up terms).
"""

from __future__ import annotations

import math

import numpy as np

from repro.tuning.taskbench import (
    AllreduceTaskCosts,
    BcastTaskCosts,
    ReduceTaskCosts,
)

__all__ = [
    "segments_for",
    "estimate_bcast",
    "estimate_allreduce",
    "estimate_reduce",
]


def segments_for(nbytes: float, fs: float | None) -> int:
    """u = ceil(m / fs); 1 when segmentation is off or pointless."""
    if fs is None or fs <= 0 or nbytes <= fs:
        return 1
    return int(math.ceil(nbytes / fs))


def estimate_bcast(costs: BcastTaskCosts, nbytes: float) -> float:
    """Equation (3) for a message of ``nbytes``."""
    u = segments_for(nbytes, costs.seg_bytes)
    if u == 1:
        # single segment: ib(0) then a trailing sb -- no sbib steady state
        per_leader = costs.ib0 + costs.sb_final
        return float(per_leader.max())
    per_leader = costs.ib0 + (u - 1) * costs.sbib_stable + costs.sb_final
    return float(per_leader.max())


def estimate_reduce(costs: ReduceTaskCosts, nbytes: float) -> float:
    """The irsr analogue of eq. (3):
    ``max_i(sr(0) + (u-1) * irsr(s) + ir_drain)``."""
    u = segments_for(nbytes, costs.seg_bytes)
    if u == 1:
        per_leader = costs.sr0 + costs.drain
        return float(per_leader.max())
    per_leader = costs.sr0 + (u - 1) * costs.irsr_stable + costs.drain
    return float(per_leader.max())


def estimate_allreduce(costs: AllreduceTaskCosts, nbytes: float) -> float:
    """Equation (4) for a message of ``nbytes``."""
    u = segments_for(nbytes, costs.seg_bytes)
    drain_total = costs.drain.sum(axis=1)
    if u == 1:
        # sr + ir + ib + sb, approximated by the measured warm-up and
        # drain steps of a unit pipeline
        per_leader = costs.sr0 + costs.irsr + costs.ibirsr + costs.drain[:, -1]
        return float(per_leader.max())
    if u == 2:
        per_leader = (
            costs.sr0 + costs.irsr + costs.ibirsr + drain_total - costs.drain[:, 0]
        )
        return float(np.maximum(per_leader, 0).max())
    per_leader = (
        costs.sr0
        + costs.irsr
        + costs.ibirsr
        + (u - 3) * costs.sbibirsr_stable
        + drain_total
    )
    return float(per_leader.max())
