"""Search-space definitions (paper Tables I and II).

The configuration axes:

- ``fs``: HAN segment size (S in the paper's cost analysis),
- the inter-node "algorithm" axis A = submodule x algorithm x inner
  segment size (Libnbc has a single point; ADAPT contributes
  |{chain, binary, binomial}| x |ibs options|),
- ``smod``: SM or SOLO.

``M`` (message sizes) is what the task-based method eliminates from the
search: task costs are reused across every ``m`` (section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Optional, Sequence

from repro.core.config import HanConfig

__all__ = ["TuningInputs", "SearchSpace"]

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class TuningInputs:
    """One row of the autotuning input space (paper Table I)."""

    n: int  # number of nodes
    p: int  # processes per node
    m: float  # message size (bytes)
    t: str  # collective operation type ('bcast', 'allreduce', ...)


def _pow2_range(lo: float, hi: float) -> tuple[float, ...]:
    out, v = [], float(lo)
    while v <= hi:
        out.append(v)
        v *= 2
    return tuple(out)


@dataclass(frozen=True)
class SearchSpace:
    """Enumerable configuration space for one machine geometry."""

    #: HAN segment sizes (fs); None means "no segmentation"
    seg_sizes: Sequence[Optional[float]] = (
        None,
        64 * KiB,
        128 * KiB,
        256 * KiB,
        512 * KiB,
        1 * MiB,
    )
    #: message sizes sampled into the lookup table
    messages: Sequence[float] = field(
        default_factory=lambda: _pow2_range(1 * KiB, 16 * MiB)
    )
    #: inter-node submodules considered
    imods: Sequence[str] = ("libnbc", "adapt")
    #: ADAPT algorithms for ib and ir
    adapt_algorithms: Sequence[str] = ("chain", "binary", "binomial")
    #: ADAPT inner segment sizes (None = ADAPT's own default)
    inner_segs: Sequence[Optional[float]] = (None, 512 * KiB)
    #: intra-node submodules considered
    smods: Sequence[str] = ("sm", "solo")

    def algorithm_axis(self) -> list[dict]:
        """The A axis: submodule x algorithm x inner segment size."""
        axis: list[dict] = [
            dict(imod="libnbc", ibalg=None, iralg=None, ibs=None, irs=None)
        ]
        if "adapt" in self.imods:
            for alg, inner in product(self.adapt_algorithms, self.inner_segs):
                axis.append(
                    dict(imod="adapt", ibalg=alg, iralg=alg, ibs=inner, irs=inner)
                )
        if "libnbc" not in self.imods:
            axis = axis[1:]
        return axis

    def configs(self) -> list[HanConfig]:
        """Every HanConfig in the space (the exhaustive search set)."""
        out = []
        for fs, algo, smod in product(
            self.seg_sizes, self.algorithm_axis(), self.smods
        ):
            out.append(HanConfig(fs=fs, smod=smod, **algo))
        return out

    def size(self) -> int:
        return len(self.configs())

    @classmethod
    def small(cls) -> "SearchSpace":
        """A compact space for tests and fast experiment runs."""
        return cls(
            seg_sizes=(None, 128 * KiB, 512 * KiB),
            messages=_pow2_range(4 * KiB, 4 * MiB),
            adapt_algorithms=("chain", "binomial"),
            inner_segs=(None,),
        )

    @classmethod
    def gpu(cls) -> "SearchSpace":
        """The accelerator-node space: the ``gpu`` intra module joins the
        host transports on the smod axis.

        On machines whose nodes carry GPUs (``NodeSpec.gpus > 0``, e.g.
        the ``gpu_cluster`` / ``gpu_pod`` presets) the intra-node stage
        can ride NVLink instead of the host memory bus; on split-fabric
        nodes (``fabric_domains > 1``, the ``gpu_pod`` preset) picking
        ``smod="gpu"`` additionally engages HAN's fabric/node/network
        3-level composition.  The search decides per message size
        whether the device path beats sm/solo.
        """
        return cls(
            seg_sizes=(None, 128 * KiB, 512 * KiB),
            messages=_pow2_range(4 * KiB, 4 * MiB),
            adapt_algorithms=("chain", "binomial"),
            inner_segs=(None,),
            smods=("sm", "solo", "gpu"),
        )
