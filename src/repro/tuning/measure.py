"""Full-collective measurement (the exhaustive search's unit of work).

The timing definition follows the paper (III-A2): "the cost of a
collective operation [is] the longest time among all the processes" --
the max-across-ranks value that IMB and the OSU benchmarks report.

Under performance variability (:mod:`repro.faults`) one run is one
*sample*; ``trials`` repeats the measurement under independent noise
realizations and aggregates them, the classic defense against tuning on
an outlier (median-of-k, Hoefler & Belli's "benchmarking 101" advice).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional

from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.faults.machine import FaultyMachineSpec
from repro.faults.plan import FaultPlan
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime
from repro.netsim.profiles import P2PProfile
from repro.tenancy.plan import TrafficPlan
from repro.tenancy.scheduler import TenantScheduler
from repro.tuning.cache import MeasurementCache, digest

__all__ = [
    "CollectiveMeasurement",
    "measure_collective",
    "measurement_from_doc",
    "measurement_key",
    "measurement_to_doc",
    "resolve_plan",
    "resolve_traffic",
]

AGGREGATES = ("median", "min", "mean")


@dataclass(frozen=True)
class CollectiveMeasurement:
    """One timed collective: per-rank durations and the IMB-style max.

    With ``trials > 1`` the headline ``time`` is the aggregate across
    noise realizations, ``trial_times`` keeps every sample, and
    ``spread`` is the median absolute deviation — the robust dispersion
    the confidence-aware autotuner penalizes.
    """

    coll: str
    nbytes: float
    config: HanConfig
    time: float  # aggregated max across ranks (the reported cost)
    per_rank: tuple[float, ...]
    sim_cost: float  # simulated seconds the benchmark consumed (tuning cost)
    trial_times: tuple[float, ...] = ()
    spread: float = 0.0  # median absolute deviation of trial_times


def _run_once(
    machine: MachineSpec,
    coll: str,
    nbytes: float,
    config: HanConfig,
    root: int,
    iterations: int,
    profile: Optional[P2PProfile],
    trace_out: str = "",
    traffic: Optional[TrafficPlan] = None,
) -> tuple[tuple[float, ...], float]:
    """One fresh simulated benchmark; (per-rank durations, sim cost).

    ``trace_out`` attaches an observability recorder and writes a
    Perfetto-loadable Chrome trace of the run; the recorder never touches
    timing, so traced and untraced runs are bit-identical.

    ``traffic`` (a realized :class:`TrafficPlan` with tenants) replays
    background jobs while the benchmark runs: the foreground program
    becomes one job among many on the machine, and its measured
    durations include the contention.  ``sim_cost`` still reads the
    engine clock at drain time, so loaded measurements bill their true
    (longer) simulated span.
    """
    runtime = MPIRuntime(machine, profile=profile)
    han = HanModule(config=config)
    durations: dict[int, float] = {}

    def prog(comm):
        op = getattr(han, coll)
        yield from comm.barrier()
        start = comm.now
        for _ in range(iterations):
            if coll == "barrier":
                yield from op(comm)
            elif coll in ("bcast", "reduce"):
                yield from op(comm, nbytes, root=root)
            else:
                yield from op(comm, nbytes)
        durations[comm.rank] = (comm.now - start) / iterations

    def drive():
        if traffic is not None:
            TenantScheduler(runtime, traffic).run(prog, name="measure")
        else:
            runtime.run(prog)

    if trace_out:
        from repro.obs import ObsRecorder, write_chrome_trace

        with ObsRecorder(runtime.engine) as rec:
            drive()
            rec.snapshot_resources(runtime.fabric.solver)
        write_chrome_trace(
            rec.run_record(meta={
                "coll": coll, "nbytes": float(nbytes),
                "config": repr(config),
            }),
            trace_out,
        )
    else:
        drive()
    per_rank = tuple(durations[r] for r in sorted(durations))
    return per_rank, runtime.engine.now


def measure_collective(
    machine: MachineSpec,
    coll: str,
    nbytes: float,
    config: HanConfig,
    root: int = 0,
    iterations: int = 1,
    profile: Optional[P2PProfile] = None,
    fault_plan: Optional[FaultPlan] = None,
    traffic_plan: Optional[TrafficPlan] = None,
    trials: int = 1,
    trial_offset: int = 0,
    aggregate: str = "median",
    cache: Optional[MeasurementCache] = None,
    trace_out: str = "",
    store=None,
    store_source: str = "measure_collective",
) -> CollectiveMeasurement:
    """Time one HAN collective configuration on a fresh simulated machine.

    ``iterations`` repeats the operation back-to-back (pipelining state
    does not persist across calls, so the simulator is deterministic; the
    knob exists to mirror real benchmarking loops in the tuning-cost
    accounting of Fig 8).

    ``fault_plan`` perturbs the platform: each of the ``trials`` runs
    re-installs the plan under realization ``trial_offset + t`` (an
    unset plan seed is resolved from ``config.seed``), so different
    trials see independent — but reproducible — noise.  ``aggregate``
    picks the headline statistic over the per-trial maxima; ``sim_cost``
    sums over all trials, because repeated measurement is exactly what
    inflates the tuning bill.

    ``traffic_plan`` (:class:`repro.tenancy.TrafficPlan`) replays
    background tenant jobs during each trial — the interference-aware
    path.  It follows the fault-plan contract exactly: an unset seed
    resolves from ``config.seed``, trial ``trial_offset + t`` selects
    the traffic realization, an empty plan is bit-identical to no plan,
    and an active plan enters the measurement digest so loaded and
    quiet measurements never alias in the cache or the run store.

    ``cache`` (a :class:`~repro.tuning.cache.MeasurementCache`) short-
    circuits the simulation when this exact point — same machine,
    collective, size, config, fault realization, iteration counts and
    profile — was measured before; a hit replays the recorded result,
    including its ``sim_cost``, so tuning-cost accounting is unaffected.

    ``trace_out`` writes a Chrome trace of the *first* trial's run (the
    recorder does not perturb timing; cache hits skip the simulation and
    therefore produce no trace).

    ``store`` (a :class:`~repro.obs.store.RunStore`) appends a run
    summary — headline time, per-rank profile, provenance tagged
    ``store_source`` — to the cross-run observatory, making this
    measurement comparable against every past run of the same point
    (``python -m repro.obs.cli regress``).  Cache hits are appended too:
    a replayed measurement is still a run of the experiment.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if aggregate not in AGGREGATES:
        raise ValueError(f"aggregate must be one of {AGGREGATES}, got {aggregate!r}")
    plan = resolve_plan(fault_plan, config)
    traffic = resolve_traffic(traffic_plan, config)

    key = None
    if cache is not None:
        key = measurement_key(
            machine, coll, nbytes, config, root, iterations, profile,
            plan, trials, trial_offset, aggregate, traffic=traffic,
        )
        doc = cache.get(key)
        if doc is not None:
            meas = measurement_from_doc(doc)
            if store is not None:
                from repro.obs.store import summarize_measurement

                store.append(summarize_measurement(
                    machine, meas, source=store_source, plan=plan,
                    traffic=traffic,
                ))
            return meas

    times: list[float] = []
    per_rank_by_trial: list[tuple[float, ...]] = []
    sim_cost = 0.0
    for trial in range(trials):
        m = machine
        if plan is not None:
            m = FaultyMachineSpec.wrap(machine, plan.for_trial(trial_offset + trial))
        tr = None
        if traffic is not None:
            tr = traffic.for_trial(trial_offset + trial)
        per_rank, cost = _run_once(
            m, coll, nbytes, config, root, iterations, profile,
            trace_out=trace_out if trial == 0 else "",
            traffic=tr,
        )
        per_rank_by_trial.append(per_rank)
        times.append(max(per_rank))
        sim_cost += cost

    if aggregate == "median":
        time = statistics.median(times)
    elif aggregate == "mean":
        time = statistics.fmean(times)
    else:
        time = min(times)
    # MAD around the *median* of the samples, not around the headline
    # aggregate: with aggregate="min"/"mean" centering on `time` would
    # inflate the dispersion and unfairly penalize those configs under
    # selection="confident".
    if len(times) > 1:
        center = statistics.median(times)
        spread = statistics.median(abs(x - center) for x in times)
    else:
        spread = 0.0
    # report the per-rank profile of the trial closest to the aggregate
    rep = min(range(len(times)), key=lambda i: (abs(times[i] - time), i))
    meas = CollectiveMeasurement(
        coll=coll,
        nbytes=nbytes,
        config=config,
        time=time,
        per_rank=per_rank_by_trial[rep],
        sim_cost=sim_cost,
        trial_times=tuple(times),
        spread=spread,
    )
    if cache is not None:
        cache.put(key, measurement_to_doc(meas))
    if store is not None:
        from repro.obs.store import summarize_measurement

        store.append(summarize_measurement(
            machine, meas, source=store_source, plan=plan, traffic=traffic,
        ))
    return meas


# -- cache plumbing -----------------------------------------------------------------


def resolve_plan(
    fault_plan: Optional[FaultPlan], config: HanConfig
) -> Optional[FaultPlan]:
    """The effective (seed-resolved) plan a measurement will install."""
    if fault_plan is not None and fault_plan.injectors:
        return fault_plan.resolve_seed(config.seed)
    return None


def resolve_traffic(
    traffic_plan: Optional[TrafficPlan], config: HanConfig
) -> Optional[TrafficPlan]:
    """The effective (seed-resolved) traffic plan a measurement replays.

    Mirrors :func:`resolve_plan`: a ``None`` or tenant-less plan is no
    plan at all (bit-identical to a quiet machine, absent from the
    digest), and an unset seed resolves from ``config.seed``.
    """
    if traffic_plan is not None and traffic_plan.tenants:
        return traffic_plan.resolve_seed(config.seed)
    return None


def measurement_key(
    machine: MachineSpec,
    coll: str,
    nbytes: float,
    config: HanConfig,
    root: int,
    iterations: int,
    profile: Optional[P2PProfile],
    plan: Optional[FaultPlan],
    trials: int,
    trial_offset: int,
    aggregate: str,
    traffic: Optional[TrafficPlan] = None,
) -> str:
    """Content digest identifying one measurement point.

    ``plan`` and ``traffic`` must already be resolved (see
    :func:`resolve_plan` / :func:`resolve_traffic`).  The trial window
    enters the key only under an active plan — without noise or
    background traffic every trial is identical, so sweeps that differ
    merely in trial bookkeeping share cache entries.  An active traffic
    plan enters the digest whole (tenants, seed, trial window), so a
    loaded measurement can never alias a quiet one.
    """
    realization = None
    if plan is not None:
        realization = {"plan": plan, "trial_offset": int(trial_offset)}
    background = None
    if traffic is not None:
        background = {"traffic": traffic, "trial_offset": int(trial_offset)}
    return digest(
        "measure",
        machine=machine,
        coll=coll,
        nbytes=float(nbytes),
        config=list(config.key()),
        root=int(root),
        iterations=int(iterations),
        profile=profile,
        realization=realization,
        background=background,
        trials=int(trials),
        aggregate=aggregate,
    )


def measurement_to_doc(meas: CollectiveMeasurement) -> dict:
    """JSON-safe cache record of one measurement."""
    cfg = meas.config
    return {
        "__kind__": "measure",
        "coll": meas.coll,
        "nbytes": meas.nbytes,
        "config": {
            "fs": cfg.fs, "imod": cfg.imod, "smod": cfg.smod,
            "ibalg": cfg.ibalg, "iralg": cfg.iralg,
            "ibs": cfg.ibs, "irs": cfg.irs, "seed": cfg.seed,
        },
        "time": meas.time,
        "per_rank": list(meas.per_rank),
        "sim_cost": meas.sim_cost,
        "trial_times": list(meas.trial_times),
        "spread": meas.spread,
    }


def measurement_from_doc(doc: dict) -> CollectiveMeasurement:
    """Inverse of :func:`measurement_to_doc`."""
    return CollectiveMeasurement(
        coll=doc["coll"],
        nbytes=doc["nbytes"],
        config=HanConfig(**doc["config"]),
        time=doc["time"],
        per_rank=tuple(doc["per_rank"]),
        sim_cost=doc["sim_cost"],
        trial_times=tuple(doc["trial_times"]),
        spread=doc["spread"],
    )
