"""Full-collective measurement (the exhaustive search's unit of work).

The timing definition follows the paper (III-A2): "the cost of a
collective operation [is] the longest time among all the processes" --
the max-across-ranks value that IMB and the OSU benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime
from repro.netsim.profiles import P2PProfile

__all__ = ["CollectiveMeasurement", "measure_collective"]


@dataclass(frozen=True)
class CollectiveMeasurement:
    """One timed collective: per-rank durations and the IMB-style max."""

    coll: str
    nbytes: float
    config: HanConfig
    time: float  # max across ranks (the reported cost)
    per_rank: tuple[float, ...]
    sim_cost: float  # simulated seconds the benchmark consumed (tuning cost)


def measure_collective(
    machine: MachineSpec,
    coll: str,
    nbytes: float,
    config: HanConfig,
    root: int = 0,
    iterations: int = 1,
    profile: P2PProfile | None = None,
) -> CollectiveMeasurement:
    """Time one HAN collective configuration on a fresh simulated machine.

    ``iterations`` repeats the operation back-to-back (pipelining state
    does not persist across calls, so the simulator is deterministic; the
    knob exists to mirror real benchmarking loops in the tuning-cost
    accounting of Fig 8).
    """
    runtime = MPIRuntime(machine, profile=profile)
    han = HanModule(config=config)
    durations: dict[int, float] = {}

    def prog(comm):
        op = getattr(han, coll)
        yield from comm.barrier()
        start = comm.now
        for _ in range(iterations):
            yield from op(comm, nbytes, root=root) if coll in (
                "bcast",
                "reduce",
            ) else op(comm, nbytes)
        durations[comm.rank] = (comm.now - start) / iterations

    runtime.run(prog)
    per_rank = tuple(durations[r] for r in sorted(durations))
    return CollectiveMeasurement(
        coll=coll,
        nbytes=nbytes,
        config=config,
        time=max(per_rank),
        per_rank=per_rank,
        sim_cost=runtime.engine.now,
    )
