"""Full-collective measurement (the exhaustive search's unit of work).

The timing definition follows the paper (III-A2): "the cost of a
collective operation [is] the longest time among all the processes" --
the max-across-ranks value that IMB and the OSU benchmarks report.

Under performance variability (:mod:`repro.faults`) one run is one
*sample*; ``trials`` repeats the measurement under independent noise
realizations and aggregates them, the classic defense against tuning on
an outlier (median-of-k, Hoefler & Belli's "benchmarking 101" advice).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional

from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.faults.machine import FaultyMachineSpec
from repro.faults.plan import FaultPlan
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime
from repro.netsim.profiles import P2PProfile

__all__ = ["CollectiveMeasurement", "measure_collective"]

AGGREGATES = ("median", "min", "mean")


@dataclass(frozen=True)
class CollectiveMeasurement:
    """One timed collective: per-rank durations and the IMB-style max.

    With ``trials > 1`` the headline ``time`` is the aggregate across
    noise realizations, ``trial_times`` keeps every sample, and
    ``spread`` is the median absolute deviation — the robust dispersion
    the confidence-aware autotuner penalizes.
    """

    coll: str
    nbytes: float
    config: HanConfig
    time: float  # aggregated max across ranks (the reported cost)
    per_rank: tuple[float, ...]
    sim_cost: float  # simulated seconds the benchmark consumed (tuning cost)
    trial_times: tuple[float, ...] = ()
    spread: float = 0.0  # median absolute deviation of trial_times


def _run_once(
    machine: MachineSpec,
    coll: str,
    nbytes: float,
    config: HanConfig,
    root: int,
    iterations: int,
    profile: Optional[P2PProfile],
) -> tuple[tuple[float, ...], float]:
    """One fresh simulated benchmark; (per-rank durations, sim cost)."""
    runtime = MPIRuntime(machine, profile=profile)
    han = HanModule(config=config)
    durations: dict[int, float] = {}

    def prog(comm):
        op = getattr(han, coll)
        yield from comm.barrier()
        start = comm.now
        for _ in range(iterations):
            yield from op(comm, nbytes, root=root) if coll in (
                "bcast",
                "reduce",
            ) else op(comm, nbytes)
        durations[comm.rank] = (comm.now - start) / iterations

    runtime.run(prog)
    per_rank = tuple(durations[r] for r in sorted(durations))
    return per_rank, runtime.engine.now


def measure_collective(
    machine: MachineSpec,
    coll: str,
    nbytes: float,
    config: HanConfig,
    root: int = 0,
    iterations: int = 1,
    profile: Optional[P2PProfile] = None,
    fault_plan: Optional[FaultPlan] = None,
    trials: int = 1,
    trial_offset: int = 0,
    aggregate: str = "median",
) -> CollectiveMeasurement:
    """Time one HAN collective configuration on a fresh simulated machine.

    ``iterations`` repeats the operation back-to-back (pipelining state
    does not persist across calls, so the simulator is deterministic; the
    knob exists to mirror real benchmarking loops in the tuning-cost
    accounting of Fig 8).

    ``fault_plan`` perturbs the platform: each of the ``trials`` runs
    re-installs the plan under realization ``trial_offset + t`` (an
    unset plan seed is resolved from ``config.seed``), so different
    trials see independent — but reproducible — noise.  ``aggregate``
    picks the headline statistic over the per-trial maxima; ``sim_cost``
    sums over all trials, because repeated measurement is exactly what
    inflates the tuning bill.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if aggregate not in AGGREGATES:
        raise ValueError(f"aggregate must be one of {AGGREGATES}, got {aggregate!r}")
    plan = None
    if fault_plan is not None and fault_plan.injectors:
        plan = fault_plan.resolve_seed(config.seed)

    times: list[float] = []
    per_rank_by_trial: list[tuple[float, ...]] = []
    sim_cost = 0.0
    for t in range(trials):
        m = machine
        if plan is not None:
            m = FaultyMachineSpec.wrap(machine, plan.for_trial(trial_offset + t))
        per_rank, cost = _run_once(m, coll, nbytes, config, root, iterations, profile)
        per_rank_by_trial.append(per_rank)
        times.append(max(per_rank))
        sim_cost += cost

    if aggregate == "median":
        time = statistics.median(times)
    elif aggregate == "mean":
        time = statistics.fmean(times)
    else:
        time = min(times)
    spread = statistics.median(abs(t - time) for t in times) if len(times) > 1 else 0.0
    # report the per-rank profile of the trial closest to the aggregate
    rep = min(range(len(times)), key=lambda i: (abs(times[i] - time), i))
    return CollectiveMeasurement(
        coll=coll,
        nbytes=nbytes,
        config=config,
        time=time,
        per_rank=per_rank_by_trial[rep],
        sim_cost=sim_cost,
        trial_times=tuple(times),
        spread=spread,
    )
