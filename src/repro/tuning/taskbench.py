"""Task benchmarking: the paper's replacement for whole-collective timing.

The key ideas from section III-A2 / III-B2:

- tasks are benchmarked *in context*: to time ``sbib(1)`` accurately the
  benchmark executes ``ib(0)`` first, so each node leader starts with the
  realistic stagger (Fig 2's red vs green bars);
- after the pipeline warms up, the per-iteration ``sbib`` cost
  *stabilizes* (Fig 3), so one stabilized value replaces ``u-1``
  per-segment measurements;
- costs are per-(segment size, algorithm) and *reused across message
  sizes* -- the M axis of the search space collapses to the constant T
  task types (section III-C).

One :class:`TaskBench` run executes the actual HAN task pipeline for a
handful of segments and extracts every per-leader task cost the cost
model (eqs. 3/4) needs, while accounting the simulated time consumed
(the tuning-cost currency of Fig 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

import numpy as np

from repro.core.config import HanConfig
from repro.core.subcomms import build_hierarchy
from repro.hardware.spec import MachineSpec
from repro.modules import make_module
from repro.mpi.runtime import MPIRuntime
from repro.netsim.profiles import P2PProfile

__all__ = [
    "AllreduceTaskCosts",
    "BcastTaskCosts",
    "ReduceTaskCosts",
    "TaskBench",
    "costs_from_doc",
    "costs_to_doc",
]


@dataclass
class BcastTaskCosts:
    """Per-leader task costs for one (config, segment size)."""

    config: HanConfig
    seg_bytes: float
    ib0: np.ndarray  # cost of task ib(0) on each node leader
    sb0: np.ndarray  # cost of a standalone sb(0) on each intra rank
    concurrent: np.ndarray  # ib(0)+sb(0) issued together (Fig 2 green)
    sbib_series: np.ndarray  # [leader, iteration] delayed-start sbib costs
    sbib_stable: np.ndarray  # stabilized sbib cost per leader (Fig 3)
    sim_cost: float

    @property
    def sb_final(self) -> float:
        """Cost of the trailing sb(u-1) (same as a standalone sb)."""
        return float(self.sb0.max())


@dataclass
class AllreduceTaskCosts:
    """Per-leader task costs for the 4-stage allreduce pipeline."""

    config: HanConfig
    seg_bytes: float
    sr0: np.ndarray
    irsr: np.ndarray
    ibirsr: np.ndarray
    sbibirsr_series: np.ndarray  # [leader, iteration]
    sbibirsr_stable: np.ndarray
    drain: np.ndarray  # [leader, 3]: sbibir, sbib, sb drain steps
    sim_cost: float


def _stabilized(series: np.ndarray, tail: int = 3) -> np.ndarray:
    """Stabilized per-leader cost: mean of the last ``tail`` iterations."""
    if series.shape[1] == 0:
        return np.zeros(series.shape[0])
    t = min(tail, series.shape[1])
    return series[:, -t:].mean(axis=1)


@dataclass
class ReduceTaskCosts:
    """Per-leader task costs for the 2-stage reduce pipeline (sr + ir)."""

    config: HanConfig
    seg_bytes: float
    sr0: np.ndarray
    irsr_series: np.ndarray  # [leader, iteration]
    irsr_stable: np.ndarray
    drain: np.ndarray  # final ir wait per leader
    sim_cost: float


# -- cache (de)serialization --------------------------------------------------------

_COSTS_CLASSES = {}  # populated below, after the dataclasses exist


def costs_to_doc(costs) -> dict:
    """JSON-safe cache record of one task-cost bundle (arrays -> lists)."""
    kind = type(costs).__name__
    if kind not in _COSTS_CLASSES:
        raise TypeError(f"not a task-cost bundle: {kind}")
    cfg = costs.config
    doc = {
        "__kind__": "taskbench",
        "__costs__": kind,
        "config": {
            "fs": cfg.fs, "imod": cfg.imod, "smod": cfg.smod,
            "ibalg": cfg.ibalg, "iralg": cfg.iralg,
            "ibs": cfg.ibs, "irs": cfg.irs, "seed": cfg.seed,
        },
    }
    for f in fields(costs):
        if f.name == "config":
            continue
        v = getattr(costs, f.name)
        doc[f.name] = v.tolist() if isinstance(v, np.ndarray) else v
    return doc


def costs_from_doc(doc: dict):
    """Inverse of :func:`costs_to_doc`."""
    cls = _COSTS_CLASSES[doc["__costs__"]]
    kw = {"config": HanConfig(**doc["config"])}
    for f in fields(cls):
        if f.name == "config":
            continue
        v = doc[f.name]
        kw[f.name] = np.asarray(v, dtype=float) if isinstance(v, list) else v
    return cls(**kw)


_COSTS_CLASSES.update(
    {c.__name__: c for c in (BcastTaskCosts, AllreduceTaskCosts, ReduceTaskCosts)}
)


@dataclass
class TaskBench:
    """Benchmarks HAN tasks on a simulated machine."""

    machine: MachineSpec
    profile: Optional[P2PProfile] = None
    #: pipeline iterations used to observe stabilization (K in Fig 3)
    warm_iters: int = 8
    #: accumulated simulated benchmark time (Fig 8 accounting)
    total_cost: float = field(default=0.0)

    def _runtime(self) -> MPIRuntime:
        return MPIRuntime(self.machine, profile=self.profile)

    # -- MPI_Bcast tasks ------------------------------------------------------

    def bench_bcast_tasks(
        self, config: HanConfig, seg_bytes: float
    ) -> BcastTaskCosts:
        """One in-context pipeline run + two satellite benches."""
        ib0, sbib_series, cost_pipeline = self._bcast_pipeline(config, seg_bytes)
        sb0, cost_sb = self._sb_alone(config, seg_bytes)
        conc, cost_conc = self._concurrent_ib_sb(config, seg_bytes)
        self.total_cost += cost_pipeline + cost_sb + cost_conc
        return BcastTaskCosts(
            config=config,
            seg_bytes=seg_bytes,
            ib0=ib0,
            sb0=sb0,
            concurrent=conc,
            sbib_series=sbib_series,
            sbib_stable=_stabilized(sbib_series),
            sim_cost=cost_pipeline + cost_sb + cost_conc,
        )

    def _bcast_pipeline(self, config: HanConfig, seg_bytes: float):
        """Run ib(0), sbib(1..K) exactly as HAN's leaders do; time each."""
        K = self.warm_iters
        runtime = self._runtime()
        n = self.machine.num_nodes
        ib0 = np.zeros(n)
        series = np.zeros((n, K))

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            imod, smod = make_module(config.imod), make_module(config.smod)
            low, up = hier.low, hier.up
            if hier.local_rank == 0:
                me = hier.up_rank_of(comm.rank)
                yield from low.barrier()
                t0 = comm.now
                req = imod.ibcast(
                    up, seg_bytes, root=0,
                    algorithm=config.ibalg, segsize=config.ibs,
                )
                prev = yield from up.wait(req)  # ib(0)
                ib0[me] = comm.now - t0
                for k in range(K):
                    t0 = comm.now
                    req = imod.ibcast(
                        up, seg_bytes, root=0,
                        algorithm=config.ibalg, segsize=config.ibs,
                    )
                    if low.size > 1:
                        yield from smod.bcast(
                            low, seg_bytes, root=0, payload=prev
                        )
                    prev = yield from up.wait(req)
                    series[me, k] = comm.now - t0
            else:
                yield from low.barrier()
                for _ in range(K):
                    yield from smod.bcast(low, seg_bytes, root=0)

        runtime.run(prog)
        return ib0, series, runtime.engine.now

    def _sb_alone(self, config: HanConfig, seg_bytes: float):
        """Standalone intra-node broadcast cost (Fig 2 orange)."""
        if self.machine.ppn == 1:
            return np.zeros(1), 0.0
        one_node = self.machine.scaled(num_nodes=1)
        runtime = MPIRuntime(one_node, profile=self.profile)
        times = np.zeros(one_node.ppn)
        smod_name = config.smod

        def prog(comm):
            smod = make_module(smod_name)
            yield from comm.barrier()
            t0 = comm.now
            yield from smod.bcast(comm, seg_bytes, root=0)
            times[comm.rank] = comm.now - t0

        runtime.run(prog)
        return times, runtime.engine.now

    def _concurrent_ib_sb(self, config: HanConfig, seg_bytes: float):
        """ib(0) and sb(0) issued simultaneously (Fig 2 green bars)."""
        runtime = self._runtime()
        n = self.machine.num_nodes
        times = np.zeros(n)

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            imod, smod = make_module(config.imod), make_module(config.smod)
            low, up = hier.low, hier.up
            if hier.local_rank == 0:
                me = hier.up_rank_of(comm.rank)
                yield from low.barrier()
                t0 = comm.now
                req = imod.ibcast(
                    up, seg_bytes, root=0,
                    algorithm=config.ibalg, segsize=config.ibs,
                )
                if low.size > 1:
                    yield from smod.bcast(low, seg_bytes, root=0)
                yield from up.wait(req)
                times[me] = comm.now - t0
            else:
                yield from low.barrier()
                yield from smod.bcast(low, seg_bytes, root=0)

        runtime.run(prog)
        return times, runtime.engine.now

    # -- MPI_Allreduce tasks ------------------------------------------------------

    def bench_allreduce_tasks(
        self, config: HanConfig, seg_bytes: float
    ) -> AllreduceTaskCosts:
        """Run the 4-stage pipeline for K segments; time each iteration."""
        K = self.warm_iters
        u = K + 3  # enough segments to fill, run and drain the pipeline
        runtime = self._runtime()
        n = self.machine.num_nodes
        sr0 = np.zeros(n)
        irsr = np.zeros(n)
        ibirsr = np.zeros(n)
        series = np.zeros((n, max(0, u - 3)))
        drain = np.zeros((n, 3))

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            imod, smod = make_module(config.imod), make_module(config.smod)
            low, up = hier.low, hier.up
            layer0 = hier.local_rank == 0
            intra = low.size > 1

            def sr(_i):
                if intra:
                    res = yield from smod.reduce(low, seg_bytes, root=0)
                    return res
                return None

            def sb(_i):
                if intra:
                    res = yield from smod.bcast(low, seg_bytes, root=0)
                    return res
                return None

            if layer0:
                me = hier.up_rank_of(comm.rank)
                yield from low.barrier()
                irreq: dict[int, object] = {}
                ibreq: dict[int, object] = {}
                for i in range(u + 3):
                    t0 = comm.now
                    if 0 <= i - 1 < u:
                        irreq[i - 1] = imod.ireduce(
                            up, seg_bytes, root=0,
                            algorithm=config.iralg, segsize=config.irs,
                        )
                    if 0 <= i - 2 < u:
                        yield from up.wait(irreq.pop(i - 2))
                        ibreq[i - 2] = imod.ibcast(
                            up, seg_bytes, root=0,
                            algorithm=config.ibalg, segsize=config.ibs,
                        )
                    if 0 <= i - 3 < u:
                        yield from up.wait(ibreq.pop(i - 3))
                        yield from sb(i - 3)
                    if i < u:
                        yield from sr(i)
                    dt = comm.now - t0
                    if i == 0:
                        sr0[me] = dt
                    elif i == 1:
                        irsr[me] = dt
                    elif i == 2:
                        ibirsr[me] = dt
                    elif i < u:
                        series[me, i - 3] = dt
                    else:
                        drain[me, i - u] = dt
            else:
                yield from low.barrier()
                for i in range(u + 3):
                    if 0 <= i - 3 < u:
                        yield from sb(i - 3)
                    if i < u:
                        yield from sr(i)

        runtime.run(prog)
        self.total_cost += runtime.engine.now
        return AllreduceTaskCosts(
            config=config,
            seg_bytes=seg_bytes,
            sr0=sr0,
            irsr=irsr,
            ibirsr=ibirsr,
            sbibirsr_series=series,
            sbibirsr_stable=_stabilized(series),
            drain=drain,
            sim_cost=runtime.engine.now,
        )

    # -- MPI_Reduce tasks (the irsr stream, paper section III extensions) ---------

    def bench_reduce_tasks(
        self, config: HanConfig, seg_bytes: float
    ) -> ReduceTaskCosts:
        """Run sr(0), irsr(1..K) and the drain ir; time each on leaders."""
        K = self.warm_iters
        u = K + 1
        runtime = self._runtime()
        n = self.machine.num_nodes
        sr0 = np.zeros(n)
        series = np.zeros((n, K))
        drain = np.zeros(n)

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            imod, smod = make_module(config.imod), make_module(config.smod)
            low, up = hier.low, hier.up
            intra = low.size > 1

            def sr():
                if intra:
                    res = yield from smod.reduce(low, seg_bytes, root=0)
                    return res
                return None

            if hier.local_rank == 0:
                me = hier.up_rank_of(comm.rank)
                yield from low.barrier()
                irreq = None
                for i in range(u + 1):
                    t0 = comm.now
                    if 0 <= i - 1 < u:
                        irreq = imod.ireduce(
                            up, seg_bytes, root=0,
                            algorithm=config.iralg, segsize=config.irs,
                        )
                    if i < u:
                        yield from sr()
                    if 0 <= i - 1 < u:
                        yield from up.wait(irreq)
                    dt = comm.now - t0
                    if i == 0:
                        sr0[me] = dt
                    elif i < u:
                        series[me, i - 1] = dt
                    else:
                        drain[me] = dt
            else:
                yield from low.barrier()
                for _ in range(u):
                    yield from sr()

        runtime.run(prog)
        self.total_cost += runtime.engine.now
        return ReduceTaskCosts(
            config=config,
            seg_bytes=seg_bytes,
            sr0=sr0,
            irsr_series=series,
            irsr_stable=_stabilized(series),
            drain=drain,
            sim_cost=runtime.engine.now,
        )

    # -- Fig 6: ib / ir overlap ------------------------------------------------------

    def bench_ib_ir_overlap(self, config: HanConfig, seg_bytes: float):
        """Costs of ib alone, ir alone, and concurrent ib+ir (Fig 6)."""
        out = {}
        for mode in ("ib", "ir", "both"):
            runtime = self._runtime()
            n = self.machine.num_nodes
            times = np.zeros(n)

            def prog(comm, mode=mode, times=times):
                hier = yield from build_hierarchy(comm)
                imod = make_module(config.imod)
                up = hier.up
                if hier.local_rank != 0:
                    return
                me = hier.up_rank_of(comm.rank)
                yield from up.barrier()
                t0 = comm.now
                reqs = []
                if mode in ("ib", "both"):
                    reqs.append(
                        imod.ibcast(
                            up, seg_bytes, root=0,
                            algorithm=config.ibalg, segsize=config.ibs,
                        )
                    )
                if mode in ("ir", "both"):
                    reqs.append(
                        imod.ireduce(
                            up, seg_bytes, root=0,
                            algorithm=config.iralg, segsize=config.irs,
                        )
                    )
                yield from up.waitall(reqs)
                times[me] = comm.now - t0

            runtime.run(prog)
            self.total_cost += runtime.engine.now
            out[mode] = times
        return out
