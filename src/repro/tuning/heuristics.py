"""Search-space pruning heuristics (paper section III-C).

The paper's examples, implemented here:

- "we only use the SOLO submodule when the segment size is larger than
  512KB since experimental results suggest SM has better performance
  than SOLO for small messages";
- "the chain algorithm in ADAPT can only perform well when there are
  enough segments to kick-start the pipelining, we can therefore prevent
  the chain algorithm from being tested when there are less than a
  certain number of segments";

plus structural prunes that cost nothing in accuracy: a segment size at
least as large as the message collapses to "no segmentation", and inner
(ADAPT) segment sizes larger than the HAN segment are meaningless.

Heuristics trade tuning time for a risk of missing the optimum (Fig 8 vs
Fig 9), so they are optional everywhere.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import HanConfig
from repro.tuning.costmodel import segments_for

__all__ = ["prune_configs", "chain_viable"]

SOLO_MIN_SEG = 512 * 1024
CHAIN_MIN_SEGMENTS = 4


def chain_viable(nbytes: float, fs: Optional[float], num_nodes: int) -> bool:
    """Chain needs a full pipeline: enough segments vs the chain depth."""
    u = segments_for(nbytes, fs)
    return u >= max(CHAIN_MIN_SEGMENTS, num_nodes // 2)


def prune_configs(
    configs: Iterable[HanConfig],
    nbytes: Optional[float] = None,
    num_nodes: Optional[int] = None,
) -> list[HanConfig]:
    """Apply the heuristics; message-dependent rules only when ``nbytes``
    is given (the task-based method prunes before message sizes exist)."""
    out = []
    for cfg in configs:
        seg = cfg.fs if cfg.fs is not None else nbytes
        # The paper's SM/SOLO partition: "we only use the SOLO submodule
        # when the segment size is larger than 512KB since experimental
        # results suggest SM has better performance than SOLO for small
        # messages" -- i.e. per segment size only one intra module is
        # ever tested.
        if seg is not None:
            if cfg.smod == "solo" and seg <= SOLO_MIN_SEG:
                continue
            if cfg.smod == "sm" and seg > SOLO_MIN_SEG:
                continue
        # Inner segmentation beyond the HAN segment size is meaningless.
        if cfg.ibs is not None and cfg.fs is not None and cfg.ibs > cfg.fs:
            continue
        if cfg.irs is not None and cfg.fs is not None and cfg.irs > cfg.fs:
            continue
        if nbytes is not None:
            # fs >= m duplicates the unsegmented configuration.
            if cfg.fs is not None and cfg.fs >= nbytes:
                continue
            if cfg.ibalg == "chain" and num_nodes is not None:
                if not chain_viable(nbytes, cfg.fs, num_nodes):
                    continue
        out.append(cfg)
    return out
