"""Successive-halving trial allocation for the exhaustive search.

The fixed-trials exhaustive path spends ``trials`` noise realizations on
*every* candidate configuration — most of which are obvious losers after
a sample or two.  :class:`BanditAllocator` treats the candidates of one
message size as bandit arms and runs synchronous successive halving
(Karnin et al. 2013; Jamieson & Talwalkar 2016): every rung tops the
surviving arms up to a growing per-arm sample target, scores them with
the same robust statistic the fixed path uses (median, plus MAD under
``selection="confident"``), and eliminates the losers before the next —
more expensive — rung.

Elimination is two-stage, and deliberately conservative:

- **band dominance** (only once arms hold >= 2 samples, so the MAD is
  meaningful): an arm whose *optimistic* value ``center - spread`` is
  still worse than the incumbent's *pessimistic* ``center + spread``
  cannot win and is dropped regardless of the cap.  On a noise-free
  machine every spread is zero, so this fires at the second rung and
  collapses the race to the exact ties of the leader — the early-stop
  that makes quiet tuning nearly free.
- **the cap**: at most ``ceil(len(active) / eta)`` arms survive a rung,
  ranked by ``(score, center, index)``.  Ties break toward the lower
  candidate index — the enumeration order — which is exactly how the
  fixed path's ``min()`` breaks ties, so a noise-free bandit run picks
  the same winner bit-for-bit.

The allocator never measures anything itself: it emits batched sample
*requests* ``(arm index, start, count)`` against each arm's private
trial window and lets the caller resolve them (in parallel, through the
measurement cache — see ``Autotuner._tune_exhaustive``).  ``start`` is
the arm-local trial offset, so arm ``i``'s samples land in the same
fault/traffic realizations the fixed path would have used for its first
``count`` trials.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["BanditAllocator", "BanditResult"]

#: one batch of sample requests: (arm index, arm-local start, count)
SampleRequest = tuple[int, int, int]


def _center(times: Sequence[float]) -> float:
    return statistics.median(times)


def _spread(times: Sequence[float]) -> float:
    if len(times) < 2:
        return 0.0
    c = statistics.median(times)
    return statistics.median(abs(x - c) for x in times)


@dataclass
class BanditResult:
    """What one successive-halving run decided, and what it cost."""

    winner: int  # candidate index (enumeration order)
    #: per-candidate samples actually drawn (losers hold partial windows)
    samples: tuple[tuple[float, ...], ...]
    trials_spent: int
    #: per-rung log: {"target", "active", "eliminated"} (candidate indices)
    rungs: list[dict] = field(default_factory=list)

    def center(self, index: int) -> float:
        """The robust (median) time estimate for one candidate."""
        return _center(self.samples[index])


@dataclass(frozen=True)
class BanditAllocator:
    """Synchronous successive halving over one candidate list.

    ``trials`` is the per-arm sample *budget* — the same knob the fixed
    path spends unconditionally; no arm ever exceeds it.  ``eta`` is the
    halving rate (the survivor cap divides the field by ``eta`` each
    rung) and ``min_rung`` the sample count of the first rung.
    """

    trials: int
    eta: int = 2
    min_rung: int = 1
    selection: str = "best"

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if not 1 <= self.min_rung <= self.trials:
            raise ValueError(
                f"min_rung must be in [1, trials={self.trials}], got {self.min_rung}"
            )
        if self.selection not in ("best", "confident"):
            raise ValueError(
                f"selection must be 'best' or 'confident', got {self.selection!r}"
            )

    def _score(self, times: Sequence[float]) -> float:
        score = _center(times)
        if self.selection == "confident":
            score += _spread(times)
        return score

    def run(
        self,
        n_candidates: int,
        sample: Callable[[list[SampleRequest]], list[Sequence[float]]],
    ) -> BanditResult:
        """Race ``n_candidates`` arms; return the surviving winner.

        ``sample(requests)`` must return one sequence of fresh times per
        request, aligned by position, of exactly the requested length.
        """
        if n_candidates < 1:
            raise ValueError("need at least one candidate")
        times: list[list[float]] = [[] for _ in range(n_candidates)]
        active = list(range(n_candidates))
        rungs: list[dict] = []
        spent = 0
        target = 0
        while True:
            target = min(
                self.trials,
                self.min_rung if target == 0 else target * self.eta,
            )
            requests = [
                (i, len(times[i]), target - len(times[i]))
                for i in active
                if len(times[i]) < target
            ]
            for (i, start, count), fresh in zip(requests, sample(requests)):
                fresh = list(fresh)
                if len(fresh) != count:
                    raise ValueError(
                        f"sample returned {len(fresh)} times for arm {i}, "
                        f"requested {count}"
                    )
                times[i].extend(fresh)
                spent += count

            ranked = sorted(
                active,
                key=lambda i: (self._score(times[i]), _center(times[i]), i),
            )
            survivors = ranked
            if target >= 2:
                # every active arm holds >= 2 samples: the MAD bands mean
                # something, so drop arms that cannot overlap the leader
                best = ranked[0]
                hi = _center(times[best]) + _spread(times[best])
                survivors = [
                    i for i in ranked
                    if _center(times[i]) - _spread(times[i]) <= hi
                ]
            cap = max(1, math.ceil(len(active) / self.eta))
            survivors = survivors[:cap]
            rungs.append({
                "target": target,
                "active": list(active),
                "eliminated": [i for i in active if i not in survivors],
            })
            active = survivors
            if len(active) == 1 or target >= self.trials:
                break

        return BanditResult(
            winner=active[0],
            samples=tuple(tuple(t) for t in times),
            trials_spent=spent,
            rungs=rungs,
        )
