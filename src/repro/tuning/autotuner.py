"""The autotuning orchestrator: four search methods, one lookup table.

Methods (Fig 8/9 legend):

===============  ====================================================
``exhaustive``   time every (m, config) full collective; guaranteed
                 optimum, cost ~ M x S x A
``exhaustive+h`` exhaustive over the heuristic-pruned space
``task``         benchmark tasks per (segment size, algorithm) once,
                 estimate all message sizes with eqs. (3)/(4);
                 cost ~ T x S x A (M collapses)
``task+h``       task method over the pruned space
===============  ====================================================

The tuning cost is accounted in *simulated seconds of benchmark time*,
the same currency the paper's Fig 8 reports (wall time of the tuning
job), times the benchmark iteration count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.config import HanConfig
from repro.faults.plan import FaultPlan
from repro.hardware.spec import MachineSpec
from repro.netsim.profiles import P2PProfile
from repro.tenancy.plan import TrafficPlan
from repro.tuning.bandit import BanditAllocator
from repro.tuning.cache import MeasurementCache
from repro.tuning.costmodel import (
    estimate_allreduce,
    estimate_bcast,
    estimate_reduce,
    segments_for,
)
from repro.tuning.heuristics import prune_configs
from repro.tuning.lookup import LookupTable
from repro.tuning.measure import measure_collective
from repro.tuning.parallel import MeasurePoint, TaskPoint, run_cached
from repro.tuning.space import SearchSpace
from repro.tuning.taskbench import TaskBench

__all__ = ["Autotuner", "TuningReport"]

METHODS = ("exhaustive", "exhaustive+h", "task", "task+h")
ALLOCATIONS = ("fixed", "bandit")


@dataclass
class TuningReport:
    """Everything one tuning run produced."""

    method: str
    machine: str
    table: LookupTable
    tuning_cost: float = 0.0  # simulated benchmark seconds (Fig 8)
    searches: int = 0  # number of benchmark runs
    #: noise/traffic realizations actually consumed by exhaustive
    #: measurements — the budget the bandit allocator economizes
    #: (``fixed`` spends exactly ``len(points) * trials``)
    trials_spent: int = 0
    #: (coll, m) -> list of (config, measured-or-estimated time)
    candidates: dict = field(default_factory=dict)

    def best(self, coll: str, m: float) -> tuple[HanConfig, float]:
        cands = self.candidates[(coll, m)]
        return min(cands, key=lambda cv: cv[1])

    def winners(self) -> list[tuple]:
        """``(coll, n, p, m, config, time)`` per lookup-table entry.

        ``time`` is the chosen configuration's own measured/estimated
        seconds (not the candidate minimum -- under
        ``selection="confident"`` the chosen config need not be the raw
        argmin), or ``None`` when no candidate record exists.  This is
        the export adapter the decision store
        (:meth:`repro.serve.store.DecisionStore.put_report`) consumes.
        """
        out = []
        for (coll, n, p, m), cfg in sorted(self.table.entries.items()):
            time = next(
                (t for c, t in self.candidates.get((coll, m), ()) if c == cfg),
                None,
            )
            out.append((coll, n, p, m, cfg, time))
        return out


@dataclass
class Autotuner:
    machine: MachineSpec
    space: SearchSpace = field(default_factory=SearchSpace.small)
    profile: Optional[P2PProfile] = None
    #: iterations a real benchmark loop would run per measurement; scales
    #: the tuning-cost accounting without changing the (deterministic)
    #: simulated measurement itself
    bench_iters: int = 10
    warm_iters: int = 8
    #: perturb exhaustive measurements with this fault plan (see
    #: :mod:`repro.faults`); every measurement consumes ``trials`` fresh
    #: noise realizations (a running trial counter keeps realizations
    #: distinct across configs, deterministically)
    fault_plan: Optional[FaultPlan] = None
    #: replay this background-traffic plan (:mod:`repro.tenancy`) during
    #: every exhaustive measurement — tuning under load.  Follows the
    #: fault-plan contract: per-measurement trial windows select traffic
    #: realizations, and the plan enters the measurement digests
    traffic_plan: Optional[TrafficPlan] = None
    trials: int = 1
    #: ``"best"`` = argmin of the aggregated time (classic); ``"confident"``
    #: = argmin of aggregated time + spread, penalizing configurations
    #: whose advantage is not robust across noise realizations
    selection: str = "best"
    #: ``"fixed"`` spends ``trials`` realizations on every candidate;
    #: ``"bandit"`` races them with successive halving
    #: (:class:`~repro.tuning.bandit.BanditAllocator`), spending the
    #: budget on contenders and eliminating losers early.  Noise-free,
    #: both pick the same winner bit-for-bit
    allocation: str = "fixed"
    #: successive-halving rate: each rung keeps ~1/eta of the field
    bandit_eta: int = 2
    #: samples per arm in the bandit's first (cheapest) rung
    bandit_min_rung: int = 1
    #: fan independent measurements across this many worker processes;
    #: <= 1 keeps everything in-process.  Results are reassembled in
    #: submission order, so reports are bit-identical to a serial run.
    workers: int = 0
    #: persistent content-addressed measurement cache; hits replay the
    #: recorded measurement (including its ``sim_cost``), collapsing the
    #: wall-clock of repeated sweeps without touching ``tuning_cost``
    cache: Optional[MeasurementCache] = None
    #: directory for per-winner Chrome traces: after tuning, each table
    #: entry's chosen configuration is re-run once with the observability
    #: recorder attached and exported as ``<coll>_<bytes>B.json``
    #: (Perfetto-loadable).  Tuning results are unaffected — tracing
    #: never perturbs simulated time.  Empty string disables.
    trace_out: str = ""
    #: cross-run observatory (:class:`~repro.obs.store.RunStore`): every
    #: exhaustive candidate measurement and every traced winner appends a
    #: run summary, so tuning sweeps feed the same regression-checked
    #: history as the experiment drivers (``repro.obs.cli regress``)
    store: Optional[object] = None

    def tune(
        self,
        colls: Sequence[str] = ("bcast", "allreduce"),
        method: str = "task",
    ) -> TuningReport:
        if method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {method!r}")
        report = TuningReport(
            method=method, machine=self.machine.name, table=LookupTable()
        )
        use_heuristics = method.endswith("+h")
        for coll in colls:
            if method.startswith("exhaustive"):
                self._tune_exhaustive(coll, report, use_heuristics)
            else:
                self._tune_task_based(coll, report, use_heuristics)
        if self.trace_out:
            self._trace_winners(report)
        return report

    def _trace_winners(self, report: TuningReport) -> None:
        """Record one observed run per lookup-table entry."""
        import os

        os.makedirs(self.trace_out, exist_ok=True)
        for (coll, n, p, m), cfg in sorted(report.table.entries.items()):
            path = os.path.join(self.trace_out, f"{coll}_{int(m)}B.json")
            measure_collective(
                self.machine, coll, m, cfg, profile=self.profile,
                trace_out=path,
                store=self.store, store_source="autotuner.winner",
            )

    # -- exhaustive -----------------------------------------------------------------

    def _tune_exhaustive(
        self, coll: str, report: TuningReport, heuristics: bool
    ) -> None:
        if self.selection not in ("best", "confident"):
            raise ValueError(
                f"selection must be 'best' or 'confident', got {self.selection!r}"
            )
        if self.allocation not in ALLOCATIONS:
            raise ValueError(
                f"allocation must be one of {ALLOCATIONS}, got {self.allocation!r}"
            )
        n = self.machine.num_nodes
        all_configs = self.space.configs()
        # Enumerate every (message, config) point up front, in the same
        # nested order a serial loop would visit, with a running
        # realization counter: every candidate owns a private window of
        # `trials` noise/traffic realizations, so no two configurations
        # are (un)lucky in the same way — and a re-run of tune() replays
        # the exact same sequence.  Both allocators draw from these same
        # windows; the bandit just stops early inside them.
        trial_offset = 0
        per_message: list[tuple[float, list[HanConfig], list[int]]] = []
        for m in self.space.messages:
            configs = (
                prune_configs(all_configs, nbytes=m, num_nodes=n)
                if heuristics
                else all_configs
            )
            if not configs:
                # heuristics can empty the space for tiny messages (every
                # fs >= m); fall back to the message-independent prune
                configs = prune_configs(all_configs) or all_configs
            bases = list(range(trial_offset, trial_offset + len(configs) * self.trials,
                               self.trials))
            trial_offset += len(configs) * self.trials
            per_message.append((m, configs, bases))
        if self.allocation == "bandit":
            self._allocate_bandit(coll, report, per_message)
        else:
            self._allocate_fixed(coll, report, per_message)

    def _point(self, coll, m, cfg, trials, trial_offset) -> MeasurePoint:
        return MeasurePoint(
            machine=self.machine,
            coll=coll,
            nbytes=m,
            config=cfg,
            profile=self.profile,
            fault_plan=self.fault_plan,
            traffic_plan=self.traffic_plan,
            trials=trials,
            trial_offset=trial_offset,
        )

    def _fold(self, report: TuningReport, meas, cfg: HanConfig) -> None:
        report.tuning_cost += meas.sim_cost * self.bench_iters
        report.searches += 1
        report.trials_spent += len(meas.trial_times) or 1
        if self.store is not None:
            from repro.obs.store import summarize_measurement
            from repro.tuning.measure import resolve_plan, resolve_traffic

            self.store.append(summarize_measurement(
                self.machine, meas, source="autotuner.exhaustive",
                plan=resolve_plan(self.fault_plan, cfg),
                traffic=resolve_traffic(self.traffic_plan, cfg),
            ))

    def _allocate_fixed(self, coll, report, per_message) -> None:
        """Classic path: every candidate gets the full ``trials`` budget."""
        n, p = self.machine.num_nodes, self.machine.ppn
        points = [
            self._point(coll, m, cfg, self.trials, base)
            for m, configs, bases in per_message
            for cfg, base in zip(configs, bases)
        ]
        measurements = iter(run_cached(points, workers=self.workers, cache=self.cache))
        for m, configs, _bases in per_message:
            cands = []
            scores = []
            for cfg in configs:
                meas = next(measurements)
                self._fold(report, meas, cfg)
                cands.append((cfg, meas.time))
                score = meas.time
                if self.selection == "confident":
                    score += meas.spread
                scores.append((score, meas.time, cfg))
            report.candidates[(coll, m)] = cands
            _, _, best_cfg = min(scores, key=lambda sv: (sv[0], sv[1]))
            report.table.put(coll, n, p, m, best_cfg)

    def _allocate_bandit(self, coll, report, per_message) -> None:
        """Successive halving per message size (candidates = arms).

        Each rung's sample requests become one ``run_cached`` batch, so
        the bandit keeps the fixed path's parallel fan-out and cache
        reuse; requests index into the same per-candidate trial windows,
        so the realizations a sample sees match the fixed path's.
        """
        n, p = self.machine.num_nodes, self.machine.ppn
        allocator = BanditAllocator(
            trials=self.trials,
            eta=self.bandit_eta,
            min_rung=self.bandit_min_rung,
            selection=self.selection,
        )
        for m, configs, bases in per_message:

            def sample(requests):
                pts = [
                    self._point(coll, m, configs[i], count, bases[i] + start)
                    for i, start, count in requests
                ]
                measured = run_cached(pts, workers=self.workers, cache=self.cache)
                for (i, _start, _count), meas in zip(requests, measured):
                    self._fold(report, meas, configs[i])
                return [meas.trial_times for meas in measured]

            result = allocator.run(len(configs), sample)
            report.candidates[(coll, m)] = [
                (cfg, result.center(i)) for i, cfg in enumerate(configs)
            ]
            report.table.put(coll, n, p, m, configs[result.winner])

    # -- task-based (the paper's method) ---------------------------------------------

    def _axis_points(self, heuristics: bool) -> list[tuple[float, dict, str]]:
        """(seg_bytes, algorithm axis point, smod) to benchmark."""
        segs = [s for s in self.space.seg_sizes if s is not None]
        if not segs:
            raise ValueError("task-based tuning needs at least one segment size")
        points = []
        for s in segs:
            for algo in self.space.algorithm_axis():
                for smod in self.space.smods:
                    cfg = HanConfig(fs=s, smod=smod, **algo)
                    if heuristics and not prune_configs([cfg]):
                        continue
                    points.append((s, algo, smod))
        return points

    def _tune_task_based(
        self, coll: str, report: TuningReport, heuristics: bool
    ) -> None:
        n, p = self.machine.num_nodes, self.machine.ppn
        if coll not in ("bcast", "allreduce", "reduce"):
            raise ValueError(f"task-based tuning not defined for {coll!r}")
        # 1) benchmark tasks once per (segment, algorithm, smod); each
        # point runs on a fresh simulated machine, so they fan out
        # across workers / resolve from the cache independently
        axis = self._axis_points(heuristics)
        points = [
            TaskPoint(
                machine=self.machine,
                coll=coll,
                config=HanConfig(fs=s, smod=smod, **algo),
                seg_bytes=s,
                warm_iters=self.warm_iters,
                profile=self.profile,
            )
            for s, algo, smod in axis
        ]
        results = run_cached(points, workers=self.workers, cache=self.cache)
        costs: dict[tuple, object] = {}
        for (s, algo, smod), task_costs in zip(axis, results):
            costs[(s, tuple(sorted(algo.items())), smod)] = task_costs
            report.searches += 1
            report.tuning_cost += task_costs.sim_cost * self.bench_iters

        estimator = {
            "bcast": estimate_bcast,
            "allreduce": estimate_allreduce,
            "reduce": estimate_reduce,
        }[coll]

        # 2) estimate every message size from the cached task costs
        for m in self.space.messages:
            cands = []
            for (s, algo_key, smod), task_costs in costs.items():
                cfg = HanConfig(fs=s, smod=smod, **dict(algo_key))
                if heuristics:
                    if not prune_configs([cfg], nbytes=m, num_nodes=n):
                        continue
                if segments_for(m, s) == 1:
                    # unsegmented: reuse the bench whose segment is
                    # closest to the whole message
                    s_star = self._closest_seg(costs, algo_key, smod, m)
                    if s_star != s:
                        continue  # only the closest representative counts
                est = estimator(task_costs, m)
                cands.append((cfg, est))
            if not cands:
                # heuristics pruned everything (tiny message): fall back
                # to the unpruned estimates
                for (s, algo_key, smod), task_costs in costs.items():
                    cfg = HanConfig(fs=s, smod=smod, **dict(algo_key))
                    cands.append((cfg, estimator(task_costs, m)))
            report.candidates[(coll, m)] = cands
            best_cfg, _ = min(cands, key=lambda cv: cv[1])
            report.table.put(coll, n, p, m, best_cfg)

    @staticmethod
    def _closest_seg(costs, algo_key, smod, m) -> float:
        segs = [s for (s, a, sm) in costs if a == algo_key and sm == smod]
        return min(segs, key=lambda s: abs(math.log2(s) - math.log2(max(m, 1))))

    # -- model validation (Figs 4 and 7) ----------------------------------------------

    def validate_model(
        self, coll: str, m: float, heuristics: bool = False
    ) -> list[tuple[HanConfig, float, float]]:
        """(config, estimated, measured) for every config at one message.

        This regenerates the data behind Fig 4 (bcast) / Fig 7
        (allreduce): the estimated-vs-actual bars across submodule,
        algorithm and segment-size combinations.
        """
        n = self.machine.num_nodes
        bench = TaskBench(
            self.machine, profile=self.profile, warm_iters=self.warm_iters
        )
        estimator = {
            "bcast": estimate_bcast,
            "allreduce": estimate_allreduce,
            "reduce": estimate_reduce,
        }[coll]
        rows = []
        for s, algo, smod in self._axis_points(heuristics):
            cfg = HanConfig(fs=s, smod=smod, **algo)
            if heuristics and not prune_configs([cfg], nbytes=m, num_nodes=n):
                continue
            bench_fn = {
                "bcast": bench.bench_bcast_tasks,
                "allreduce": bench.bench_allreduce_tasks,
                "reduce": bench.bench_reduce_tasks,
            }[coll]
            task_costs = bench_fn(cfg, s)
            est = estimator(task_costs, m)
            meas = measure_collective(
                self.machine, coll, m, cfg, profile=self.profile
            )
            rows.append((cfg, est, meas.time))
        return rows
