"""Process-pool fan-out for independent tuning work.

Every point of the tuning search — one full-collective measurement or
one TaskBench axis point — simulates a *fresh* machine, so points are
embarrassingly parallel.  This module fans them out across worker
processes while keeping the results **deterministic**: results are
reassembled by submission index, never by completion order, so a
parallel run is bit-identical to a serial run of the same point list.

Two point types implement a tiny protocol (``run`` / ``cache_key`` /
``to_doc`` / ``from_doc``); :func:`run_cached` composes them with the
:class:`~repro.tuning.cache.MeasurementCache`: cache hits are resolved
in the parent (no file races between workers), only misses are shipped
to the pool, and fresh results are written back before returning.

``workers <= 1`` degrades to the plain in-process loop — the zero-
dependency fallback path used by tests and by environments where
``ProcessPoolExecutor`` is unavailable or unwanted.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import HanConfig
from repro.faults.plan import FaultPlan
from repro.hardware.spec import MachineSpec
from repro.netsim.profiles import P2PProfile
from repro.tenancy.plan import TrafficPlan
from repro.tuning.cache import MeasurementCache, digest
from repro.tuning.measure import (
    CollectiveMeasurement,
    measure_collective,
    measurement_from_doc,
    measurement_key,
    measurement_to_doc,
    resolve_plan,
    resolve_traffic,
)
from repro.tuning.taskbench import TaskBench, costs_from_doc, costs_to_doc

__all__ = [
    "MeasurePoint",
    "TaskPoint",
    "effective_workers",
    "parallel_map",
    "run_cached",
]


@dataclass(frozen=True)
class MeasurePoint:
    """One ``measure_collective`` invocation, picklable for the pool."""

    machine: MachineSpec
    coll: str
    nbytes: float
    config: HanConfig
    root: int = 0
    iterations: int = 1
    profile: Optional[P2PProfile] = None
    fault_plan: Optional[FaultPlan] = None
    traffic_plan: Optional[TrafficPlan] = None
    trials: int = 1
    trial_offset: int = 0
    aggregate: str = "median"

    def run(self) -> CollectiveMeasurement:
        return measure_collective(
            self.machine,
            self.coll,
            self.nbytes,
            self.config,
            root=self.root,
            iterations=self.iterations,
            profile=self.profile,
            fault_plan=self.fault_plan,
            traffic_plan=self.traffic_plan,
            trials=self.trials,
            trial_offset=self.trial_offset,
            aggregate=self.aggregate,
        )

    def cache_key(self) -> str:
        return measurement_key(
            self.machine,
            self.coll,
            self.nbytes,
            self.config,
            self.root,
            self.iterations,
            self.profile,
            resolve_plan(self.fault_plan, self.config),
            self.trials,
            self.trial_offset,
            self.aggregate,
            traffic=resolve_traffic(self.traffic_plan, self.config),
        )

    @staticmethod
    def to_doc(result: CollectiveMeasurement) -> dict:
        return measurement_to_doc(result)

    @staticmethod
    def from_doc(doc: dict) -> CollectiveMeasurement:
        return measurement_from_doc(doc)


@dataclass(frozen=True)
class TaskPoint:
    """One TaskBench axis point (segment size x algorithm x smod)."""

    machine: MachineSpec
    coll: str
    config: HanConfig
    seg_bytes: float
    warm_iters: int = 8
    profile: Optional[P2PProfile] = None

    def run(self):
        bench = TaskBench(
            self.machine, profile=self.profile, warm_iters=self.warm_iters
        )
        fn = {
            "bcast": bench.bench_bcast_tasks,
            "allreduce": bench.bench_allreduce_tasks,
            "reduce": bench.bench_reduce_tasks,
        }.get(self.coll)
        if fn is None:
            raise ValueError(f"task-based tuning not defined for {self.coll!r}")
        return fn(self.config, self.seg_bytes)

    def cache_key(self) -> str:
        return digest(
            "taskbench",
            machine=self.machine,
            coll=self.coll,
            config=list(self.config.key()),
            seg_bytes=float(self.seg_bytes),
            warm_iters=int(self.warm_iters),
            profile=self.profile,
        )

    @staticmethod
    def to_doc(result) -> dict:
        return costs_to_doc(result)

    @staticmethod
    def from_doc(doc: dict):
        return costs_from_doc(doc)


def _run_point(point):
    """Module-level trampoline so points pickle cleanly into the pool."""
    return point.run()


def effective_workers(workers: int, npoints: int, cap_to_cores: bool = True) -> int:
    """Pool size actually used for ``workers`` requested over ``npoints``.

    Points are CPU-bound simulations, so oversubscribing the machine
    only adds context-switch and IPC overhead; the request is capped at
    the visible core count (``cap_to_cores=False`` lifts that, for tests
    that must exercise the pool regardless of the host).
    """
    w = min(workers, npoints)
    if cap_to_cores:
        w = min(w, os.cpu_count() or 1)
    return max(w, 0)


def parallel_map(
    points: Sequence, workers: int = 0, cap_to_cores: bool = True
) -> list:
    """``[p.run() for p in points]``, fanned out over ``workers`` processes.

    Results come back in submission order regardless of completion
    order.  An effective pool of <= 1 (requested serial, a single
    point, or a single-core host) runs serially in process — the
    zero-dependency fallback path, bit-identical by construction.
    """
    points = list(points)
    w = effective_workers(workers, len(points), cap_to_cores)
    if w <= 1:
        return [p.run() for p in points]
    # chunked dispatch amortizes pickling/IPC; ~4 chunks per worker
    # keeps the tail balanced even when point costs vary with nbytes
    chunk = max(1, math.ceil(len(points) / (w * 4)))
    with ProcessPoolExecutor(max_workers=w) as pool:
        return list(pool.map(_run_point, points, chunksize=chunk))


def run_cached(
    points: Sequence,
    workers: int = 0,
    cache: Optional[MeasurementCache] = None,
    cap_to_cores: bool = True,
) -> list:
    """Resolve every point, via the cache where possible, misses in parallel.

    The returned list is index-aligned with ``points``; mixing hits and
    misses cannot reorder anything, so downstream fold order (candidate
    lists, tuning-cost sums) is identical to a cache-less serial run.
    """
    points = list(points)
    results: list = [None] * len(points)
    miss_idx: list[int] = []
    keys: list[Optional[str]] = [None] * len(points)
    if cache is not None:
        for i, p in enumerate(points):
            keys[i] = p.cache_key()
            doc = cache.get(keys[i])
            if doc is not None:
                results[i] = p.from_doc(doc)
            else:
                miss_idx.append(i)
    else:
        miss_idx = list(range(len(points)))
    fresh = parallel_map(
        [points[i] for i in miss_idx], workers=workers, cap_to_cores=cap_to_cores
    )
    for i, result in zip(miss_idx, fresh):
        results[i] = result
        if cache is not None:
            cache.put(keys[i], points[i].to_doc(result))
    return results
