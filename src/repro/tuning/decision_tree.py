"""Compact decision encodings for the runtime lookup (paper III-C step 2).

The paper notes that step 2 -- turning the sampled lookup table into a
decision procedure for arbitrary inputs -- has been studied through
quadtree encodings [35] and decision trees [36].  This module implements
an interval decision list: per (collective, n, p), adjacent message-size
samples that chose the same configuration are merged into half-open
intervals, typically compressing the table severalfold while answering
queries in O(log |intervals|) with zero accuracy loss on the samples.
"""

from __future__ import annotations

import bisect
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import HanConfig
from repro.tuning.lookup import LookupTable, _cfg_to_dict

__all__ = ["DecisionRules", "compile_rules"]


@dataclass(frozen=True)
class _Band:
    """One (t, n, p) leaf: message intervals -> configs."""

    #: ascending interval upper bounds (bytes); the last is +inf
    uppers: tuple[float, ...]
    configs: tuple[HanConfig, ...]

    def decide(self, m: float) -> HanConfig:
        i = bisect.bisect_left(self.uppers, m)
        i = min(i, len(self.configs) - 1)
        return self.configs[i]


@dataclass
class DecisionRules:
    """A compiled lookup table: geometry leaves of message intervals."""

    bands: dict = field(default_factory=dict)  # (t, n, p) -> _Band
    source_entries: int = 0

    # -- queries -------------------------------------------------------------

    def decide(self, n: int, p: int, m: float, t: str) -> HanConfig:
        """Same signature as :meth:`LookupTable.decide`."""
        keys = [k for k in self.bands if k[0] == t]
        if not keys:
            from repro.core.han import HanModule

            return HanModule.default_config(m)
        best = min(
            keys,
            key=lambda k: abs(math.log2(max(k[1], 1)) - math.log2(max(n, 1)))
            + abs(math.log2(max(k[2], 1)) - math.log2(max(p, 1))),
        )
        return self.bands[best].decide(m)

    def as_decision_fn(self):
        return self.decide

    @property
    def num_rules(self) -> int:
        return sum(len(b.configs) for b in self.bands.values())

    @property
    def compression(self) -> float:
        """Sampled entries per emitted rule (>= 1)."""
        return self.source_entries / max(self.num_rules, 1)

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> None:
        doc = {
            "version": 1,
            "source_entries": self.source_entries,
            "bands": [
                {
                    "t": t,
                    "n": n,
                    "p": p,
                    "uppers": list(band.uppers),
                    "configs": [_cfg_to_dict(c) for c in band.configs],
                }
                for (t, n, p), band in sorted(self.bands.items())
            ],
        }
        Path(path).write_text(json.dumps(doc, indent=1))

    @classmethod
    def load(cls, path) -> "DecisionRules":
        doc = json.loads(Path(path).read_text())
        if doc.get("version") != 1:
            raise ValueError("unsupported decision-rules version")
        rules = cls(source_entries=doc.get("source_entries", 0))
        for b in doc["bands"]:
            rules.bands[(b["t"], b["n"], b["p"])] = _Band(
                uppers=tuple(b["uppers"]),
                configs=tuple(HanConfig(**c) for c in b["configs"]),
            )
        return rules


def compile_rules(table: LookupTable) -> DecisionRules:
    """Merge a sampled :class:`LookupTable` into interval decision rules.

    For each (t, n, p) the message samples are sorted; runs of identical
    configurations collapse into one interval whose upper bound is the
    geometric mean of the boundary samples (the standard split point for
    log-sampled sizes).
    """
    by_geom: dict[tuple, list[tuple[float, HanConfig]]] = {}
    for (t, n, p, m), cfg in table.entries.items():
        by_geom.setdefault((t, n, p), []).append((m, cfg))

    rules = DecisionRules(source_entries=len(table.entries))
    for key, rows in by_geom.items():
        rows.sort()
        uppers: list[float] = []
        configs: list[HanConfig] = []
        for (m, cfg), nxt in zip(rows, rows[1:] + [(math.inf, None)]):
            if configs and cfg == configs[-1]:
                # extend the current interval
                uppers[-1] = (
                    math.inf
                    if nxt[0] is None or math.isinf(nxt[0])
                    else math.sqrt(m * nxt[0])
                )
                continue
            upper = (
                math.inf
                if nxt[0] is None or math.isinf(nxt[0])
                else math.sqrt(m * nxt[0])
            )
            uppers.append(upper)
            configs.append(cfg)
        rules.bands[key] = _Band(uppers=tuple(uppers), configs=tuple(configs))
    return rules
