"""Persistent content-addressed cache for tuning measurements.

The tuning engine's unit of work -- one ``measure_collective`` point or
one ``TaskBench`` axis point -- is a pure function of its declared
inputs: the simulator is deterministic given (machine spec, collective,
message size, configuration, fault-plan realization, iteration counts,
p2p profile).  That purity is what makes the cache sound: the key is a
stable content digest of exactly those inputs, and the value is the full
measurement record, including the *simulated* benchmark seconds it
consumed.

Key contract (also documented in DESIGN.md):

- keys are SHA-256 hex digests of a canonical JSON rendering of the
  inputs plus a schema version (``CACHE_VERSION``) and a ``kind`` tag
  (``"measure"`` / ``"taskbench"``);
- the canonical form recurses through dataclasses *by field*, records
  the class name (two injector types with identical fields never
  collide), sorts dict keys, normalizes tuples to lists and non-finite
  floats to strings -- no ``id()``/``hash()``/address leaks anywhere, so
  the same inputs digest identically in any process on any platform;
- a configuration contributes its *tuning identity* (``HanConfig.key()``
  -- the seed is excluded; it only matters through the already-resolved
  fault plan, which is digested separately);
- the fault-plan realization (resolved seed, injector set, trial
  window) is part of the key only when a plan with injectors is present,
  so noise-free sweeps share entries across experiments that merely
  disagree on trial bookkeeping.

Cache *hits return the recorded measurement verbatim* -- crucially the
recorded ``sim_cost`` -- so ``tuning_cost`` accounting (Fig 8's
currency, simulated benchmark seconds) is bit-identical with or without
the cache; wall-clock time is what the cache eliminates.

Storage is one JSON file per entry under ``<root>/<digest[:2]>/``,
written atomically (tmp + rename) so concurrent tuning runs can share a
cache directory.  A path-less cache is memory-only (useful for sharing
work within one process, e.g. across the four Fig 8 methods).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

__all__ = ["CACHE_VERSION", "MeasurementCache", "canonical", "digest"]

CACHE_VERSION = 1


def canonical(obj):
    """A JSON-safe, process-stable rendering of ``obj`` for digesting.

    Dataclasses are rendered field-by-field with their class name (so
    structurally identical but semantically different types cannot
    collide), mappings get sorted string keys, sequences become lists,
    and non-finite floats become strings (JSON has no ``inf``).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        doc = {"__class__": type(obj).__qualname__}
        for f in dataclasses.fields(obj):
            doc[f.name] = canonical(getattr(obj, f.name))
        return doc
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else repr(obj)
    if hasattr(obj, "item"):  # numpy scalars
        return canonical(obj.item())
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for a cache key; "
        "pass plain data or dataclasses"
    )


def digest(kind: str, **parts) -> str:
    """Stable content digest of one cache entry's inputs."""
    doc = {"__cache_version__": CACHE_VERSION, "__kind__": kind}
    for name, value in parts.items():
        doc[name] = canonical(value)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class MeasurementCache:
    """Content-addressed (digest -> measurement doc) store with stats.

    ``path=None`` keeps entries in memory only; with a path every entry
    is additionally persisted, and lookups fall through to disk, so a
    warm directory survives across processes, experiments and CI runs.
    """

    def __init__(self, path: Optional[os.PathLike] = None):
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        self._mem: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- core mapping ------------------------------------------------------------

    def _file_for(self, key: str) -> Path:
        return self.path / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored doc for ``key``, or None (counted as hit/miss)."""
        doc = self._mem.get(key)
        if doc is None and self.path is not None:
            f = self._file_for(key)
            if f.exists():
                try:
                    doc = json.loads(f.read_text())
                except (OSError, json.JSONDecodeError):
                    doc = None  # torn write from a dead process: treat as miss
                if doc is not None:
                    self._mem[key] = doc
        if doc is None:
            self.misses += 1
            return None
        self.hits += 1
        return doc

    def put(self, key: str, doc: dict) -> None:
        """Store ``doc`` under ``key`` (atomic on-disk when persistent)."""
        self._mem[key] = doc
        self.stores += 1
        if self.path is None:
            return
        f = self._file_for(key)
        f.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=f.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, f)  # atomic publish; racing writers agree on content
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- introspection ------------------------------------------------------------

    def entries(self) -> Iterator[tuple[str, dict]]:
        """Every (key, doc) pair -- on-disk entries included."""
        seen = set()
        if self.path is not None:
            for f in sorted(self.path.glob("*/*.json")):
                key = f.stem
                seen.add(key)
                try:
                    yield key, json.loads(f.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
        for key, doc in self._mem.items():
            if key not in seen:
                yield key, doc

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def stats(self) -> dict:
        """Hit/miss/store counters for this cache handle."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hits / total if total else 0.0,
            "persistent": self.path is not None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path is not None else "memory"
        return f"<MeasurementCache {where} hits={self.hits} misses={self.misses}>"
