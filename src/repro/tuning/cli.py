"""Command-line front end for the tuning engine.

Run, inspect and benchmark HAN autotuning without writing a driver::

    # tune, fanning measurements over 4 worker processes, with a
    # persistent measurement cache (re-runs become near-instant)
    python -m repro.tuning.cli run --machine shaheen2 --nodes 6 --ppn 6 \
        --colls bcast,allreduce --method exhaustive --workers 4 \
        --cache .tuning-cache --out table.json

    # what is in the cache?
    python -m repro.tuning.cli inspect --cache .tuning-cache

    # the serial-cold vs parallel-cold vs warm-cache wall-clock study
    python -m repro.tuning.cli bench --workers 4 --out BENCH_tuning_wallclock.json

    # tune under background tenant load, with successive-halving trials
    python -m repro.tuning.cli run --machine tiny --trials 5 \
        --allocation bandit --traffic-plan allreduce_sweep --traffic-seed 11

    # fixed vs bandit trial budgets on the sensitivity fault plan
    # (emits BENCH_bandit_trials.json; exit 1 if the gates fail)
    python -m repro.tuning.cli bandit --trials 5 --min-savings 0.30

``--no-cache`` disables the cache even when ``--cache`` points at an
existing directory (cold-run comparisons); ``--workers 0`` is the plain
serial path.  Tuning *results* never depend on either knob — only the
wall-clock does.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.faults import FaultPlan, OsNoise
from repro.hardware import MACHINE_PRESETS, small_cluster, tiny_cluster
from repro.tenancy import TRAFFIC_PRESETS, TrafficPlan, load_traffic
from repro.tuning.autotuner import ALLOCATIONS, METHODS, Autotuner
from repro.tuning.cache import MeasurementCache
from repro.tuning.parallel import effective_workers
from repro.tuning.space import SearchSpace

__all__ = ["main"]

KiB, MiB = 1024, 1024 * 1024

# the shared preset registry plus this CLI's historical short names
MACHINES = dict(MACHINE_PRESETS)
MACHINES.update(small=small_cluster, tiny=tiny_cluster)


def _machine(args):
    preset = MACHINES[args.machine]
    mach = preset()
    return mach.scaled(num_nodes=args.nodes or mach.num_nodes,
                       ppn=args.ppn or mach.ppn)


def _space(name: str) -> SearchSpace:
    if name == "small":
        return SearchSpace.small()
    if name == "full":
        return SearchSpace()
    if name == "gpu":  # accelerator nodes: gpu joins the smod axis
        return SearchSpace.gpu()
    if name == "bench":  # the wall-clock study sweep (see cmd_bench)
        return SearchSpace(
            seg_sizes=(256 * KiB, 512 * KiB, 1 * MiB),
            messages=[2.0 ** k for k in range(16, 23)],  # 64KB .. 4MB
            adapt_algorithms=("chain", "binomial"),
            inner_segs=(None,),
        )
    if name == "sens":  # the sensitivity-experiment sweep (see cmd_bandit)
        return SearchSpace(
            seg_sizes=(128 * KiB, 512 * KiB),
            messages=(256 * KiB, 1 * MiB),
            adapt_algorithms=("chain", "binary"),
            inner_segs=(None,),
        )
    raise ValueError(f"unknown space {name!r}")


def _cache(args) -> Optional[MeasurementCache]:
    if getattr(args, "no_cache", False) or not getattr(args, "cache", None):
        return None
    return MeasurementCache(args.cache)


def _traffic(args) -> Optional[TrafficPlan]:
    """``--traffic-plan``: a preset name or a TrafficPlan JSON document."""
    name = getattr(args, "traffic_plan", None)
    if not name:
        return None
    try:
        return load_traffic(name, getattr(args, "traffic_seed", None))
    except ValueError as exc:
        raise SystemExit(f"--traffic-plan: {exc}") from None


# -- run ---------------------------------------------------------------------------


def cmd_run(args) -> int:
    machine = _machine(args)
    cache = _cache(args)
    traffic = _traffic(args)
    tuner = Autotuner(
        machine,
        space=_space(args.space),
        workers=args.workers,
        cache=cache,
        trials=args.trials,
        allocation=args.allocation,
        traffic_plan=traffic,
    )
    colls = tuple(c.strip() for c in args.colls.split(",") if c.strip())
    t0 = time.perf_counter()
    report = tuner.tune(colls=colls, method=args.method)
    wall = time.perf_counter() - t0
    loaded = f"  traffic={args.traffic_plan}" if traffic is not None else ""
    print(
        f"tuned {machine.name} {machine.num_nodes}x{machine.ppn} "
        f"[{args.method}/{args.allocation}] colls={','.join(colls)}{loaded}"
    )
    print(
        f"  searches={report.searches}  trials_spent={report.trials_spent}  "
        f"tuning_cost={report.tuning_cost:.4f} "
        f"simulated-s  wall={wall:.2f}s  workers={args.workers}"
    )
    if cache is not None:
        s = cache.stats()
        print(
            f"  cache: {s['hits']} hits / {s['misses']} misses "
            f"({100 * s['hit_rate']:.0f}% hit rate) at {args.cache}"
        )
    for (t, n, p, m), cfg in sorted(report.table.entries.items()):
        print(f"  {t:>10} n={n} p={p} m={m:>12g}B -> {cfg.describe()}")
    if args.out:
        report.table.save(args.out)
        print(f"  lookup table saved to {args.out}")
    return 0


# -- inspect -----------------------------------------------------------------------


def cmd_inspect(args) -> int:
    path = Path(args.cache)
    if not path.exists():
        print(f"no cache at {path}")
        return 1
    cache = MeasurementCache(path)
    kinds: dict[str, int] = {}
    colls: dict[str, int] = {}
    total = 0
    for key, doc in cache.entries():
        total += 1
        kinds[doc.get("__kind__", "?")] = kinds.get(doc.get("__kind__", "?"), 0) + 1
        c = doc.get("coll") or doc.get("config", {}).get("imod", "?")
        colls[c] = colls.get(c, 0) + 1
        if args.verbose:
            print(f"  {key[:16]}  {doc.get('__kind__'):>9}  "
                  f"coll={doc.get('coll', '-')}  nbytes={doc.get('nbytes', '-')}")
    print(f"cache {path}: {total} entries")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind}: {count}")
    return 0


# -- bench -------------------------------------------------------------------------


def cmd_bench(args) -> int:
    """Serial-cold vs parallel-cold vs warm-cache on one exhaustive sweep.

    This regenerates ``BENCH_tuning_wallclock.json`` — the perf
    trajectory artifact: the same search, three execution strategies,
    plus proof that all three produced bit-identical tuning decisions.
    """
    machine = _machine(args)
    space = _space("bench")
    coll, method = "bcast", "exhaustive"
    traffic = _traffic(args)
    cache_dir = args.cache or tempfile.mkdtemp(prefix="han-tuning-cache-")
    own_tmp = args.cache is None

    def tuned(workers: int, cache: Optional[MeasurementCache], repeat: int = 1):
        # min-of-N: scheduler noise only ever adds time
        best = math.inf
        for _ in range(max(1, repeat)):
            tuner = Autotuner(
                machine, space=space, workers=workers, cache=cache,
                trials=args.trials, allocation=args.allocation,
                traffic_plan=traffic,
            )
            t0 = time.perf_counter()
            report = tuner.tune(colls=(coll,), method=method)
            best = min(best, time.perf_counter() - t0)
        return report, best

    try:
        cores = os.cpu_count() or 1
        print(f"bench sweep: {machine.name} {machine.num_nodes}x{machine.ppn} "
              f"{coll}/{method}, {space.size()} configs x "
              f"{len(space.messages)} messages ({cores} cores)")
        serial, t_serial = tuned(workers=0, cache=None, repeat=args.repeat)
        print(f"  serial-cold:   {t_serial:7.2f}s wall")
        par, t_par = tuned(workers=args.workers, cache=None, repeat=args.repeat)
        print(f"  parallel-cold: {t_par:7.2f}s wall (workers={args.workers})")
        # populate the cache off the clock, then time the warm replay
        tuned(workers=args.workers, cache=MeasurementCache(cache_dir))
        warm_cache = MeasurementCache(cache_dir)
        warm, t_warm = tuned(workers=0, cache=warm_cache, repeat=args.repeat)
        print(f"  warm-cache:    {t_warm:7.2f}s wall "
              f"({warm_cache.stats()['hits']} hits)")

        identical = (
            serial.candidates == par.candidates == warm.candidates
            and serial.table.entries == par.table.entries == warm.table.entries
            and serial.tuning_cost == par.tuning_cost == warm.tuning_cost
        )
        out = {
            "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
            "sweep": {
                "coll": coll,
                "method": method,
                "configs": space.size(),
                "messages": len(space.messages),
                "points": serial.searches,
            },
            "workers": args.workers,
            "repeat": args.repeat,
            "trials": args.trials,
            "allocation": args.allocation,
            "traffic_plan": args.traffic_plan,
            "trials_spent": serial.trials_spent,
            "effective_workers": effective_workers(
                args.workers, serial.searches
            ),
            "cpu_count": cores,
            "wallclock_s": {
                "serial_cold": t_serial,
                "parallel_cold": t_par,
                "warm_cache": t_warm,
            },
            "speedup_vs_serial_cold": {
                "parallel_cold": t_serial / t_par if t_par else float("inf"),
                "warm_cache": t_serial / t_warm if t_warm else float("inf"),
            },
            "tuning_cost_simulated_s": serial.tuning_cost,
            "results_bit_identical": identical,
            "cache": warm_cache.stats(),
        }
        Path(args.out).write_text(json.dumps(out, indent=1))
        print(f"\nparallel-cold {out['speedup_vs_serial_cold']['parallel_cold']:.2f}x, "
              f"warm-cache {out['speedup_vs_serial_cold']['warm_cache']:.2f}x "
              f"vs serial-cold; results identical: {identical}")
        print(f"written to {args.out}")
        return 0 if identical else 1
    finally:
        if own_tmp:
            shutil.rmtree(cache_dir, ignore_errors=True)


# -- bandit ------------------------------------------------------------------------


def cmd_bandit(args) -> int:
    """Fixed vs successive-halving trial budgets on the sensitivity scenario.

    Regenerates ``BENCH_bandit_trials.json``: the same noisy exhaustive
    search run with ``allocation="fixed"`` and ``allocation="bandit"``,
    each pick scored against the noise-free ground-truth winner.  Exit
    code gates (for CI): the bandit must save at least ``--min-savings``
    of the fixed trial budget *and* agree with the truth winner at least
    as often as the fixed path does.
    """
    machine = _machine(args)
    space = _space(args.space)
    colls = tuple(c.strip() for c in args.colls.split(",") if c.strip())
    plan = FaultPlan(seed=args.seed).add(
        OsNoise(amplitude=args.amplitude, prob=args.straggler_prob)
    )
    traffic = _traffic(args)
    print(
        f"bandit study: {machine.name} {machine.num_nodes}x{machine.ppn} "
        f"colls={','.join(colls)} trials={args.trials} "
        f"noise=OsNoise(amplitude={args.amplitude}, prob={args.straggler_prob}) "
        f"seed={args.seed}"
    )

    truth = Autotuner(machine, space=space).tune(colls=colls, method="exhaustive")

    def tune(allocation: str):
        tuner = Autotuner(
            machine, space=space, trials=args.trials, fault_plan=plan,
            traffic_plan=traffic, selection="confident", allocation=allocation,
        )
        t0 = time.perf_counter()
        report = tuner.tune(colls=colls, method="exhaustive")
        return report, time.perf_counter() - t0

    fixed, t_fixed = tune("fixed")
    bandit, t_bandit = tune("bandit")

    keys = sorted(truth.table.entries)
    agree = {"fixed": 0, "bandit": 0}
    for key in keys:
        best = truth.table.entries[key]
        agree["fixed"] += fixed.table.entries[key] == best
        agree["bandit"] += bandit.table.entries[key] == best
    savings = 1.0 - bandit.trials_spent / fixed.trials_spent
    savings_ok = savings >= args.min_savings
    agreement_ok = agree["bandit"] >= agree["fixed"]
    ok = savings_ok and agreement_ok

    print(f"  fixed:  {fixed.trials_spent:4d} trials  "
          f"truth-agreement {agree['fixed']}/{len(keys)}  "
          f"wall={t_fixed:.2f}s")
    print(f"  bandit: {bandit.trials_spent:4d} trials  "
          f"truth-agreement {agree['bandit']}/{len(keys)}  "
          f"wall={t_bandit:.2f}s")
    print(f"  savings: {100 * savings:.1f}% "
          f"(gate >= {100 * args.min_savings:.0f}%)  "
          f"agreement no worse: {agreement_ok}")

    out = {
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "scenario": {
            "seed": args.seed,
            "amplitude": args.amplitude,
            "straggler_prob": args.straggler_prob,
            "trials": args.trials,
            "selection": "confident",
            "space": args.space,
            "colls": list(colls),
            "traffic_plan": args.traffic_plan,
        },
        "entries": len(keys),
        "trials_spent": {
            "fixed": fixed.trials_spent,
            "bandit": bandit.trials_spent,
        },
        "savings_pct": 100.0 * savings,
        "truth_agreement": dict(agree),
        "winners_match_fixed": bandit.table.entries == fixed.table.entries,
        "tuning_cost_simulated_s": {
            "fixed": fixed.tuning_cost,
            "bandit": bandit.tuning_cost,
        },
        "wallclock_s": {"fixed": t_fixed, "bandit": t_bandit},
        "gates": {
            "min_savings_pct": 100.0 * args.min_savings,
            "savings_ok": savings_ok,
            "agreement_ok": agreement_ok,
        },
        "passed": ok,
    }
    Path(args.out).write_text(json.dumps(out, indent=1))
    print(f"written to {args.out}")
    return 0 if ok else 1


# -- entry point -------------------------------------------------------------------


def _add_machine_args(p: argparse.ArgumentParser, nodes=6, ppn=6) -> None:
    p.add_argument("--machine", choices=sorted(MACHINES), default="shaheen2",
                   help="machine preset; gpu_cluster = flat-NVLink GPU "
                        "nodes, gpu_pod = split-NVLink GPU pods (two "
                        "fabric islands per node bridged over PCIe/host)")
    p.add_argument("--nodes", type=int, default=nodes,
                   help="node count (default: preset geometry)")
    p.add_argument("--ppn", type=int, default=ppn,
                   help="processes per node (default: preset geometry)")


def _add_allocation_args(p: argparse.ArgumentParser, trials=1) -> None:
    p.add_argument("--trials", type=int, default=trials,
                   help="measurement repetitions per configuration")
    p.add_argument("--allocation", choices=ALLOCATIONS, default="fixed",
                   help="trial budget strategy (bandit = successive halving)")
    p.add_argument("--traffic-plan", default=None,
                   help="background tenants while measuring: a preset name "
                        f"({', '.join(sorted(TRAFFIC_PRESETS))}) or a "
                        "TrafficPlan JSON file")
    p.add_argument("--traffic-seed", type=int, default=None,
                   help="override the traffic plan's seed")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one autotuning search")
    _add_machine_args(p_run, nodes=None, ppn=None)
    p_run.add_argument("--colls", default="bcast,allreduce",
                       help="comma-separated collectives")
    p_run.add_argument("--method", choices=METHODS, default="task")
    p_run.add_argument("--space",
                       choices=("small", "full", "gpu", "bench", "sens"),
                       default="small",
                       help="configuration space: small (fast subset), "
                            "full (paper Tables I-II), gpu (adds the gpu "
                            "intra module for accelerator presets such as "
                            "gpu_cluster/gpu_pod; on gpu_pod's split-NVLink "
                            "nodes smod=gpu engages the fabric tier), "
                            "bench/sens (experiment sweeps)")
    p_run.add_argument("--workers", type=int, default=0,
                       help="measurement worker processes (0 = serial)")
    _add_allocation_args(p_run)
    p_run.add_argument("--cache", default=None,
                       help="persistent measurement cache directory")
    p_run.add_argument("--no-cache", action="store_true",
                       help="force a cold run even if --cache exists")
    p_run.add_argument("--out", default=None,
                       help="save the lookup table to this JSON file")
    p_run.set_defaults(fn=cmd_run)

    p_ins = sub.add_parser("inspect", help="show cache contents and stats")
    p_ins.add_argument("--cache", required=True)
    p_ins.add_argument("-v", "--verbose", action="store_true")
    p_ins.set_defaults(fn=cmd_inspect)

    p_bench = sub.add_parser(
        "bench", help="serial-cold vs parallel-cold vs warm-cache wall-clock"
    )
    _add_machine_args(p_bench)
    p_bench.add_argument("--workers", type=int, default=4)
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="runs per strategy; wall-clock is the min")
    p_bench.add_argument("--cache", default=None,
                         help="cache directory to (re)use; default: temp dir")
    p_bench.add_argument("--out", default="BENCH_tuning_wallclock.json")
    _add_allocation_args(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_ban = sub.add_parser(
        "bandit", help="fixed vs successive-halving trial budgets "
                       "(emits BENCH_bandit_trials.json, gated exit code)"
    )
    _add_machine_args(p_ban, nodes=4, ppn=4)
    p_ban.add_argument("--colls", default="bcast,allreduce",
                       help="comma-separated collectives")
    p_ban.add_argument("--space",
                       choices=("small", "full", "gpu", "bench", "sens"),
                       default="sens")
    p_ban.add_argument("--seed", type=int, default=2026,
                       help="fault-plan seed (the sensitivity experiment's)")
    p_ban.add_argument("--amplitude", type=float, default=0.5,
                       help="OsNoise amplitude")
    p_ban.add_argument("--straggler-prob", type=float, default=0.02,
                       help="per-rank straggler probability")
    p_ban.add_argument("--trials", type=int, default=5,
                       help="fixed-path trials per configuration (bandit "
                            "budget ceiling)")
    p_ban.add_argument("--traffic-plan", default=None,
                       help="background tenants while measuring (preset name "
                            "or TrafficPlan JSON file)")
    p_ban.add_argument("--traffic-seed", type=int, default=None,
                       help="override the traffic plan's seed")
    p_ban.add_argument("--min-savings", type=float, default=0.30,
                       help="gate: bandit must save this fraction of the "
                            "fixed trial budget")
    p_ban.add_argument("--out", default="BENCH_bandit_trials.json")
    p_ban.set_defaults(fn=cmd_bandit)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
