"""Command-line front end for the tuning engine.

Run, inspect and benchmark HAN autotuning without writing a driver::

    # tune, fanning measurements over 4 worker processes, with a
    # persistent measurement cache (re-runs become near-instant)
    python -m repro.tuning.cli run --machine shaheen2 --nodes 6 --ppn 6 \
        --colls bcast,allreduce --method exhaustive --workers 4 \
        --cache .tuning-cache --out table.json

    # what is in the cache?
    python -m repro.tuning.cli inspect --cache .tuning-cache

    # the serial-cold vs parallel-cold vs warm-cache wall-clock study
    python -m repro.tuning.cli bench --workers 4 --out BENCH_tuning_wallclock.json

``--no-cache`` disables the cache even when ``--cache`` points at an
existing directory (cold-run comparisons); ``--workers 0`` is the plain
serial path.  Tuning *results* never depend on either knob — only the
wall-clock does.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.hardware import MACHINE_PRESETS, small_cluster, tiny_cluster
from repro.tuning.autotuner import METHODS, Autotuner
from repro.tuning.cache import MeasurementCache
from repro.tuning.parallel import effective_workers
from repro.tuning.space import SearchSpace

__all__ = ["main"]

KiB, MiB = 1024, 1024 * 1024

# the shared preset registry plus this CLI's historical short names
MACHINES = dict(MACHINE_PRESETS)
MACHINES.update(small=small_cluster, tiny=tiny_cluster)


def _machine(args):
    preset = MACHINES[args.machine]
    mach = preset()
    return mach.scaled(num_nodes=args.nodes or mach.num_nodes,
                       ppn=args.ppn or mach.ppn)


def _space(name: str) -> SearchSpace:
    if name == "small":
        return SearchSpace.small()
    if name == "full":
        return SearchSpace()
    if name == "bench":  # the wall-clock study sweep (see cmd_bench)
        return SearchSpace(
            seg_sizes=(256 * KiB, 512 * KiB, 1 * MiB),
            messages=[2.0 ** k for k in range(16, 23)],  # 64KB .. 4MB
            adapt_algorithms=("chain", "binomial"),
            inner_segs=(None,),
        )
    raise ValueError(f"unknown space {name!r}")


def _cache(args) -> Optional[MeasurementCache]:
    if getattr(args, "no_cache", False) or not getattr(args, "cache", None):
        return None
    return MeasurementCache(args.cache)


# -- run ---------------------------------------------------------------------------


def cmd_run(args) -> int:
    machine = _machine(args)
    cache = _cache(args)
    tuner = Autotuner(
        machine,
        space=_space(args.space),
        workers=args.workers,
        cache=cache,
    )
    colls = tuple(c.strip() for c in args.colls.split(",") if c.strip())
    t0 = time.perf_counter()
    report = tuner.tune(colls=colls, method=args.method)
    wall = time.perf_counter() - t0
    print(
        f"tuned {machine.name} {machine.num_nodes}x{machine.ppn} "
        f"[{args.method}] colls={','.join(colls)}"
    )
    print(
        f"  searches={report.searches}  tuning_cost={report.tuning_cost:.4f} "
        f"simulated-s  wall={wall:.2f}s  workers={args.workers}"
    )
    if cache is not None:
        s = cache.stats()
        print(
            f"  cache: {s['hits']} hits / {s['misses']} misses "
            f"({100 * s['hit_rate']:.0f}% hit rate) at {args.cache}"
        )
    for (t, n, p, m), cfg in sorted(report.table.entries.items()):
        print(f"  {t:>10} n={n} p={p} m={m:>12g}B -> {cfg.describe()}")
    if args.out:
        report.table.save(args.out)
        print(f"  lookup table saved to {args.out}")
    return 0


# -- inspect -----------------------------------------------------------------------


def cmd_inspect(args) -> int:
    path = Path(args.cache)
    if not path.exists():
        print(f"no cache at {path}")
        return 1
    cache = MeasurementCache(path)
    kinds: dict[str, int] = {}
    colls: dict[str, int] = {}
    total = 0
    for key, doc in cache.entries():
        total += 1
        kinds[doc.get("__kind__", "?")] = kinds.get(doc.get("__kind__", "?"), 0) + 1
        c = doc.get("coll") or doc.get("config", {}).get("imod", "?")
        colls[c] = colls.get(c, 0) + 1
        if args.verbose:
            print(f"  {key[:16]}  {doc.get('__kind__'):>9}  "
                  f"coll={doc.get('coll', '-')}  nbytes={doc.get('nbytes', '-')}")
    print(f"cache {path}: {total} entries")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind}: {count}")
    return 0


# -- bench -------------------------------------------------------------------------


def cmd_bench(args) -> int:
    """Serial-cold vs parallel-cold vs warm-cache on one exhaustive sweep.

    This regenerates ``BENCH_tuning_wallclock.json`` — the perf
    trajectory artifact: the same search, three execution strategies,
    plus proof that all three produced bit-identical tuning decisions.
    """
    machine = _machine(args)
    space = _space("bench")
    coll, method = "bcast", "exhaustive"
    cache_dir = args.cache or tempfile.mkdtemp(prefix="han-tuning-cache-")
    own_tmp = args.cache is None

    def tuned(workers: int, cache: Optional[MeasurementCache], repeat: int = 1):
        # min-of-N: scheduler noise only ever adds time
        best = math.inf
        for _ in range(max(1, repeat)):
            tuner = Autotuner(machine, space=space, workers=workers, cache=cache)
            t0 = time.perf_counter()
            report = tuner.tune(colls=(coll,), method=method)
            best = min(best, time.perf_counter() - t0)
        return report, best

    try:
        cores = os.cpu_count() or 1
        print(f"bench sweep: {machine.name} {machine.num_nodes}x{machine.ppn} "
              f"{coll}/{method}, {space.size()} configs x "
              f"{len(space.messages)} messages ({cores} cores)")
        serial, t_serial = tuned(workers=0, cache=None, repeat=args.repeat)
        print(f"  serial-cold:   {t_serial:7.2f}s wall")
        par, t_par = tuned(workers=args.workers, cache=None, repeat=args.repeat)
        print(f"  parallel-cold: {t_par:7.2f}s wall (workers={args.workers})")
        # populate the cache off the clock, then time the warm replay
        tuned(workers=args.workers, cache=MeasurementCache(cache_dir))
        warm_cache = MeasurementCache(cache_dir)
        warm, t_warm = tuned(workers=0, cache=warm_cache, repeat=args.repeat)
        print(f"  warm-cache:    {t_warm:7.2f}s wall "
              f"({warm_cache.stats()['hits']} hits)")

        identical = (
            serial.candidates == par.candidates == warm.candidates
            and serial.table.entries == par.table.entries == warm.table.entries
            and serial.tuning_cost == par.tuning_cost == warm.tuning_cost
        )
        out = {
            "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
            "sweep": {
                "coll": coll,
                "method": method,
                "configs": space.size(),
                "messages": len(space.messages),
                "points": serial.searches,
            },
            "workers": args.workers,
            "repeat": args.repeat,
            "effective_workers": effective_workers(
                args.workers, serial.searches
            ),
            "cpu_count": cores,
            "wallclock_s": {
                "serial_cold": t_serial,
                "parallel_cold": t_par,
                "warm_cache": t_warm,
            },
            "speedup_vs_serial_cold": {
                "parallel_cold": t_serial / t_par if t_par else float("inf"),
                "warm_cache": t_serial / t_warm if t_warm else float("inf"),
            },
            "tuning_cost_simulated_s": serial.tuning_cost,
            "results_bit_identical": identical,
            "cache": warm_cache.stats(),
        }
        Path(args.out).write_text(json.dumps(out, indent=1))
        print(f"\nparallel-cold {out['speedup_vs_serial_cold']['parallel_cold']:.2f}x, "
              f"warm-cache {out['speedup_vs_serial_cold']['warm_cache']:.2f}x "
              f"vs serial-cold; results identical: {identical}")
        print(f"written to {args.out}")
        return 0 if identical else 1
    finally:
        if own_tmp:
            shutil.rmtree(cache_dir, ignore_errors=True)


# -- entry point -------------------------------------------------------------------


def _add_machine_args(p: argparse.ArgumentParser, nodes=6, ppn=6) -> None:
    p.add_argument("--machine", choices=sorted(MACHINES), default="shaheen2")
    p.add_argument("--nodes", type=int, default=nodes,
                   help="node count (default: preset geometry)")
    p.add_argument("--ppn", type=int, default=ppn,
                   help="processes per node (default: preset geometry)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one autotuning search")
    _add_machine_args(p_run, nodes=None, ppn=None)
    p_run.add_argument("--colls", default="bcast,allreduce",
                       help="comma-separated collectives")
    p_run.add_argument("--method", choices=METHODS, default="task")
    p_run.add_argument("--space", choices=("small", "full", "bench"),
                       default="small")
    p_run.add_argument("--workers", type=int, default=0,
                       help="measurement worker processes (0 = serial)")
    p_run.add_argument("--cache", default=None,
                       help="persistent measurement cache directory")
    p_run.add_argument("--no-cache", action="store_true",
                       help="force a cold run even if --cache exists")
    p_run.add_argument("--out", default=None,
                       help="save the lookup table to this JSON file")
    p_run.set_defaults(fn=cmd_run)

    p_ins = sub.add_parser("inspect", help="show cache contents and stats")
    p_ins.add_argument("--cache", required=True)
    p_ins.add_argument("-v", "--verbose", action="store_true")
    p_ins.set_defaults(fn=cmd_inspect)

    p_bench = sub.add_parser(
        "bench", help="serial-cold vs parallel-cold vs warm-cache wall-clock"
    )
    _add_machine_args(p_bench)
    p_bench.add_argument("--workers", type=int, default=4)
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="runs per strategy; wall-clock is the min")
    p_bench.add_argument("--cache", default=None,
                         help="cache directory to (re)use; default: temp dir")
    p_bench.add_argument("--out", default="BENCH_tuning_wallclock.json")
    p_bench.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
