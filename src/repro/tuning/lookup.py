"""The autotuning lookup table and its runtime decision function.

Step 2 of autotuning (paper III-C): the offline search stores the best
configuration per sampled input (t, n, p, m) "to a lookup table in a
file"; at runtime, inputs that fall between samples are resolved to the
nearest sampled point (log-scale nearest for the message size -- the
simple, robust variant of the quadtree/decision-tree encodings the paper
cites [35, 36]).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.config import HanConfig

__all__ = ["LookupTable"]


def _cfg_to_dict(cfg: HanConfig) -> dict:
    return {
        "fs": cfg.fs,
        "imod": cfg.imod,
        "smod": cfg.smod,
        "ibalg": cfg.ibalg,
        "iralg": cfg.iralg,
        "ibs": cfg.ibs,
        "irs": cfg.irs,
    }


@dataclass
class LookupTable:
    """(t, n, p, m) -> HanConfig with nearest-sample decisions."""

    entries: dict = field(default_factory=dict)  # (t, n, p, m) -> HanConfig

    def put(self, t: str, n: int, p: int, m: float, cfg: HanConfig) -> None:
        self.entries[(t, int(n), int(p), float(m))] = cfg

    def get(self, t: str, n: int, p: int, m: float) -> Optional[HanConfig]:
        return self.entries.get((t, int(n), int(p), float(m)))

    # -- runtime decision ---------------------------------------------------------

    def decide(self, n: int, p: int, m: float, t: str) -> HanConfig:
        """Nearest-sample decision; signature matches HanModule hooks."""
        candidates = [k for k in self.entries if k[0] == t]
        if not candidates:
            from repro.core.han import HanModule

            return HanModule.default_config(m)

        def key_distance(k):
            _t, kn, kp, km = k
            dn = abs(math.log2(max(kn, 1)) - math.log2(max(n, 1)))
            dp = abs(math.log2(max(kp, 1)) - math.log2(max(p, 1)))
            dm = abs(math.log2(max(km, 1.0)) - math.log2(max(m, 1.0)))
            # message size is the fastest-varying axis; geometry dominates.
            # Equidistant keys tie-break on the canonical (n, p, m) sort
            # order — never on dict insertion order, which differs
            # between a freshly built table and its save/load round-trip.
            return (dn + dp, dm, kn, kp, km)

        best = min(candidates, key=key_distance)
        return self.entries[best]

    def as_decision_fn(self):
        """Plug into :class:`~repro.core.HanModule`(decision_fn=...)."""
        return self.decide

    # -- persistence ----------------------------------------------------------------

    def save(self, path) -> None:
        # lazy import: experiments.common imports repro.tuning at module
        # load, so the shared header constant is fetched at call time
        from repro.experiments.common import RESULT_SCHEMA_VERSION
        from repro.obs.store import config_digest

        rows = [
            {"t": t, "n": n, "p": p, "m": m, "config": _cfg_to_dict(cfg)}
            for (t, n, p, m), cfg in sorted(self.entries.items())
        ]
        Path(path).write_text(json.dumps({
            "version": 1,
            "schema_version": RESULT_SCHEMA_VERSION,
            "config_digest": config_digest(None),
            "rows": rows,
        }, indent=1))

    @classmethod
    def load(cls, path) -> "LookupTable":
        doc = json.loads(Path(path).read_text())
        # unknown extra keys (the provenance header) are deliberately
        # tolerated; only the table layout version gates
        if doc.get("version") != 1:
            raise ValueError(f"unsupported lookup table version: {doc.get('version')}")
        table = cls()
        for row in doc["rows"]:
            table.put(
                row["t"], row["n"], row["p"], row["m"], HanConfig(**row["config"])
            )
        return table

    def __len__(self) -> int:
        return len(self.entries)
