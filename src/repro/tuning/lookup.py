"""The autotuning lookup table and its runtime decision function.

Step 2 of autotuning (paper III-C): the offline search stores the best
configuration per sampled input (t, n, p, m) "to a lookup table in a
file"; at runtime, inputs that fall between samples are resolved to the
nearest sampled point (log-scale nearest for the message size -- the
simple, robust variant of the quadtree/decision-tree encodings the paper
cites [35, 36]).

``decide`` is a hot path (one call per collective invocation), so the
table keeps a per-collective key index maintained on ``put`` -- the
candidate set for a decision is O(samples of that collective), never a
scan of every entry of every collective.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.config import HanConfig
from repro.core.han import HanModule

__all__ = ["LookupTable", "config_to_dict"]


def config_to_dict(cfg: HanConfig) -> dict:
    """The tuned fields of a config, JSON-ready (seed excluded)."""
    return {
        "fs": cfg.fs,
        "imod": cfg.imod,
        "smod": cfg.smod,
        "ibalg": cfg.ibalg,
        "iralg": cfg.iralg,
        "ibs": cfg.ibs,
        "irs": cfg.irs,
    }


_cfg_to_dict = config_to_dict  # backwards-compatible alias


def _table_digest(rows: list[dict]) -> str:
    """Content digest of the serialized rows (integrity stamp)."""
    from repro.tuning.cache import digest

    return digest("lookup-table", rows=rows)


@dataclass
class LookupTable:
    """(t, n, p, m) -> HanConfig with nearest-sample decisions."""

    entries: dict = field(default_factory=dict)  # (t, n, p, m) -> HanConfig
    #: t -> [keys]; maintained on put, rebuilt if entries were mutated
    #: behind the table's back (len mismatch is the staleness signal)
    _by_coll: dict = field(default_factory=dict, repr=False, compare=False)

    def put(self, t: str, n: int, p: int, m: float, cfg: HanConfig) -> None:
        key = (t, int(n), int(p), float(m))
        if key not in self.entries:
            self._by_coll.setdefault(t, []).append(key)
        self.entries[key] = cfg

    def get(self, t: str, n: int, p: int, m: float) -> Optional[HanConfig]:
        return self.entries.get((t, int(n), int(p), float(m)))

    def _candidates(self, t: str) -> list:
        if sum(len(keys) for keys in self._by_coll.values()) != len(self.entries):
            # entries dict was written to directly: rebuild the index
            self._by_coll = {}
            for key in self.entries:
                self._by_coll.setdefault(key[0], []).append(key)
        return self._by_coll.get(t, [])

    # -- runtime decision ---------------------------------------------------------

    def decide(self, n: int, p: int, m: float, t: str) -> HanConfig:
        """Nearest-sample decision; signature matches HanModule hooks."""
        candidates = self._candidates(t)
        if not candidates:
            return HanModule.default_config(m)

        def key_distance(k):
            _t, kn, kp, km = k
            dn = abs(math.log2(max(kn, 1)) - math.log2(max(n, 1)))
            dp = abs(math.log2(max(kp, 1)) - math.log2(max(p, 1)))
            dm = abs(math.log2(max(km, 1.0)) - math.log2(max(m, 1.0)))
            # message size is the fastest-varying axis; geometry dominates.
            # Equidistant keys tie-break on the canonical (n, p, m) sort
            # order — never on dict insertion order, which differs
            # between a freshly built table and its save/load round-trip.
            return (dn + dp, dm, kn, kp, km)

        best = min(candidates, key=key_distance)
        return self.entries[best]

    def as_decision_fn(self):
        """Plug into :class:`~repro.core.HanModule`(decision_fn=...)."""
        return self.decide

    # -- persistence ----------------------------------------------------------------

    def save(self, path) -> None:
        # lazy import: experiments.common imports repro.tuning at module
        # load, so the shared header constant is fetched at call time
        from repro.experiments.common import RESULT_SCHEMA_VERSION
        from repro.obs.store import config_digest

        rows = [
            {"t": t, "n": n, "p": p, "m": m, "config": config_to_dict(cfg)}
            for (t, n, p, m), cfg in sorted(self.entries.items())
        ]
        Path(path).write_text(json.dumps({
            "version": 1,
            "schema_version": RESULT_SCHEMA_VERSION,
            "config_digest": config_digest(None),
            "table_digest": _table_digest(rows),
            "rows": rows,
        }, indent=1))

    @classmethod
    def load(cls, path) -> "LookupTable":
        doc = json.loads(Path(path).read_text())
        # unknown extra keys (the provenance header) are deliberately
        # tolerated; only the table layout version gates
        if doc.get("version") != 1:
            raise ValueError(f"unsupported lookup table version: {doc.get('version')}")
        # the content stamp is verified when present (a table that was
        # hand-edited or torn mid-write must not serve silently wrong
        # decisions) but its absence is tolerated: pre-stamp files load
        stamped = doc.get("table_digest")
        if stamped is not None and stamped != _table_digest(doc["rows"]):
            raise ValueError(
                f"lookup table {path} rows do not match their "
                "table_digest stamp (torn write or hand edit)"
            )
        table = cls()
        for row in doc["rows"]:
            table.put(
                row["t"], row["n"], row["p"], row["m"], HanConfig(**row["config"])
            )
        return table

    def __len__(self) -> int:
        return len(self.entries)
