"""Dataclasses describing nodes, NICs and machines.

All bandwidths are bytes/second, all latencies seconds.  The values drive
the fluid resources and overhead servers built by :mod:`repro.netsim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.topology import Topology, make_topology

__all__ = ["NodeSpec", "NicSpec", "MachineSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Attributes
    ----------
    cores:
        Cores (== max processes per node).
    mem_bw:
        Aggregate memory-bus bandwidth shared by every transfer touching
        the node's memory (intra-node copies *and* NIC DMA).  This shared
        resource is what makes `ib`/`sb` overlap imperfect (paper III-A2).
    copy_bw:
        Peak single-stream memcpy bandwidth; caps one shared-memory
        pipe even when the bus is otherwise idle.
    reduce_bw:
        Reduction-kernel throughput without AVX (bytes of input/s).
        Used by the SM and Libnbc submodules.
    reduce_bw_avx:
        Reduction throughput with AVX; used by SOLO and ADAPT
        (paper IV-A2: only SOLO and ADAPT exploit AVX).
    shm_latency:
        Base latency of an intra-node shared-memory hand-off.
    """

    cores: int
    mem_bw: float
    copy_bw: float
    reduce_bw: float
    reduce_bw_avx: float
    shm_latency: float = 3e-7
    #: GPUs per node (0 = CPU-only node); enables the `gpu` submodule
    gpus: int = 0
    #: aggregate intra-node GPU interconnect bandwidth (NVLink fabric)
    nvlink_bw: float = 0.0
    #: host<->device staging bandwidth per direction (PCIe/per node)
    pcie_bw: float = 0.0
    #: on-GPU reduction throughput (bytes of input/s)
    gpu_reduce_bw: float = 0.0
    #: GPU kernel/copy launch latency
    gpu_latency: float = 5e-6
    #: NVLink fabric domains per node (0/1 = one flat fabric).  When > 1
    #: the node's GPUs are split into that many equal islands, each with
    #: its own ``nvlink_bw`` fluid resource; traffic between islands must
    #: cross PCIe/host memory.  Enables HAN's fabric/node/network
    #: 3-level composition.
    fabric_domains: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        for name in ("mem_bw", "copy_bw", "reduce_bw", "reduce_bw_avx"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.gpus < 0:
            raise ValueError("gpus must be >= 0")
        if self.gpus > 0:
            for name in ("nvlink_bw", "pcie_bw", "gpu_reduce_bw"):
                if getattr(self, name) <= 0:
                    raise ValueError(
                        f"{name} must be positive on GPU nodes"
                    )
        if self.fabric_domains < 0:
            raise ValueError("fabric_domains must be >= 0")
        if self.fabric_domains > 1:
            if self.gpus <= 0:
                raise ValueError(
                    "fabric_domains > 1 requires a GPU node (gpus > 0)"
                )
            if self.gpus % self.fabric_domains != 0:
                raise ValueError(
                    f"gpus={self.gpus} must divide evenly into "
                    f"fabric_domains={self.fabric_domains}"
                )


@dataclass(frozen=True)
class NicSpec:
    """One network interface: per-direction injection bandwidth + latency."""

    bw: float
    latency: float

    def __post_init__(self) -> None:
        if self.bw <= 0:
            raise ValueError("nic bw must be positive")
        if self.latency < 0:
            raise ValueError("nic latency must be >= 0")


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: homogeneous nodes + NICs + an interconnect."""

    name: str
    num_nodes: int
    ppn: int
    node: NodeSpec
    nic: NicSpec
    topology: str = "crossbar"
    link_bw: float = 0.0  # 0 -> defaults to nic.bw
    hop_latency: float = 1e-7
    topo_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not (1 <= self.ppn <= self.node.cores):
            raise ValueError(
                f"ppn={self.ppn} must be within [1, cores={self.node.cores}]"
            )
        if self.node.fabric_domains > 1 and self.ppn % self.node.fabric_domains != 0:
            raise ValueError(
                f"ppn={self.ppn} must divide evenly into "
                f"fabric_domains={self.node.fabric_domains} so every "
                f"fabric island hosts the same number of ranks"
            )

    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.ppn

    def build_topology(self) -> Topology:
        bw = self.link_bw if self.link_bw > 0 else self.nic.bw
        return make_topology(
            self.topology, self.num_nodes, bw, **self.topo_params
        )

    def scaled(self, num_nodes: int | None = None, ppn: int | None = None) -> "MachineSpec":
        """Same hardware, different job size (used by experiment drivers)."""
        return replace(
            self,
            num_nodes=self.num_nodes if num_nodes is None else num_nodes,
            ppn=self.ppn if ppn is None else ppn,
        )

    def band(self) -> "MachineSpec":
        """The hardware *band* identity: this machine with the job
        geometry normalized away (``num_nodes=ppn=1``).

        Two job shapes on the same hardware share a band, which is what
        lets one tuning sweep serve every job size on a fleet -- the
        decision store (:mod:`repro.serve`) digests this, not the full
        spec, into its shard keys.
        """
        return replace(self, num_nodes=1, ppn=1)
