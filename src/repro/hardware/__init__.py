"""Hardware descriptions: nodes, NICs and whole-machine presets.

The presets in :mod:`repro.hardware.machines` parameterise the simulated
substrate to match the two systems the paper evaluates on (Shaheen II and
Stampede2) plus small clusters for tests and examples.
"""

from repro.hardware.spec import MachineSpec, NicSpec, NodeSpec
from repro.hardware.machines import (
    MACHINE_PRESETS,
    gpu_cluster,
    gpu_pod,
    shaheen2,
    stampede2,
    small_cluster,
    tiny_cluster,
)

__all__ = [
    "MACHINE_PRESETS",
    "MachineSpec",
    "NicSpec",
    "NodeSpec",
    "gpu_cluster",
    "gpu_pod",
    "shaheen2",
    "stampede2",
    "small_cluster",
    "tiny_cluster",
]
