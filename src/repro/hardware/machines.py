"""Machine presets mirroring the paper's evaluation platforms.

Numbers come from public hardware documentation:

- **Shaheen II** (paper IV): Cray XC40, dual-socket 16-core Haswell
  (32 cores), 128 GB DDR4, Cray Aries dragonfly.  Aries injection
  bandwidth ~10 GB/s per direction, ~1.3 us latency.
- **Stampede2** (paper IV): Intel Skylake nodes, 48 cores, 192 GB DDR4,
  100 Gbit/s Omni-Path in a (tapered) fat-tree, ~1 us latency.

Defaults reproduce the paper's job geometry (128 x 32 = 4096 ranks on
Shaheen II, 32 x 48 = 1536 on Stampede2); experiment drivers usually run a
scaled-down geometry via :meth:`MachineSpec.scaled` (see DESIGN.md on
scale substitution).
"""

from __future__ import annotations

from repro.hardware.spec import MachineSpec, NicSpec, NodeSpec

__all__ = [
    "MACHINE_PRESETS",
    "gpu_cluster",
    "gpu_pod",
    "shaheen2",
    "small_cluster",
    "stampede2",
    "tiny_cluster",
]


def shaheen2(num_nodes: int = 128, ppn: int = 32) -> MachineSpec:
    """Cray XC40 / Aries dragonfly (paper's primary machine)."""
    node = NodeSpec(
        cores=32,
        mem_bw=90e9,  # dual-socket Haswell DDR4-2133 stream-class
        copy_bw=7e9,
        reduce_bw=3e9,
        reduce_bw_avx=12e9,
        shm_latency=3e-7,
    )
    nic = NicSpec(bw=10e9, latency=1.3e-6)
    return MachineSpec(
        name="shaheen2",
        num_nodes=num_nodes,
        ppn=ppn,
        node=node,
        nic=nic,
        topology="dragonfly",
        link_bw=15e9,
        hop_latency=1.0e-7,
        topo_params=dict(
            nodes_per_router=4,
            routers_per_group=8,
            global_links_per_router=4,
            global_bw_factor=1.0,
        ),
    )


def stampede2(num_nodes: int = 32, ppn: int = 48) -> MachineSpec:
    """Intel Skylake + Omni-Path fat-tree (paper's second machine)."""
    node = NodeSpec(
        cores=48,
        mem_bw=150e9,  # dual-socket SKX DDR4-2666
        copy_bw=10e9,
        reduce_bw=3.5e9,
        reduce_bw_avx=14e9,
        shm_latency=2.5e-7,
    )
    nic = NicSpec(bw=12.5e9, latency=1.0e-6)  # 100 Gbit/s Omni-Path
    return MachineSpec(
        name="stampede2",
        num_nodes=num_nodes,
        ppn=ppn,
        node=node,
        nic=nic,
        topology="fattree",
        link_bw=25e9,
        hop_latency=1.0e-7,
        topo_params=dict(nodes_per_edge=16, num_core=4, taper=1.75),
    )


def small_cluster(num_nodes: int = 8, ppn: int = 8) -> MachineSpec:
    """Generic commodity cluster for examples and mid-size experiments."""
    node = NodeSpec(
        cores=max(ppn, 16),
        mem_bw=60e9,
        copy_bw=6e9,
        reduce_bw=2.5e9,
        reduce_bw_avx=10e9,
    )
    nic = NicSpec(bw=12.5e9, latency=1.5e-6)
    return MachineSpec(
        name="small_cluster",
        num_nodes=num_nodes,
        ppn=ppn,
        node=node,
        nic=nic,
        topology="crossbar",
    )


def gpu_cluster(num_nodes: int = 4, ppn: int = 4) -> MachineSpec:
    """DGX-style GPU nodes (for the paper's GPU-submodule future work).

    One rank drives one GPU; gradients live in device memory.  NVLink
    carries intra-node GPU traffic at an aggregate far above the host
    memory bus; host<->device staging crosses PCIe.
    """
    node = NodeSpec(
        cores=max(ppn, 8),
        mem_bw=100e9,
        copy_bw=8e9,
        reduce_bw=3e9,
        reduce_bw_avx=12e9,
        gpus=max(ppn, 4),
        nvlink_bw=300e9,  # aggregate NVLink fabric
        pcie_bw=12e9,  # per-direction host<->device
        gpu_reduce_bw=150e9,  # on-GPU reduction kernels
    )
    nic = NicSpec(bw=12.5e9, latency=1.2e-6)
    return MachineSpec(
        name="gpu_cluster",
        num_nodes=num_nodes,
        ppn=ppn,
        node=node,
        nic=nic,
        topology="crossbar",
    )


def gpu_pod(num_nodes: int = 2, ppn: int = 8) -> MachineSpec:
    """GPU pod with *split* NVLink fabrics (two islands per node).

    Models an HGX-style baseboard pair (or a Gaudi scale-out box, cf. the
    HCCL demo): each node carries two NVLink domains of ``gpus/2`` GPUs;
    traffic inside an island rides that island's NVLink resource, while
    cross-island traffic is staged over PCIe + the host memory bus.  This
    is the preset that exercises HAN's fabric/node/network 3-level
    hierarchy -- ``fabric_domains=2`` is what distinguishes it from
    :func:`gpu_cluster`'s single flat fabric.
    """
    node = NodeSpec(
        cores=max(ppn, 8),
        mem_bw=120e9,
        copy_bw=8e9,
        reduce_bw=3e9,
        reduce_bw_avx=12e9,
        gpus=max(ppn, 8),
        nvlink_bw=200e9,  # per-island NVLink aggregate
        pcie_bw=12e9,  # per-direction host<->device
        gpu_reduce_bw=150e9,
        fabric_domains=2,
    )
    nic = NicSpec(bw=25e9, latency=1.2e-6)
    return MachineSpec(
        name="gpu_pod",
        num_nodes=num_nodes,
        ppn=ppn,
        node=node,
        nic=nic,
        topology="crossbar",
    )


def tiny_cluster(num_nodes: int = 2, ppn: int = 2) -> MachineSpec:
    """Smallest useful machine; keeps unit tests fast."""
    node = NodeSpec(
        cores=max(ppn, 4),
        mem_bw=50e9,
        copy_bw=5e9,
        reduce_bw=2e9,
        reduce_bw_avx=8e9,
    )
    nic = NicSpec(bw=10e9, latency=1e-6)
    return MachineSpec(
        name="tiny_cluster",
        num_nodes=num_nodes,
        ppn=ppn,
        node=node,
        nic=nic,
        topology="crossbar",
    )


#: name -> factory; the fleet vocabulary shared by the tuning and
#: serving CLIs (``repro.tuning.cli``, ``repro.serve.cli warm --fleet``)
MACHINE_PRESETS = {
    "shaheen2": shaheen2,
    "stampede2": stampede2,
    "small_cluster": small_cluster,
    "gpu_cluster": gpu_cluster,
    "gpu_pod": gpu_pod,
    "tiny_cluster": tiny_cluster,
}
