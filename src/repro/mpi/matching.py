"""Message envelopes and MPI matching semantics.

Matching follows the MPI rules: a receive names ``(source, tag)`` with
wildcards; envelopes from one sender are matched in the order they were
sent (non-overtaking), which the runtime enforces with per-channel
sequence numbers and a hold-back buffer -- flows of different sizes may
physically finish out of order, the *matching* never does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request

__all__ = ["Envelope", "PostedRecv", "Matcher", "Channel"]

EAGER = "eager"
RNDV = "rndv"


@dataclass(slots=True)
class Envelope:
    """The matchable part of a message plus its transfer state.

    ``slots=True``: one envelope per message makes this a hot allocation
    at paper scale; dropping the per-instance ``__dict__`` is a
    measurable attribute-access and allocation win.
    """

    cid: int
    src: int  # communicator rank of the sender
    dst: int
    tag: int
    nbytes: float
    payload: object
    protocol: str
    seq: int
    src_world: int
    dst_world: int
    send_req: Optional[Request] = None
    arrived: bool = False  # data physically at the receiver
    matched: bool = False
    # fired by the runtime when the match happens (rendezvous CTS trigger)
    on_matched: Optional[Callable[["Envelope", "PostedRecv"], None]] = None
    recv: Optional["PostedRecv"] = None
    #: observability message id (-1 when no recorder is attached)
    mid: int = -1


@dataclass(slots=True)
class PostedRecv:
    """A posted receive waiting for a matching envelope."""

    source: int
    tag: int
    req: Request

    def matches(self, env: Envelope) -> bool:
        return (self.source in (ANY_SOURCE, env.src)) and (
            self.tag in (ANY_TAG, env.tag)
        )


class Matcher:
    """Posted-receive and unexpected-message queues for one (comm, rank)."""

    __slots__ = ("posted", "unexpected")

    def __init__(self) -> None:
        self.posted: list[PostedRecv] = []
        self.unexpected: list[Envelope] = []

    def deliver(self, env: Envelope) -> Optional[PostedRecv]:
        """An envelope reached the receiver; match or queue it."""
        for i, recv in enumerate(self.posted):
            if recv.matches(env):
                del self.posted[i]
                self._bind(env, recv)
                return recv
        self.unexpected.append(env)
        return None

    def post(self, recv: PostedRecv) -> Optional[Envelope]:
        """A receive was posted; match a queued envelope or wait."""
        for i, env in enumerate(self.unexpected):
            if recv.matches(env):
                del self.unexpected[i]
                self._bind(env, recv)
                return env
        self.posted.append(recv)
        return None

    @staticmethod
    def _bind(env: Envelope, recv: PostedRecv) -> None:
        env.matched = True
        env.recv = recv
        if env.on_matched is not None:
            env.on_matched(env, recv)


class Channel:
    """Per (comm, src, dst) FIFO enforcing in-order envelope delivery."""

    __slots__ = ("next_send_seq", "next_deliver_seq", "holdback")

    def __init__(self) -> None:
        self.next_send_seq = 0
        self.next_deliver_seq = 0
        self.holdback: dict[int, Envelope] = {}

    def alloc_seq(self) -> int:
        s = self.next_send_seq
        self.next_send_seq += 1
        return s

    def deliver_in_order(
        self, env: Envelope, sink: Callable[[Envelope], None]
    ) -> None:
        """Pass envelopes to ``sink`` strictly in send order."""
        self.holdback[env.seq] = env
        while self.next_deliver_seq in self.holdback:
            nxt = self.holdback.pop(self.next_deliver_seq)
            self.next_deliver_seq += 1
            sink(nxt)
