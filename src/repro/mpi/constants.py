"""MPI-style constants."""

ANY_SOURCE = -1
ANY_TAG = -1
UNDEFINED = -32766  # color for ranks excluded from a split (MPI_UNDEFINED)

# Tags >= INTERNAL_TAG_BASE are reserved for runtime-internal traffic
# (e.g. the built-in barrier); user code should stay below it.
INTERNAL_TAG_BASE = 1 << 30
