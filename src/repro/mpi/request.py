"""Non-blocking operation handles."""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.engine import SimEvent

__all__ = ["Request"]


class Request:
    """Handle for a pending non-blocking operation.

    ``event`` fires with the operation's result: the delivered
    :class:`~repro.mpi.communicator.Message` for receives, ``None`` for
    sends, and an operation-defined value for non-blocking collectives.
    Wait through the owning communicator::

        req = comm.irecv(source=3)
        msg = yield from comm.wait(req)
    """

    __slots__ = ("event", "kind", "_meta")

    def __init__(self, event: SimEvent, kind: str, meta: Optional[dict] = None):
        self.event = event
        self.kind = kind
        self._meta = meta

    @property
    def meta(self) -> dict:
        # lazily materialized: two requests per message at paper scale
        # and nearly none of them ever touch metadata
        m = self._meta
        if m is None:
            m = self._meta = {}
        return m

    @property
    def complete(self) -> bool:
        return self.event.triggered

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value)``."""
        return self.event.triggered, self.event.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.complete else "pending"
        return f"<Request {self.kind} {state}>"
