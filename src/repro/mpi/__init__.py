"""Simulated MPI runtime.

A faithful-enough MPI subset for collective communication research:

- ranks are simulated processes (Python generators) placed on the nodes of
  a :class:`~repro.hardware.MachineSpec`;
- point-to-point follows the eager/rendezvous protocols with per-channel
  FIFO matching, wildcards, and non-blocking requests;
- communicators support ``split`` and ``split_type`` (the portable MPI-3.1
  mechanism HAN uses to discover the node hierarchy, paper section III);
- reduction operators are numpy-backed so collective results can be
  checked for *correctness*, not just timed.

The API mirrors mpi4py conventions where that makes sense, adapted to the
generator-based simulation style: blocking calls are used as
``msg = yield from comm.recv(src)``, non-blocking calls return a
:class:`Request` waited on with ``yield from comm.wait(req)``.
"""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, UNDEFINED
from repro.mpi.op import BAND, BOR, BXOR, LAND, LOR, MAX, MIN, PROD, SUM, Op
from repro.mpi.request import Request
from repro.mpi.communicator import Communicator, Message
from repro.mpi.runtime import MPIRuntime

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOR",
    "BXOR",
    "Communicator",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "Message",
    "MPIRuntime",
    "Op",
    "PROD",
    "Request",
    "SUM",
    "UNDEFINED",
]
