"""Per-rank communicator views.

Each simulated rank holds its own :class:`Communicator` object for every
communicator it belongs to (matching how MPI handles are process-local).
All time-consuming calls are generators driven by the simulation engine::

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, payload=data)
        elif comm.rank == 1:
            msg = yield from comm.recv(0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, INTERNAL_TAG_BASE
from repro.mpi.request import Request
from repro.sim.engine import AllOf, AnyOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MPIRuntime

__all__ = ["Communicator", "Message"]


@dataclass(slots=True)
class Message:
    """What a completed receive yields.

    One per received message makes this a hot allocation; ``slots``
    (without ``frozen``, whose ``object.__setattr__`` init path is slow)
    keeps construction cheap.  Treat instances as immutable anyway.
    """

    source: int  # communicator rank of the sender
    tag: int
    nbytes: float
    payload: object


def _payload_nbytes(payload, nbytes) -> float:
    if nbytes is not None:
        return float(nbytes)
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    raise ValueError(
        "isend/send need nbytes= unless payload is a numpy array"
    )


class Communicator:
    """One rank's view of one communicator."""

    def __init__(
        self,
        runtime: "MPIRuntime",
        cid: int,
        group: tuple[int, ...],
        rank: int,
    ):
        self.runtime = runtime
        self.cid = cid
        self.group = group  # world ranks, indexed by communicator rank
        self.rank = rank
        #: group size; a plain attribute (groups are immutable) — the
        #: property call was measurable inside collective loops
        self.size = len(group)
        self._split_epoch = 0
        self._barrier_epoch = 0
        self._nodes: Optional[list[int]] = None  # node_of cache, lazy

    # -- introspection -----------------------------------------------------------

    @property
    def world_rank(self) -> int:
        return self.group[self.rank]

    def node_of(self, rank: Optional[int] = None) -> int:
        """Physical node hosting ``rank`` (default: me)."""
        nodes = self._nodes
        if nodes is None:
            nodes = self._nodes = self.runtime.nodes_of_comm(
                self.cid, self.group
            )
        r = self.rank if rank is None else rank
        if r < 0:
            raise IndexError(f"rank {r} out of range")
        return nodes[r]

    def translate_world(self, world_rank: int) -> int:
        """World rank -> rank in this communicator (ValueError if absent)."""
        return self.group.index(world_rank)

    @property
    def now(self) -> float:
        """Current simulated time (convenience for timing loops)."""
        return self.runtime.engine.now

    # -- point-to-point ------------------------------------------------------------

    def isend(
        self,
        dest: int,
        payload: object = None,
        nbytes: Optional[float] = None,
        tag: int = 0,
    ) -> Request:
        """Start a non-blocking send of ``nbytes`` (or ``payload.nbytes``)."""
        if not (0 <= dest < self.size):
            raise IndexError(f"dest {dest} out of range for size {self.size}")
        n = _payload_nbytes(payload, nbytes)
        return self.runtime._isend(self, self.rank, dest, n, payload, tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a non-blocking receive."""
        if source != ANY_SOURCE and not (0 <= source < self.size):
            raise IndexError(f"source {source} out of range")
        return self.runtime._irecv(self, self.rank, source, tag)

    def send(self, dest, payload=None, nbytes=None, tag=0):
        """Blocking send (= isend + wait)."""
        req = self.isend(dest, payload, nbytes, tag)
        yield req.event

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the :class:`Message`."""
        req = self.irecv(source, tag)
        msg = yield req.event
        return msg

    def sendrecv(
        self,
        dest: int,
        source: int,
        payload=None,
        nbytes=None,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ):
        """Concurrent send+recv (the workhorse of ring algorithms)."""
        sreq = self.isend(dest, payload, nbytes, send_tag)
        rreq = self.irecv(source, recv_tag)
        _, msg = yield from self.waitall([sreq, rreq])
        return msg

    # -- request completion ------------------------------------------------------------

    def wait(self, req: Request):
        value = yield req.event
        return value

    def waitall(self, reqs: Sequence[Request]):
        values = yield AllOf([r.event for r in reqs])
        return values

    def waitany(self, reqs: Sequence[Request]):
        """Returns ``(index, value)`` of the first completed request."""
        idx, value = yield AnyOf([r.event for r in reqs])
        return idx, value

    # -- local compute ------------------------------------------------------------

    def compute(self, seconds: float):
        """Occupy this rank's CPU for ``seconds`` (application compute)."""
        ev = self.runtime.fabric.progress[self.world_rank].request(
            seconds, "compute"
        )
        yield ev

    def reduce_compute(self, nbytes: float, avx: bool = False):
        """Charge the CPU cost of reducing ``nbytes`` of input data.

        ``avx=True`` uses the vectorized kernel rate -- in the paper only
        the SOLO and ADAPT submodules have AVX reductions (IV-A2).
        """
        node = self.runtime.machine.node
        rate = node.reduce_bw_avx if avx else node.reduce_bw
        yield self.runtime.fabric.progress[self.world_rank].request(
            nbytes / rate, "reduce", nbytes=nbytes
        )

    # -- communicator management ------------------------------------------------------------

    def split(self, color: int, key: Optional[int] = None):
        """MPI_Comm_split; every rank of this communicator must call it.

        Returns the new :class:`Communicator` view, or ``None`` when
        ``color`` is :data:`~repro.mpi.constants.UNDEFINED`.
        Communicator construction is instantaneous in simulated time (its
        cost is not part of any experiment in the paper).
        """
        epoch = self._split_epoch
        self._split_epoch += 1
        ev = self.runtime._split_submit(
            self, epoch, color, self.rank if key is None else key
        )
        new_comm = yield ev
        return new_comm

    def split_type_shared(self):
        """MPI_Comm_split_type(COMM_TYPE_SHARED): the intra-node comm.

        This is the portable MPI-3.1 call HAN relies on to discover the
        hardware hierarchy (paper section III).
        """
        comm = yield from self.split(color=self.node_of())
        return comm

    def dup(self):
        """Duplicate this communicator (fresh matching context)."""
        comm = yield from self.split(color=0, key=self.rank)
        return comm

    # -- built-in barrier ------------------------------------------------------------

    def barrier(self):
        """Dissemination barrier over internal tags (runtime utility).

        Collective *modules* provide their own tuned barriers; this one
        exists so applications and tests can synchronize without picking
        a module.
        """
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        size, rank = self.size, self.rank
        if size == 1:
            return
        tag = INTERNAL_TAG_BASE + (epoch % 1024)
        dist = 1
        while dist < size:
            dst = (rank + dist) % size
            src = (rank - dist) % size
            yield from self.sendrecv(
                dst, src, nbytes=0, send_tag=tag, recv_tag=tag
            )
            dist *= 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator cid={self.cid} rank={self.rank}/{self.size}>"
