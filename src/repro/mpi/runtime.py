"""The simulated MPI runtime: process launch, P2P protocol, comm split.

One :class:`MPIRuntime` owns the simulation engine, the fabric (fluid
resources + progress servers) and all communicator state.  ``run()``
plays the role of ``mpirun``: it instantiates one simulated process per
rank and drives the event loop to completion.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Generator, Optional

from repro.hardware.spec import MachineSpec
from repro.mpi.communicator import Communicator, Message
from repro.mpi.constants import UNDEFINED
from repro.mpi.matching import EAGER, RNDV, Channel, Envelope, Matcher, PostedRecv
from repro.mpi.request import Request
from repro.netsim.fabric import Fabric
from repro.netsim.profiles import P2PProfile, openmpi_profile
from repro.sim.engine import Engine, SimEvent

__all__ = ["MPIRuntime"]


class MPIRuntime:
    """A machine + an MPI library profile + live communicator state."""

    def __init__(
        self,
        machine: MachineSpec,
        profile: Optional[P2PProfile] = None,
    ):
        self.machine = machine
        self.profile = profile if profile is not None else openmpi_profile()
        self.engine = Engine()
        self.fabric = Fabric(self.engine, machine, self.profile)
        # A FaultyMachineSpec carries a fault plan; arm it on this runtime.
        # Plain specs (no attribute) and empty plans change nothing.
        plan = getattr(machine, "fault_plan", None)
        if plan is not None:
            plan.install(self)
        self._matchers: dict[tuple[int, int], Matcher] = {}
        self._channels: dict[tuple[int, int, int], Channel] = {}
        self._next_cid = 0
        # cid -> group (world ranks); split coordination state
        self._groups: dict[int, tuple[int, ...]] = {}
        # cid -> node per communicator rank, shared by every rank's view
        # (each rank holds its own Communicator object for the same cid)
        self._comm_nodes: dict[int, list[int]] = {}
        self._splits: dict[tuple[int, int], dict] = {}
        self.world_group = tuple(range(machine.num_ranks))
        self._world_cid = self._register_comm(self.world_group)
        self._coll_state: dict = {}

    # -- communicator bookkeeping ---------------------------------------------------

    def _register_comm(self, group: tuple[int, ...]) -> int:
        cid = self._next_cid
        self._next_cid += 1
        self._groups[cid] = group
        return cid

    def nodes_of_comm(self, cid: int, group: tuple[int, ...]) -> list[int]:
        """Node of every communicator rank, computed once per cid."""
        nodes = self._comm_nodes.get(cid)
        if nodes is None:
            node_of = self.fabric.node_of
            nodes = self._comm_nodes[cid] = [node_of(w) for w in group]
        return nodes

    def world_view(self, rank: int) -> Communicator:
        """COMM_WORLD as seen by ``rank``."""
        return Communicator(self, self._world_cid, self.world_group, rank)

    def _matcher(self, cid: int, dst_crank: int) -> Matcher:
        key = (cid, dst_crank)
        m = self._matchers.get(key)
        if m is None:
            m = self._matchers[key] = Matcher()
        return m

    def _channel(self, cid: int, src: int, dst: int) -> Channel:
        key = (cid, src, dst)
        c = self._channels.get(key)
        if c is None:
            c = self._channels[key] = Channel()
        return c

    def coll_state(self, key) -> dict:
        """Shared per-collective-call scratch state.

        Shared-memory collective modules (SM/SOLO) synchronize their ranks
        through node-local flags rather than MPI messages; this registry
        is the simulation stand-in for that shared segment.  Callers pop
        the key when the call completes.
        """
        state = self._coll_state.get(key)
        if state is None:
            state = self._coll_state[key] = {}
        return state

    def drop_coll_state(self, key) -> None:
        self._coll_state.pop(key, None)

    # -- P2P protocol ------------------------------------------------------------

    def _isend(
        self,
        comm: Communicator,
        src: int,
        dst: int,
        nbytes: float,
        payload: object,
        tag: int,
    ) -> Request:
        prof = self.profile
        src_w, dst_w = comm.group[src], comm.group[dst]
        # direct SimEvent construction: event() is a pure wrapper frame
        # and this is one of the two hottest allocation sites
        req = Request(SimEvent(self.engine, "send"), "send")
        channel = self._channel(comm.cid, src, dst)
        protocol = EAGER if prof.is_eager(nbytes) else RNDV
        obs = self.engine.obs
        mid = -1
        if obs is not None:
            mid = obs.msg_begin(src_w, dst_w, tag, nbytes, protocol)
            sid = obs.begin(
                f"rank{src_w}", "send", "p2p",
                peer=dst_w, tag=tag, nbytes=nbytes, mid=mid,
            )
            req.event.callbacks.append(lambda _ev: obs.end(sid))
        # positional: (cid, src, dst, tag, nbytes, payload, protocol,
        # seq, src_world, dst_world, send_req) — keyword passing through
        # a 16-field generated __init__ is measurably slower here
        env = Envelope(
            comm.cid, src, dst, tag, nbytes, payload, protocol,
            channel.alloc_seq(), src_w, dst_w, req,
        )
        env.mid = mid
        if protocol == RNDV:
            env.on_matched = self._rndv_matched

        # channel and matcher resolved once at send time; delivery jumps
        # straight to the in-order sink with no dict lookups
        matcher = self._matcher(comm.cid, dst)

        def after_send_overhead() -> None:
            if self.engine.obs is not None:
                self.engine.obs.msg_send_done(env.mid)
            # The matchable envelope travels at control latency, in order.
            # partial over lambda: one C-level call fewer per message.
            ctrl = self.fabric.control_latency(src_w, dst_w)
            self.engine.schedule(
                ctrl, partial(channel.deliver_in_order, env, matcher.deliver)
            )
            if protocol == EAGER:
                # Data goes immediately (buffered at the receiver if no
                # recv is posted yet); sender completes locally.
                self.fabric.start_transfer(
                    src_w, dst_w, nbytes, partial(self._data_arrived, env)
                )
                req.event.succeed(None)

        self.fabric.progress[src_w].request_call(
            prof.send_overhead(nbytes), after_send_overhead, "send_ov", mid=mid
        )
        return req

    def _deliver(self, env: Envelope) -> None:
        channel = self._channel(env.cid, env.src, env.dst)
        matcher = self._matcher(env.cid, env.dst)
        channel.deliver_in_order(env, matcher.deliver)

    def _irecv(
        self, comm: Communicator, dst: int, source: int, tag: int
    ) -> Request:
        req = Request(SimEvent(self.engine, "recv"), "recv")
        obs = self.engine.obs
        if obs is not None:
            dst_w = comm.group[dst]
            sid = obs.begin(
                f"rank{dst_w}", "recv", "p2p", source=source, tag=tag
            )
            req.event.callbacks.append(
                lambda ev: obs.end(
                    sid,
                    nbytes=getattr(ev.value, "nbytes", 0.0),
                )
            )
        recv = PostedRecv(source=source, tag=tag, req=req)
        env = self._matcher(comm.cid, dst).post(recv)
        if env is not None and env.protocol == EAGER:
            self._try_finish_eager(env)
        # Rendezvous envelopes trigger _rndv_matched via Matcher._bind.
        return req

    def _data_arrived(self, env: Envelope) -> None:
        env.arrived = True
        if self.engine.obs is not None:
            self.engine.obs.msg_arrived(env.mid)
        if env.protocol == EAGER:
            self._try_finish_eager(env)
        else:
            # Rendezvous: data lands only after the match, so the recv is
            # known; complete both sides.
            env.send_req.event.succeed(None)
            self._finish_recv(env)

    def _try_finish_eager(self, env: Envelope) -> None:
        if env.arrived and env.matched:
            self._finish_recv(env)

    def _rndv_matched(self, env: Envelope, _recv: PostedRecv) -> None:
        """Receiver matched an RTS: send CTS, then stream the data."""
        cts = self.fabric.control_latency(env.dst_world, env.src_world)
        self.engine.schedule(cts, partial(
            self.fabric.start_transfer,
            env.src_world,
            env.dst_world,
            env.nbytes,
            partial(self._data_arrived, env),
        ))

    def _finish_recv(self, env: Envelope) -> None:
        msg = Message(
            source=env.src, tag=env.tag, nbytes=env.nbytes, payload=env.payload
        )
        if self.engine.obs is None:
            # hot path: jump straight into succeed with no wrapper frame
            complete = partial(env.recv.req.event.succeed, msg)
        else:
            def complete() -> None:
                self.engine.obs.msg_recv_done(env.mid)
                env.recv.req.event.succeed(msg)

        self.fabric.progress[env.dst_world].request_call(
            self.profile.recv_overhead(env.nbytes), complete, "recv_ov", mid=env.mid
        )

    # -- comm split ------------------------------------------------------------

    def _split_submit(self, comm: Communicator, epoch: int, color, key):
        """Collect split calls; resolve when the whole group has called."""
        ev = self.engine.event(f"split:{comm.cid}:{epoch}:{comm.rank}")
        state = self._splits.setdefault((comm.cid, epoch), {})
        state[comm.rank] = (color, key, ev)
        if len(state) == len(comm.group):
            del self._splits[(comm.cid, epoch)]
            self._split_resolve(comm.group, state)
        return ev

    def _split_resolve(self, parent_group: tuple[int, ...], state: dict) -> None:
        by_color: dict = {}
        for rank, (color, key, ev) in state.items():
            if color == UNDEFINED:
                continue
            by_color.setdefault(color, []).append((key, rank, ev))
        results: dict[int, tuple[Optional[Communicator], object]] = {}
        for color in sorted(by_color):
            members = sorted(by_color[color])  # by (key, parent rank)
            group = tuple(parent_group[rank] for _k, rank, _ev in members)
            cid = self._register_comm(group)
            for new_rank, (_k, parent_rank, ev) in enumerate(members):
                results[parent_rank] = (
                    Communicator(self, cid, group, new_rank),
                    ev,
                )
        for rank, (color, _key, ev) in state.items():
            if color == UNDEFINED:
                ev.succeed(None)
            else:
                new_comm, _ = results[rank]
                ev.succeed(new_comm)

    # -- launching ------------------------------------------------------------

    def spawn_job(
        self,
        program: Callable[..., Generator],
        *args,
        group: Optional[tuple[int, ...]] = None,
        name: str = "job",
    ) -> list:
        """Start ``program(comm, *args)`` on every rank of a *fresh* comm.

        The simulated analogue of launching one more job onto an
        already-busy machine (multi-tenancy, :mod:`repro.tenancy`): the
        job gets its own communicator id — hence its own matcher/channel
        tag space, fully isolated from every other job's messages — but
        shares all hardware: the fluid NIC/link/memory-bus resources and
        the per-rank progress servers of the world ranks it lands on.

        ``group`` restricts the job to a subset of world ranks (default:
        all of them).  Unlike :meth:`run`, nothing is driven here —
        callers compose any number of jobs, then drain the engine once.
        Returns the per-rank :class:`~repro.sim.engine.SimProcess`
        handles.
        """
        grp = self.world_group if group is None else tuple(group)
        if not grp:
            raise ValueError("spawn_job needs at least one rank")
        for w in grp:
            if not (0 <= w < self.machine.num_ranks):
                raise ValueError(f"world rank {w} out of range")
        if len(set(grp)) != len(grp):
            raise ValueError(f"duplicate world ranks in group {grp}")
        cid = self._register_comm(grp)
        return [
            self.engine.spawn(
                program(Communicator(self, cid, grp, r), *args),
                name=f"{name}/rank{w}",
            )
            for r, w in enumerate(grp)
        ]

    def run(
        self,
        program: Callable[..., Generator],
        *args,
        ranks: Optional[int] = None,
        until: Optional[float] = None,
    ) -> list:
        """``mpirun``: start ``program(comm, *args)`` on every rank.

        Returns the per-rank results (the generators' return values) after
        the simulation drains.  ``ranks`` may restrict the launch to the
        first N world ranks (they still see a communicator of that size).
        """
        nranks = self.machine.num_ranks if ranks is None else ranks
        if not (1 <= nranks <= self.machine.num_ranks):
            raise ValueError(f"ranks must be in [1, {self.machine.num_ranks}]")
        if nranks == self.machine.num_ranks:
            comms = [self.world_view(r) for r in range(nranks)]
        else:
            group = tuple(range(nranks))
            cid = self._register_comm(group)
            comms = [Communicator(self, cid, group, r) for r in range(nranks)]
        procs = [
            self.engine.spawn(program(comms[r], *args), name=f"rank{r}")
            for r in range(nranks)
        ]
        self.engine.run(until=until)
        return [p.result for p in procs]
