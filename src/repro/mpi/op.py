"""Reduction operators, numpy-backed.

Collective algorithms call ``op(a, b)`` on real arrays when the simulation
carries payloads (correctness tests) and consult ``op.commutative`` to
pick legal algorithms -- the paper's MPI_Allreduce design assumes a
commutative operation (section III-B1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "BXOR",
]


@dataclass(frozen=True)
class Op:
    """A binary reduction operator.

    ``fn(a, b)`` must be elementwise over equal-shape numpy arrays and
    must not mutate its inputs (algorithms may reduce into views).
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    commutative: bool = True

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"Op({self.name})"


SUM = Op("sum", np.add)
PROD = Op("prod", np.multiply)
MAX = Op("max", np.maximum)
MIN = Op("min", np.minimum)
LAND = Op("land", np.logical_and)
LOR = Op("lor", np.logical_or)
BAND = Op("band", np.bitwise_and)
BOR = Op("bor", np.bitwise_or)
BXOR = Op("bxor", np.bitwise_xor)
