"""Horovod-style synthetic data-parallel training (paper IV-B2).

The paper trains AlexNet with ``tf_cnn_benchmarks`` on synthetic data;
the MPI-visible behaviour is: every step, gradients (AlexNet: ~61 M
parameters, ~244 MB in fp32) are averaged with MPI_Allreduce after being
coalesced into fusion buffers (Horovod default 64 MB).  Throughput in
images/s is therefore ``P * batch / (T_compute + T_allreduce)`` -- the
library's large-message allreduce is the whole story, which is exactly
what Fig 15 plots.

The compute time per step is a calibrated constant (CPU AlexNet
training); its absolute value shifts all libraries identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comparators.base import MPILibrary
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime

__all__ = ["ALEXNET_LAYER_BYTES", "HorovodResult", "horovod_run"]

#: AlexNet parameter gradients per layer, bytes of fp32, backward order
#: (fc8 produces its gradient first).
ALEXNET_LAYER_BYTES = tuple(
    int(n * 4)
    for n in (
        4_097_000,  # fc8
        16_781_312,  # fc7
        37_752_832,  # fc6
        442_624,  # conv5
        663_936,  # conv4
        884_992,  # conv3
        307_456,  # conv2
        34_944,  # conv1
    )
)

FUSION_BUFFER = 64 * 1024 * 1024  # Horovod's default fusion threshold


def fuse_buckets(layer_bytes, fusion=FUSION_BUFFER) -> list[float]:
    """Coalesce consecutive gradients into fusion-buffer buckets."""
    buckets: list[float] = []
    cur = 0.0
    for b in layer_bytes:
        if cur and cur + b > fusion:
            buckets.append(cur)
            cur = 0.0
        cur += b
    if cur:
        buckets.append(cur)
    return buckets


@dataclass(frozen=True)
class HorovodResult:
    library: str
    ranks: int
    batch_per_rank: int
    step_time: float
    comm_time: float

    @property
    def images_per_sec(self) -> float:
        return self.ranks * self.batch_per_rank / self.step_time

    @property
    def comm_ratio(self) -> float:
        return self.comm_time / self.step_time if self.step_time else 0.0


def horovod_run(
    machine: MachineSpec,
    library: MPILibrary,
    steps: int = 2,
    batch_per_rank: int = 64,
    compute_per_step: float = 0.30,
    layer_bytes=ALEXNET_LAYER_BYTES,
    fusion: float = FUSION_BUFFER,
) -> HorovodResult:
    """Simulate ``steps`` synchronous SGD steps; returns per-step timing."""
    runtime = MPIRuntime(machine, profile=library.profile)
    buckets = fuse_buckets(layer_bytes, fusion)
    per_rank_step: dict[int, float] = {}
    per_rank_comm: dict[int, float] = {}

    def prog(comm):
        yield from comm.barrier()
        start = comm.now
        spent = 0.0
        for _ in range(steps):
            # backward pass: compute interleaves with gradient readiness;
            # slices let the single-threaded MPI progress between layers
            slice_time = compute_per_step / max(1, len(buckets))
            for bucket in buckets:
                yield from comm.compute(slice_time)
                t0 = comm.now
                yield from library.allreduce(comm, bucket)
                spent += comm.now - t0
        per_rank_step[comm.rank] = (comm.now - start) / steps
        per_rank_comm[comm.rank] = spent / steps

    runtime.run(prog)
    return HorovodResult(
        library=library.name,
        ranks=machine.num_ranks,
        batch_per_rank=batch_per_rank,
        step_time=max(per_rank_step.values()),
        comm_time=max(per_rank_comm.values()),
    )
