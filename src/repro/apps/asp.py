"""ASP: parallel all-pairs shortest paths (Floyd-Warshall), paper IV-B1.

"Processes take turns to act as the root, and broadcast a row of the
weight matrix to others, followed by computations, which causes
MPI_Bcast to be the most time-consuming part of ASP."

Rows are distributed cyclically (row k lives on rank k % P) so the first
P iterations exercise every process as the broadcast root, matching the
paper's methodology ("the first 1536 iterations ... making sure each
process acts as the root process once").

Two modes:

- :func:`asp_run` -- timing mode at arbitrary matrix sizes: the update
  compute is charged analytically (2*n flops per local row per
  iteration), the broadcast goes through the library under test.
- :func:`asp_verify` -- data mode on small matrices: real numpy
  Floyd-Warshall through the simulated MPI, checked against
  :func:`asp_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comparators.base import MPILibrary
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime

__all__ = ["ASPResult", "asp_run", "asp_verify", "asp_reference"]


@dataclass(frozen=True)
class ASPResult:
    library: str
    n_vertices: int
    iterations: int
    ranks: int
    total_time: float
    comm_time: float  # max across ranks of time inside MPI_Bcast

    @property
    def comm_ratio(self) -> float:
        """Fraction of runtime spent communicating (Table III)."""
        return self.comm_time / self.total_time if self.total_time else 0.0


def asp_run(
    machine: MachineSpec,
    library: MPILibrary,
    n_vertices: int,
    iterations: int | None = None,
    flops: float = 2e9,
    elem_bytes: int = 4,
    jitter: float = 0.05,
    seed: int = 20,
) -> ASPResult:
    """Timing-mode ASP: ``iterations`` Floyd-Warshall steps (default P).

    ``jitter`` is the per-iteration, per-rank relative variation of the
    update time (deterministic, seeded).  Real FW updates vary with cache
    behaviour and OS noise; without it the zero-noise simulator lets deep
    flat pipelines hide their fill across iterations in a way no real
    system reproduces (process arrival imbalance is a well-known effect
    the paper's related work [25] is built on).
    """
    runtime = MPIRuntime(machine, profile=library.profile)
    P = machine.num_ranks
    iters = iterations if iterations is not None else P
    row_bytes = n_vertices * elem_bytes
    comm: dict[int, float] = {}
    total: dict[int, float] = {}
    rng = np.random.default_rng(seed)
    noise = 1.0 + jitter * rng.standard_normal((iters, P)) if jitter else None

    def prog(comm_):
        rank, size = comm_.rank, comm_.size
        local_rows = len(range(rank, n_vertices, size))
        update_time = 2.0 * local_rows * n_vertices / flops
        yield from comm_.barrier()
        start = comm_.now
        spent_comm = 0.0
        for k in range(iters):
            root = k % size
            t0 = comm_.now
            yield from library.bcast(comm_, row_bytes, root=root)
            spent_comm += comm_.now - t0
            dt = update_time
            if noise is not None:
                dt = max(0.0, update_time * noise[k, rank])
            yield from comm_.compute(dt)
        comm[rank] = spent_comm
        total[rank] = comm_.now - start

    runtime.run(prog)
    return ASPResult(
        library=library.name,
        n_vertices=n_vertices,
        iterations=iters,
        ranks=P,
        total_time=max(total.values()),
        comm_time=max(comm.values()),
    )


def calibrated_flops(
    machine: MachineSpec,
    library: MPILibrary,
    n_vertices: int,
    target_comm_ratio: float = 0.4641,
    probe_iterations: int = 4,
) -> float:
    """Choose the FW-update rate so ``library`` hits a target comm ratio.

    The paper's Table III is a *balance* between the FW row update and the
    row broadcast at 1536 ranks (HAN spends 46.41% of the time
    communicating).  A scaled-down geometry shrinks the broadcast but not
    the per-rank update, so reduced-scale runs calibrate the compute rate
    to the paper's balance point for the reference library and measure
    every other library against it -- the cross-library ratios and
    speedups (the actual claims) are then scale-comparable.
    """
    if not (0 < target_comm_ratio < 1):
        raise ValueError("target_comm_ratio must be in (0, 1)")
    probe = asp_run(
        machine,
        library,
        n_vertices,
        iterations=probe_iterations,
        flops=float("inf"),
    )
    comm_per_iter = probe.comm_time / probe_iterations
    compute_per_iter = comm_per_iter * (1 - target_comm_ratio) / target_comm_ratio
    # mirror asp_run's cost model: t = 2 * local_rows * n / flops
    local_rows = (n_vertices + machine.num_ranks - 1) // machine.num_ranks
    return 2.0 * local_rows * n_vertices / compute_per_iter


def asp_reference(weights: np.ndarray) -> np.ndarray:
    """Sequential Floyd-Warshall (vectorized numpy reference)."""
    d = weights.astype(np.float64, copy=True)
    n = d.shape[0]
    for k in range(n):
        np.minimum(d, d[:, k : k + 1] + d[k : k + 1, :], out=d)
    return d


def asp_verify(
    machine: MachineSpec, library: MPILibrary, weights: np.ndarray
) -> np.ndarray:
    """Run the distributed ASP with real data; returns the full result.

    Rows are cyclic over ranks; each iteration broadcasts the pivot row
    (owned by ``k % P``) and relaxes the local rows.
    """
    n = weights.shape[0]
    runtime = MPIRuntime(machine, profile=library.profile)
    collected: dict[int, np.ndarray] = {}

    def prog(comm):
        rank, size = comm.rank, comm.size
        my_rows = list(range(rank, n, size))
        local = weights[my_rows].astype(np.float64)  # local row block
        for k in range(n):
            root = k % size
            if rank == root:
                row_k = np.ascontiguousarray(local[my_rows.index(k)])
            else:
                row_k = None
            row_k = yield from library.bcast(
                comm, n * 8, root=root, payload=row_k
            )
            np.minimum(local, local[:, k : k + 1] + row_k[None, :], out=local)
        collected[rank] = local

    runtime.run(prog)
    result = np.empty((n, n))
    for rank, local in collected.items():
        result[list(range(rank, n, machine.num_ranks))] = local
    return result
