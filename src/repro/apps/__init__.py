"""Applications from the paper's evaluation (section IV-B).

- :mod:`repro.apps.asp` -- ASP [40]: parallel Floyd-Warshall all-pairs
  shortest paths, dominated by a per-iteration MPI_Bcast of one matrix
  row (Table III).
- :mod:`repro.apps.horovod` -- a Horovod-style synthetic data-parallel
  trainer [41]: AlexNet gradients averaged with MPI_Allreduce through a
  fusion buffer (Fig 15).
"""

from repro.apps.asp import (
    ASPResult,
    asp_reference,
    asp_run,
    asp_verify,
    calibrated_flops,
)
from repro.apps.horovod import HorovodResult, horovod_run, ALEXNET_LAYER_BYTES

__all__ = [
    "ALEXNET_LAYER_BYTES",
    "ASPResult",
    "HorovodResult",
    "asp_reference",
    "asp_run",
    "asp_verify",
    "calibrated_flops",
    "horovod_run",
]
