"""The `solo` module: one-sided single-copy shared-memory collectives.

SOLO (paper section III) builds on MPI one-sided communication: ranks
expose their buffers in RMA windows and peers copy *directly* from the
source -- each byte crosses the memory bus only on the reader's side
(2 crossings: read-remote + write-local) instead of SM's 4.  Reductions
are chunk-parallel (every rank reduces 1/P of the vector) and use AVX
kernels (paper IV-A2).

The price is the window synchronization on every call, a multi-
microsecond fixed cost -- "due to the differences in algorithms and
implementations, SM has better performance for small messages while SOLO
performs significantly better as the communication size increases", and
the paper's heuristic only considers SOLO above 512 KB (section III-C).
"""

from __future__ import annotations

import numpy as np

from repro.modules.shm_common import ShmModule
from repro.mpi.op import SUM

__all__ = ["SoloModule"]


class SoloModule(ShmModule):
    name = "solo"
    avx = True
    nonblocking = False
    _ds_write_copies = 0  # one-sided: peers read straight from the source

    def __init__(self, setup_overhead: float = 2.5e-6):
        #: RMA window synchronization (fence/flush) per call per rank
        self.setup_overhead = setup_overhead

    # -- bcast ----------------------------------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None):
        if comm.size == 1:
            return payload
        state = self._begin(comm)
        exposed = self._event(comm, state, "bcast-exposed")
        yield from self._setup(comm)
        if comm.rank == root:
            state["payload"] = payload
            yield from self._latency(comm)
            exposed.succeed(None)
            result = payload
            # Root waits for all readers before closing the epoch.
            done = self._event(comm, state, "bcast-drained")
            yield done
        else:
            if payload is not None:
                raise ValueError("payload may only be supplied at the root")
            yield exposed
            yield from self._flow(
                comm, state, nbytes, copies=2,
                rate_cap=comm.runtime.machine.node.copy_bw,
            )
            result = state.get("payload")
            state["readers_done"] = state.get("readers_done", 0) + 1
            if state["readers_done"] == comm.size - 1:
                self._event(comm, state, "bcast-drained").succeed(None)
        self._finish(comm, state)
        return result

    # -- reduce (chunk-parallel) ------------------------------------------------------

    def reduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, algorithm=None, segsize=None
    ):
        if comm.size == 1:
            return payload
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_exposed = self._event(comm, state, "reduce-exposed")
        result_ready = self._event(comm, state, "reduce-result")
        yield from self._setup(comm)

        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["exposed_count"] = state.get("exposed_count", 0) + 1
        if state["exposed_count"] == comm.size:
            all_exposed.succeed(None)
        yield all_exposed

        # Every rank reduces one 1/P chunk across the other P-1 buffers
        # (reads are direct, kernels are AVX), then deposits it into the
        # root's result buffer.
        size = comm.size
        chunk = nbytes / size
        node = comm.runtime.machine.node
        yield from self._flow(comm, state, (size - 1) * chunk, copies=2,
                              rate_cap=node.copy_bw)
        yield from comm.reduce_compute((size - 1) * chunk, avx=self.avx)
        if comm.rank != root:
            yield from self._flow(comm, state, chunk, copies=2,
                                  rate_cap=node.copy_bw)
        state["chunks_done"] = state.get("chunks_done", 0) + 1
        if state["chunks_done"] == size:
            # Data result (computed once; the *cost* was charged in
            # parallel chunks above).
            vals = [contrib[r] for r in range(size)]
            if all(v is not None for v in vals):
                acc = vals[0]
                for v in vals[1:]:
                    acc = op(acc, v)
            else:
                acc = None
            state["result"] = acc
            result_ready.succeed(None)
        if comm.rank == root:
            yield result_ready
            result = state.get("result")
        else:
            result = None
        self._finish(comm, state)
        return result

    # -- composed collectives ----------------------------------------------------------------

    def allreduce(self, comm, nbytes, payload=None, op=SUM, algorithm=None, segsize=None):
        """Chunk-parallel reduce, then every rank reads the full result."""
        if comm.size == 1:
            return payload
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_exposed = self._event(comm, state, "ar-exposed")
        result_ready = self._event(comm, state, "ar-result")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["exposed_count"] = state.get("exposed_count", 0) + 1
        if state["exposed_count"] == comm.size:
            all_exposed.succeed(None)
        yield all_exposed

        size = comm.size
        chunk = nbytes / size
        node = comm.runtime.machine.node
        yield from self._flow(comm, state, (size - 1) * chunk, copies=2,
                              rate_cap=node.copy_bw)
        yield from comm.reduce_compute((size - 1) * chunk, avx=self.avx)
        state["chunks_done"] = state.get("chunks_done", 0) + 1
        if state["chunks_done"] == size:
            vals = [contrib[r] for r in range(size)]
            if all(v is not None for v in vals):
                acc = vals[0]
                for v in vals[1:]:
                    acc = op(acc, v)
            else:
                acc = None
            state["result"] = acc
            result_ready.succeed(None)
        yield result_ready
        # read back the other P-1 chunks of the finished vector
        yield from self._flow(comm, state, (size - 1) * chunk, copies=2,
                              rate_cap=node.copy_bw)
        result = state.get("result")
        self._finish(comm, state)
        return result

    def gather(self, comm, nbytes, root=0, payload=None):
        """Root directly reads every rank's exposed buffer."""
        if comm.size == 1:
            return payload
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_exposed = self._event(comm, state, "gather-exposed")
        done = self._event(comm, state, "gather-done")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["exposed_count"] = state.get("exposed_count", 0) + 1
        if state["exposed_count"] == comm.size:
            all_exposed.succeed(None)
        if comm.rank == root:
            yield all_exposed
            yield from self._flow(
                comm, state, (comm.size - 1) * nbytes, copies=2,
                rate_cap=comm.runtime.machine.node.copy_bw,
            )
            parts = [contrib.get(r) for r in range(comm.size)]
            done.succeed(None)
            self._finish(comm, state)
            if any(p is None for p in parts):
                return None
            return np.concatenate(parts)
        yield done
        self._finish(comm, state)
        return None

    def barrier(self, comm):
        """A window fence is itself a barrier."""
        if comm.size == 1:
            return
        state = self._begin(comm)
        release = self._event(comm, state, "barrier-release")
        yield from self._setup(comm)
        yield from self._latency(comm)
        state["arrived"] = state.get("arrived", 0) + 1
        if state["arrived"] == comm.size:
            release.succeed(None)
        yield release
        self._finish(comm, state)
