"""Open MPI-style collective component modules.

HAN does not implement collective algorithms itself; it *composes*
existing modules (paper section III): "it selects the proper collective
frameworks as submodules to utilize the hardware capabilities of each
level".  The four submodules HAN uses, plus the flat default:

========  =======================  ==========================================
module    scope                    character
========  =======================  ==========================================
`tuned`   any (flat baseline)      default Open MPI decision rules [29]
`libnbc`  inter-node, nonblocking  round-based schedules, no alg choice,
                                   no AVX reductions
`adapt`   inter-node, nonblocking  event-driven [28]; chain/binary/binomial,
                                   tunable segment size, AVX reductions
`sm`      intra-node               bounce-buffer shared memory; tiny setup,
                                   double copies -> best for small messages
`solo`    intra-node               one-sided single-copy, chunk-parallel AVX
                                   reductions; window-sync setup -> best for
                                   large messages
========  =======================  ==========================================
"""

from repro.modules.base import CollModule, NotSupportedError
from repro.modules.tuned import TunedModule
from repro.modules.libnbc import LibnbcModule
from repro.modules.adapt import AdaptModule
from repro.modules.sm import SMModule
from repro.modules.solo import SoloModule
from repro.modules.gpu import GpuModule

INTER_MODULES = {"libnbc": LibnbcModule, "adapt": AdaptModule}
INTRA_MODULES = {"sm": SMModule, "solo": SoloModule, "gpu": GpuModule}
ALL_MODULES = {
    "tuned": TunedModule,
    **INTER_MODULES,
    **INTRA_MODULES,
}


def make_module(name: str, **kwargs) -> CollModule:
    """Instantiate a collective module by name."""
    try:
        cls = ALL_MODULES[name]
    except KeyError:
        raise ValueError(
            f"unknown module {name!r}; available: {sorted(ALL_MODULES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "ALL_MODULES",
    "AdaptModule",
    "CollModule",
    "GpuModule",
    "INTER_MODULES",
    "INTRA_MODULES",
    "LibnbcModule",
    "NotSupportedError",
    "SMModule",
    "SoloModule",
    "TunedModule",
    "make_module",
]
