"""The `tuned` module: Open MPI's default collective decision rules.

This reproduces the role of ``coll_tuned`` with its *fixed* decision
functions [29] -- rules derived long ago "on hardware with completely
different parameters than most today's HPC machines" (paper section
II-B).  It is the flat, hierarchy-unaware baseline labelled "default
Open MPI" throughout the paper's evaluation.

The decision thresholds below follow the shape of
``coll_tuned_decision_fixed.c``: binomial for small broadcasts,
split-binary in the mid-range, a pipelined chain with 128 KB segments
for large ones; recursive doubling vs ring for allreduce; and so on.
An explicit ``algorithm=``/``segsize=`` overrides the decision.
"""

from __future__ import annotations

from repro.colls import (
    ALLGATHER_ALGORITHMS,
    ALLREDUCE_ALGORITHMS,
    ALLTOALL_ALGORITHMS,
    BARRIER_ALGORITHMS,
    BCAST_ALGORITHMS,
    GATHER_ALGORITHMS,
    REDUCE_ALGORITHMS,
    REDUCE_SCATTER_ALGORITHMS,
    SCATTER_ALGORITHMS,
)
from repro.modules.base import CollModule
from repro.mpi.op import SUM

__all__ = ["TunedModule"]

KiB = 1024
MiB = 1024 * 1024


class TunedModule(CollModule):
    name = "tuned"
    avx = False  # paper IV-A2: default reductions are not vectorized
    nonblocking = False
    bcast_algorithms = tuple(sorted(BCAST_ALGORITHMS))
    reduce_algorithms = tuple(sorted(REDUCE_ALGORITHMS))

    # -- decision functions (fixed rules) ------------------------------------------

    @staticmethod
    def decide_bcast(size: int, nbytes: float) -> tuple[str, float | None]:
        if nbytes < 2 * KiB or size < 4:
            return "binomial", None
        if nbytes < 32 * KiB:
            return "split_binary", 8 * KiB
        if nbytes < 512 * KiB:
            return "binary", 32 * KiB
        return "chain", 128 * KiB  # the classic "pipeline, 128KB" rule

    @staticmethod
    def decide_allreduce(size: int, nbytes: float) -> tuple[str, float | None]:
        if nbytes <= 10 * KiB or size < 4:
            return "recursive_doubling", None
        return "ring", None

    @staticmethod
    def decide_reduce(size: int, nbytes: float) -> tuple[str, float | None]:
        if nbytes <= 8 * KiB or size < 4:
            return "binomial", None
        if nbytes <= 512 * KiB:
            return "binary", 32 * KiB
        return "chain", 64 * KiB

    @staticmethod
    def decide_allgather(size: int, nbytes: float) -> tuple[str, float | None]:
        if nbytes * size <= 64 * KiB:
            return "bruck", None
        if size & (size - 1) == 0:
            return "recursive_doubling", None
        return "ring", None

    @staticmethod
    def decide_gather(size: int, nbytes: float) -> str:
        return "binomial" if nbytes <= 32 * KiB else "linear"

    @staticmethod
    def decide_reduce_scatter(size: int, nbytes: float) -> str:
        # recursive halving is latency-optimal for small commutative
        # vectors on power-of-two comms; the ring wins on bandwidth
        if nbytes <= 64 * KiB and size & (size - 1) == 0:
            return "recursive_halving"
        return "ring"

    @staticmethod
    def decide_alltoall(size: int, nbytes: float) -> str:
        # Bruck trades log2(P) latency for extra volume: right for tiny
        # blocks, wrong as soon as bandwidth dominates
        return "bruck" if nbytes < 1 * KiB and size >= 8 else "pairwise"

    # -- collectives --------------------------------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None):
        if algorithm is None:
            algorithm, auto_seg = self.decide_bcast(comm.size, nbytes)
            segsize = auto_seg if segsize is None else segsize
        self._check_alg(algorithm, BCAST_ALGORITHMS, "bcast")
        result = yield from BCAST_ALGORITHMS[algorithm](
            comm, nbytes, root=root, payload=payload, segsize=segsize
        )
        return result

    def reduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, algorithm=None, segsize=None
    ):
        if algorithm is None:
            algorithm, auto_seg = self.decide_reduce(comm.size, nbytes)
            segsize = auto_seg if segsize is None else segsize
        self._check_alg(algorithm, REDUCE_ALGORITHMS, "reduce")
        result = yield from REDUCE_ALGORITHMS[algorithm](
            comm,
            nbytes,
            root=root,
            payload=payload,
            op=op,
            segsize=segsize,
            avx=self.avx,
        )
        return result

    def allreduce(self, comm, nbytes, payload=None, op=SUM, algorithm=None, segsize=None):
        if algorithm is None:
            algorithm, auto_seg = self.decide_allreduce(comm.size, nbytes)
            segsize = auto_seg if segsize is None else segsize
        self._check_alg(algorithm, ALLREDUCE_ALGORITHMS, "allreduce")
        result = yield from ALLREDUCE_ALGORITHMS[algorithm](
            comm, nbytes, payload=payload, op=op, segsize=segsize, avx=self.avx
        )
        return result

    def gather(self, comm, nbytes, root=0, payload=None):
        alg = self.decide_gather(comm.size, nbytes)
        result = yield from GATHER_ALGORITHMS[alg](
            comm, nbytes, root=root, payload=payload
        )
        return result

    def scatter(self, comm, nbytes, root=0, payload=None):
        alg = "binomial" if nbytes / max(comm.size, 1) <= 32 * KiB else "linear"
        result = yield from SCATTER_ALGORITHMS[alg](
            comm, nbytes, root=root, payload=payload
        )
        return result

    def allgather(self, comm, nbytes, payload=None):
        alg, _seg = self.decide_allgather(comm.size, nbytes)
        result = yield from ALLGATHER_ALGORITHMS[alg](comm, nbytes, payload=payload)
        return result

    def reduce_scatter(self, comm, nbytes, payload=None, op=SUM, algorithm=None):
        if algorithm is None:
            algorithm = self.decide_reduce_scatter(comm.size, nbytes)
        self._check_alg(algorithm, REDUCE_SCATTER_ALGORITHMS, "reduce_scatter")
        result = yield from REDUCE_SCATTER_ALGORITHMS[algorithm](
            comm, nbytes, payload=payload, op=op, avx=self.avx
        )
        return result

    def alltoall(self, comm, nbytes, payload=None, algorithm=None):
        if algorithm is None:
            algorithm = self.decide_alltoall(comm.size, nbytes)
        self._check_alg(algorithm, ALLTOALL_ALGORITHMS, "alltoall")
        result = yield from ALLTOALL_ALGORITHMS[algorithm](
            comm, nbytes, payload=payload
        )
        return result

    def barrier(self, comm):
        yield from BARRIER_ALGORITHMS["dissemination"](comm)
