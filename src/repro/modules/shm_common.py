"""Shared machinery for the intra-node (shared-memory) modules SM and SOLO.

These modules bypass the MPI point-to-point stack entirely: ranks
synchronize through node-local flags (simulated as engine events in a
per-call shared-state dict) and move data as memory-bus fluid flows.
``copies`` counts how many times each byte crosses the node's memory bus
-- the lever that separates SM's bounce-buffer pipe (write 2x + read 2x)
from SOLO's one-sided direct copy (read 2x only).
"""

from __future__ import annotations

from typing import Optional

from repro.colls.util import coll_tag_block
from repro.modules.base import CollModule
from repro.mpi.communicator import Communicator

__all__ = ["ShmModule"]


class ShmModule(CollModule):
    """Base for intra-node modules; provides state, sync and flow helpers."""

    #: per-call, per-rank setup cost (seconds)
    setup_overhead: float = 0.0

    def _begin(self, comm: Communicator) -> dict:
        """Validate intra-node scope and open the per-call shared state."""
        node = comm.node_of(0)
        if any(comm.node_of(r) != node for r in range(1, comm.size)):
            raise ValueError(
                f"{self.name} is an intra-node module; communicator spans "
                "multiple nodes"
            )
        key = (self.name, comm.cid, coll_tag_block(comm))
        state = comm.runtime.coll_state(key)
        state.setdefault("key", key)
        state.setdefault("node", node)
        state.setdefault("done_count", 0)
        return state

    @staticmethod
    def _event(comm: Communicator, state: dict, name: str):
        """Get-or-create a named sync flag in the shared state."""
        ev = state.get(name)
        if ev is None:
            ev = state[name] = comm.runtime.engine.event(name)
        return ev

    @staticmethod
    def _flow(comm: Communicator, state: dict, nbytes: float, copies: int,
              rate_cap: Optional[float] = None):
        """Memory-bus transfer on this call's node; yields until drained.

        Shared-memory copies are CPU-driven memcpys: the bytes occupy the
        node's memory bus (fluid flow) *and* the copying rank's CPU
        (progress server) for the minimum copy duration.  The CPU share
        is what makes `sb` contend with a concurrent `ib`'s progression
        on the same single-threaded rank -- the paper's imperfect-overlap
        factor (2) in section III-A2.
        """
        if nbytes <= 0:
            return
        from repro.sim.engine import AllOf

        engine = comm.runtime.engine
        node = comm.runtime.machine.node
        ev = engine.event("shm-flow")
        comm.runtime.fabric.membus_flow(
            state["node"],
            nbytes,
            lambda: ev.succeed(None),
            copies=copies,
            rate_cap=rate_cap,
        )
        cpu = comm.runtime.fabric.progress[comm.world_rank].request(
            nbytes / node.copy_bw
        )
        yield AllOf([ev, cpu])

    def _finish(self, comm: Communicator, state: dict) -> None:
        """Reference-count call completion; last rank drops the state."""
        state["done_count"] += 1
        if state["done_count"] == comm.size:
            comm.runtime.drop_coll_state(state["key"])

    def _setup(self, comm: Communicator):
        """Charge the per-rank setup cost on the progress server."""
        if self.setup_overhead > 0:
            yield from comm.compute(self.setup_overhead)

    @property
    def shm_latency(self) -> float:
        raise NotImplementedError

    @staticmethod
    def _latency(comm: Communicator):
        """One shared-memory flag-propagation delay."""
        from repro.sim.engine import Sleep

        yield Sleep(comm.runtime.machine.node.shm_latency)
