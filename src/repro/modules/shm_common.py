"""Shared machinery for the intra-node (shared-memory) modules SM and SOLO.

These modules bypass the MPI point-to-point stack entirely: ranks
synchronize through node-local flags (simulated as engine events in a
per-call shared-state dict) and move data as memory-bus fluid flows.
``copies`` counts how many times each byte crosses the node's memory bus
-- the lever that separates SM's bounce-buffer pipe (write 2x + read 2x)
from SOLO's one-sided direct copy (read 2x only).
"""

from __future__ import annotations

from typing import Optional

from repro.colls.util import coll_tag_block
from repro.modules.base import CollModule
from repro.mpi.communicator import Communicator
from repro.mpi.op import SUM

__all__ = ["ShmModule"]


class ShmModule(CollModule):
    """Base for intra-node modules; provides state, sync and flow helpers.

    Also provides generic shared-segment compositions of the collectives
    the concrete modules historically lacked (scatter, allgather,
    reduce_scatter, alltoall), parameterised by ``_ds_write_copies`` --
    how many bus crossings a writer pays to stage its data for readers
    (2 for SM's bounce buffer, 0 for SOLO's one-sided direct reads).
    """

    #: per-call, per-rank setup cost (seconds)
    setup_overhead: float = 0.0
    #: bus crossings per byte when a rank stages data for peers to read
    _ds_write_copies: int = 2

    def _begin(self, comm: Communicator) -> dict:
        """Validate intra-node scope and open the per-call shared state."""
        node = comm.node_of(0)
        if any(comm.node_of(r) != node for r in range(1, comm.size)):
            raise ValueError(
                f"{self.name} is an intra-node module; communicator spans "
                "multiple nodes"
            )
        key = (self.name, comm.cid, coll_tag_block(comm))
        state = comm.runtime.coll_state(key)
        state.setdefault("key", key)
        state.setdefault("node", node)
        state.setdefault("done_count", 0)
        return state

    @staticmethod
    def _event(comm: Communicator, state: dict, name: str):
        """Get-or-create a named sync flag in the shared state."""
        ev = state.get(name)
        if ev is None:
            ev = state[name] = comm.runtime.engine.event(name)
        return ev

    @staticmethod
    def _flow(comm: Communicator, state: dict, nbytes: float, copies: int,
              rate_cap: Optional[float] = None):
        """Memory-bus transfer on this call's node; yields until drained.

        Shared-memory copies are CPU-driven memcpys: the bytes occupy the
        node's memory bus (fluid flow) *and* the copying rank's CPU
        (progress server) for the minimum copy duration.  The CPU share
        is what makes `sb` contend with a concurrent `ib`'s progression
        on the same single-threaded rank -- the paper's imperfect-overlap
        factor (2) in section III-A2.
        """
        if nbytes <= 0:
            return
        from repro.sim.engine import AllOf

        engine = comm.runtime.engine
        node = comm.runtime.machine.node
        ev = engine.event("shm-flow")
        comm.runtime.fabric.membus_flow(
            state["node"],
            nbytes,
            lambda: ev.succeed(None),
            copies=copies,
            rate_cap=rate_cap,
        )
        cpu = comm.runtime.fabric.progress[comm.world_rank].request(
            nbytes / node.copy_bw
        )
        yield AllOf([ev, cpu])

    def _finish(self, comm: Communicator, state: dict) -> None:
        """Reference-count call completion; last rank drops the state."""
        state["done_count"] += 1
        if state["done_count"] == comm.size:
            comm.runtime.drop_coll_state(state["key"])

    def _setup(self, comm: Communicator):
        """Charge the per-rank setup cost on the progress server."""
        if self.setup_overhead > 0:
            yield from comm.compute(self.setup_overhead)

    @property
    def shm_latency(self) -> float:
        raise NotImplementedError

    @staticmethod
    def _latency(comm: Communicator):
        """One shared-memory flag-propagation delay."""
        from repro.sim.engine import Sleep

        yield Sleep(comm.runtime.machine.node.shm_latency)

    def _stage_cost(self, comm: Communicator, nbytes: float):
        """Per-call staging bookkeeping; SM overrides with fragment flags."""
        return
        yield  # pragma: no cover -- makes this a generator

    def _stage_write(self, comm: Communicator, state: dict, nbytes: float):
        """Make ``nbytes`` visible to peers: a bus write for bounce-buffer
        modules, just a flag propagation for one-sided ones."""
        if self._ds_write_copies > 0:
            yield from self._flow(
                comm, state, nbytes, copies=self._ds_write_copies,
                rate_cap=comm.runtime.machine.node.copy_bw,
            )
        else:
            yield from self._latency(comm)

    # -- generic composed collectives -------------------------------------------
    #
    # Data contracts match repro.colls: scatter/reduce_scatter take the
    # *total* byte count (``size`` equal blocks); allgather/alltoall take
    # one block.  Every generic op is element-exact when given integer
    # float64 payloads, which is what locks them into the payload oracle.

    def scatter(self, comm, nbytes, root=0, payload=None):
        """Root stages the full buffer; every rank reads its own block."""
        import numpy as np

        if comm.size == 1:
            return payload
        state = self._begin(comm)
        staged = self._event(comm, state, "scatter-staged")
        drained = self._event(comm, state, "scatter-drained")
        yield from self._setup(comm)
        per = nbytes / comm.size
        if comm.rank == root:
            state["payload"] = payload
            yield from self._stage_cost(comm, nbytes)
            yield from self._stage_write(comm, state, nbytes)
            staged.succeed(None)
            yield drained
        else:
            if payload is not None:
                raise ValueError("payload may only be supplied at the root")
            yield staged
            yield from self._stage_cost(comm, per)
            yield from self._flow(
                comm, state, per, copies=2,
                rate_cap=comm.runtime.machine.node.copy_bw,
            )
            state["readers_done"] = state.get("readers_done", 0) + 1
            if state["readers_done"] == comm.size - 1:
                drained.succeed(None)
        src = state.get("payload")
        self._finish(comm, state)
        if src is None:
            return None
        bounds = np.linspace(0, src.size, comm.size + 1).astype(int)
        return src[bounds[comm.rank] : bounds[comm.rank + 1]]

    def allgather(self, comm, nbytes, payload=None):
        """Gather at a fixed root, then broadcast the concatenation."""
        if comm.size == 1:
            return payload
        gathered = yield from self.gather(comm, nbytes, root=0, payload=payload)
        result = yield from self.bcast(
            comm, nbytes * comm.size, root=0,
            payload=gathered if comm.rank == 0 else None,
        )
        return result

    def reduce_scatter(self, comm, nbytes, payload=None, op=SUM):
        """Reduce to a fixed root, then scatter the blocks back out."""
        if comm.size == 1:
            return payload
        reduced = yield from self.reduce(
            comm, nbytes, root=0, payload=payload, op=op
        )
        result = yield from self.scatter(
            comm, nbytes, root=0,
            payload=reduced if comm.rank == 0 else None,
        )
        return result

    def alltoall(self, comm, nbytes, payload=None):
        """All ranks stage their send buffers, then read foreign blocks.

        ``nbytes`` is one rank-to-rank block; each rank stages ``size``
        blocks and reads the ``size - 1`` blocks addressed to it.
        """
        import numpy as np

        if comm.size == 1:
            return payload
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_written = self._event(comm, state, "a2a-written")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        total = nbytes * comm.size
        yield from self._stage_cost(comm, total)
        yield from self._stage_write(comm, state, total)
        state["written"] = state.get("written", 0) + 1
        if state["written"] == comm.size:
            all_written.succeed(None)
        yield all_written
        yield from self._stage_cost(comm, (comm.size - 1) * nbytes)
        yield from self._flow(
            comm, state, (comm.size - 1) * nbytes, copies=2,
            rate_cap=comm.runtime.machine.node.copy_bw,
        )
        parts = []
        for r in range(comm.size):
            src = contrib.get(r)
            if src is None:
                parts.append(None)
                continue
            bounds = np.linspace(0, src.size, comm.size + 1).astype(int)
            parts.append(src[bounds[comm.rank] : bounds[comm.rank + 1]])
        self._finish(comm, state)
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts)
