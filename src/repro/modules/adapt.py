"""The `adapt` module: event-driven non-blocking collectives [28].

ADAPT is the paper authors' earlier framework: each point-to-point
completion immediately triggers the next action (no schedule rounds), so
pipelined trees keep flowing without waiting for the caller to re-enter
the progress engine.  In HAN's Table II, ADAPT is the submodule that
exposes algorithm choice (`ibalg`/`iralg` in {chain, binary, binomial})
and internal segment size (`ibs`/`irs`), and its reductions use AVX.
"""

from __future__ import annotations

from repro.colls.bcast import _bcast_tree
from repro.colls.trees import binary_tree, binomial_tree, chain_tree
from repro.colls.util import (
    Segmenter,
    charge_reduce,
    coll_tag_block,
    combine,
    unvrank,
    vrank,
)
from repro.modules.base import CollModule
from repro.mpi.op import SUM

__all__ = ["AdaptModule"]

_TREES = {"chain": chain_tree, "binary": binary_tree, "binomial": binomial_tree}
_DEFAULT_SEG = 128 * 1024


class AdaptModule(CollModule):
    name = "adapt"
    avx = True  # vectorized reduction kernels (paper IV-A2)
    nonblocking = True
    bcast_algorithms = ("chain", "binary", "binomial")
    reduce_algorithms = ("chain", "binary", "binomial")

    # -- blocking wrappers -----------------------------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None):
        req = self.ibcast(comm, nbytes, root, payload, algorithm, segsize)
        result = yield req.event
        return result

    def reduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, algorithm=None, segsize=None
    ):
        req = self.ireduce(comm, nbytes, root, payload, op, algorithm, segsize)
        result = yield req.event
        return result

    # -- non-blocking collectives -----------------------------------------------------------

    def ibcast(self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None):
        algorithm = algorithm or "binomial"
        self._check_alg(algorithm, self.bcast_algorithms, "ibcast")
        segsize = _DEFAULT_SEG if segsize is None else segsize
        tag = coll_tag_block(comm)
        gen = _bcast_tree(
            comm, nbytes, root, payload, segsize, _TREES[algorithm], tag
        )
        return self._spawn(comm, gen, "adapt.ibcast")

    def ireduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, algorithm=None, segsize=None
    ):
        algorithm = algorithm or "binomial"
        self._check_alg(algorithm, self.reduce_algorithms, "ireduce")
        segsize = _DEFAULT_SEG if segsize is None else segsize
        tag = coll_tag_block(comm)
        gen = self._reduce_tree(
            comm, nbytes, root, payload, op, segsize, _TREES[algorithm], tag
        )
        return self._spawn(comm, gen, "adapt.ireduce")

    # -- event-driven pipelined tree reduce -------------------------------------------

    def _reduce_tree(self, comm, nbytes, root, payload, op, segsize, tree_fn, tag):
        """Segment-pipelined reduction with pre-posted child receives.

        Unlike the blocking reference in :mod:`repro.colls.reduce`, all
        child receives for all segments are pre-posted (the event-driven
        design reacts to whichever arrives), and AVX kernels are used.
        """
        size, rank = comm.size, comm.rank
        if size == 1:
            return payload
        v = vrank(rank, root, size)
        tree = tree_fn(v, size)
        seg = Segmenter(nbytes, segsize, payload)
        children = [unvrank(c, root, size) for c in tree.children]
        # Pre-post every (segment, child) receive up front.
        reqs = {
            (i, c): comm.irecv(source=c, tag=tag + 1 + i)
            for i in range(seg.nseg)
            for c in children
        }
        out_pieces = []
        for i in range(seg.nseg):
            acc = seg.seg_view(i)
            nb = seg.seg_nbytes(i)
            if children:
                msgs = yield from comm.waitall([reqs[(i, c)] for c in children])
                for msg in msgs:
                    yield from charge_reduce(comm, nb, self.avx)
                    acc = combine(op, acc, msg.payload)
            if tree.parent >= 0:
                yield from comm.send(
                    unvrank(tree.parent, root, size),
                    payload=acc,
                    nbytes=nb,
                    tag=tag + 1 + i,
                )
            else:
                out_pieces.append(acc)
        if tree.parent >= 0:
            return None
        if payload is not None:
            import numpy as np

            return (
                out_pieces[0] if len(out_pieces) == 1 else np.concatenate(out_pieces)
            )
        return None
