"""The `gpu` module: intra-node GPU collectives (paper future work).

The conclusion announces: "We also plan to add a new submodule to support
intra-node GPU collective operations and combine it with the existing
inter-node submodules to adapt HAN to GPU-based machines."  This module
is that submodule: one rank drives one GPU, device buffers move over the
node's NVLink fabric, and host staging (for the inter-node level, which
still runs over the NICs from host memory) crosses PCIe.

Semantics mirror SM/SOLO so HAN can plug it in as `smod="gpu"`:

- ``bcast``: the leader holds the segment in *host* memory (it arrived
  via `ib`); one H2D staging transfer, then an NVLink fan-out to the
  other ranks' devices.  The returned payload is device-resident.
- ``reduce``: chunk-parallel NVLink reduction (NCCL-style) at the GPU
  kernel rate, then one D2H staging so the leader can feed `ir`.
- ``allreduce``: NVLink ring reduction without any host staging.

Kernel/copy launch latency (`gpu_latency`) is the small-message handicap
-- GPUs want big transfers, exactly like SOLO but more so.
"""

from __future__ import annotations

import math

from repro.modules.shm_common import ShmModule
from repro.mpi.op import SUM

__all__ = ["GpuModule"]


class GpuModule(ShmModule):
    name = "gpu"
    avx = True  # reductions run on-device, far above CPU AVX rates
    nonblocking = False

    def __init__(self, setup_overhead: float = 1.0e-6):
        self.setup_overhead = setup_overhead

    # -- helpers ---------------------------------------------------------------

    def _gpu(self, comm, state, nbytes, path):
        if nbytes <= 0:
            return
        ev = comm.runtime.engine.event(f"gpu-{path}")
        comm.runtime.fabric.gpu_flow(
            state["node"], nbytes, lambda: ev.succeed(None), path=path
        )
        yield ev

    def _launch(self, comm):
        """Kernel/copy launch latency on the driving rank's CPU."""
        yield from comm.compute(comm.runtime.machine.node.gpu_latency)

    def _check_gpus(self, comm):
        node = comm.runtime.machine.node
        if node.gpus == 0:
            raise ValueError("gpu module needs GPU nodes (NodeSpec.gpus > 0)")
        if comm.size > node.gpus:
            raise ValueError(
                f"gpu module drives one GPU per rank: {comm.size} ranks > "
                f"{node.gpus} GPUs"
            )

    def _gpu_reduce(self, comm, nbytes):
        node = comm.runtime.machine.node
        yield from comm.compute(nbytes / node.gpu_reduce_bw)

    # -- collectives ---------------------------------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None,
              segsize=None):
        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        staged = self._event(comm, state, "bcast-staged")
        drained = self._event(comm, state, "bcast-drained")
        yield from self._setup(comm)
        if comm.rank == root:
            state["payload"] = payload
            yield from self._launch(comm)
            # host segment (delivered by ib) -> device
            yield from self._gpu(comm, state, nbytes, "h2d")
            staged.succeed(None)
            result = payload
            yield drained
        else:
            if payload is not None:
                raise ValueError("payload may only be supplied at the root")
            yield staged
            yield from self._launch(comm)
            # fan-out over the NVLink fabric (aggregate resource: all
            # reader flows share it, like a broadcast ring)
            yield from self._gpu(comm, state, nbytes, "nvlink")
            result = state.get("payload")
            state["readers_done"] = state.get("readers_done", 0) + 1
            if state["readers_done"] == comm.size - 1:
                drained.succeed(None)
        self._finish(comm, state)
        return result

    def reduce(self, comm, nbytes, root=0, payload=None, op=SUM,
               algorithm=None, segsize=None):
        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "reduce-ready")
        result_ready = self._event(comm, state, "reduce-result")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        yield all_ready
        # chunk-parallel: every GPU pulls the other P-1 chunks of its
        # 1/P slice over NVLink and reduces at kernel rate
        size = comm.size
        chunk = nbytes / size
        yield from self._launch(comm)
        yield from self._gpu(comm, state, (size - 1) * chunk, "nvlink")
        yield from self._gpu_reduce(comm, (size - 1) * chunk)
        state["chunks_done"] = state.get("chunks_done", 0) + 1
        if state["chunks_done"] == size:
            vals = [contrib[r] for r in range(size)]
            if all(v is not None for v in vals):
                acc = vals[0]
                for v in vals[1:]:
                    acc = op(acc, v)
            else:
                acc = None
            state["result"] = acc
            result_ready.succeed(None)
        if comm.rank == root:
            yield result_ready
            # gather the reduced slices to the root GPU, then stage the
            # full vector to host memory so `ir` can take over
            yield from self._gpu(
                comm, state, (size - 1) * chunk, "nvlink"
            )
            yield from self._gpu(comm, state, nbytes, "d2h")
            result = state.get("result")
        else:
            result = None
        self._finish(comm, state)
        return result

    def allreduce(self, comm, nbytes, payload=None, op=SUM, algorithm=None,
                  segsize=None):
        """Pure-NVLink ring allreduce (no host staging): ~2x the bytes of
        the vector cross the fabric per GPU."""
        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "ar-ready")
        done = self._event(comm, state, "ar-done")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        yield all_ready
        size = comm.size
        ring_bytes = 2.0 * nbytes * (size - 1) / size
        yield from self._launch(comm)
        yield from self._gpu(comm, state, ring_bytes, "nvlink")
        yield from self._gpu_reduce(comm, nbytes * (size - 1) / size)
        state["done"] = state.get("done", 0) + 1
        if state["done"] == size:
            vals = [contrib[r] for r in range(size)]
            if all(v is not None for v in vals):
                acc = vals[0]
                for v in vals[1:]:
                    acc = op(acc, v)
            else:
                acc = None
            state["result"] = acc
            done.succeed(None)
        yield done
        result = state.get("result")
        self._finish(comm, state)
        return result

    def barrier(self, comm):
        if comm.size == 1:
            return
        self._check_gpus(comm)
        state = self._begin(comm)
        release = self._event(comm, state, "barrier-release")
        yield from self._setup(comm)
        yield from self._latency(comm)
        state["arrived"] = state.get("arrived", 0) + 1
        if state["arrived"] == comm.size:
            release.succeed(None)
        yield release
        self._finish(comm, state)

    def frag_count(self, nbytes: float) -> int:
        return max(1, math.ceil(nbytes / (1 << 20)))
