"""The `gpu` module: intra-node GPU collectives (paper future work).

The conclusion announces: "We also plan to add a new submodule to support
intra-node GPU collective operations and combine it with the existing
inter-node submodules to adapt HAN to GPU-based machines."  This module
is that submodule: one rank drives one GPU, device buffers move over the
node's NVLink fabric, and host staging (for the inter-node level, which
still runs over the NICs from host memory) crosses PCIe.

Semantics mirror SM/SOLO so HAN can plug it in as `smod="gpu"`:

- ``bcast``: the leader holds the segment in *host* memory (it arrived
  via `ib`); one H2D staging transfer, then an NVLink fan-out to the
  other ranks' devices.  The returned payload is device-resident.
- ``reduce``: chunk-parallel NVLink reduction (NCCL-style) at the GPU
  kernel rate, then one D2H staging so the leader can feed `ir`.
- ``allreduce``: NVLink ring reduction without any host staging.

Kernel/copy launch latency (`gpu_latency`) is the small-message handicap
-- GPUs want big transfers, exactly like SOLO but more so.
"""

from __future__ import annotations

import math

from repro.modules.shm_common import ShmModule
from repro.mpi.op import SUM

__all__ = ["GpuModule"]


class GpuModule(ShmModule):
    name = "gpu"
    avx = True  # reductions run on-device, far above CPU AVX rates
    nonblocking = False
    #: on split-fabric nodes HAN swaps this module for the fabric/host
    #: composite (repro.core.fabric_tier) instead of calling it flat
    fabric_tier = True

    def __init__(self, setup_overhead: float = 1.0e-6):
        self.setup_overhead = setup_overhead

    # -- helpers ---------------------------------------------------------------

    def _gpu(self, comm, state, nbytes, path):
        if nbytes <= 0:
            return
        fabric = comm.runtime.fabric
        ev = comm.runtime.engine.event(f"gpu-{path}")
        # NVLink flows ride the calling rank's own island; on split-fabric
        # nodes a comm spanning islands puts each rank's traffic on its
        # local fabric (the fabric-aware composite in repro.core routes
        # cross-island bytes over PCIe instead of calling this flat path).
        fabric.gpu_flow(
            state["node"], nbytes, lambda: ev.succeed(None), path=path,
            domain=fabric.fabric_domain_of(comm.world_rank),
        )
        yield ev

    def _launch(self, comm):
        """Kernel/copy launch latency on the driving rank's CPU."""
        yield from comm.compute(comm.runtime.machine.node.gpu_latency)

    def _check_gpus(self, comm):
        node = comm.runtime.machine.node
        if node.gpus == 0:
            raise ValueError("gpu module needs GPU nodes (NodeSpec.gpus > 0)")
        if comm.size > node.gpus:
            raise ValueError(
                f"gpu module drives one GPU per rank: {comm.size} ranks > "
                f"{node.gpus} GPUs"
            )
        if node.fabric_domains > 1:
            fabric = comm.runtime.fabric
            domains = {fabric.fabric_domain_of(w) for w in comm.group}
            per_domain = node.gpus // node.fabric_domains
            if len(domains) == 1 and comm.size > per_domain:
                raise ValueError(
                    f"gpu module: {comm.size} ranks confined to one NVLink "
                    f"island of {per_domain} GPUs"
                )

    def _gpu_reduce(self, comm, nbytes):
        node = comm.runtime.machine.node
        yield from comm.compute(nbytes / node.gpu_reduce_bw)

    # -- collectives ---------------------------------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None,
              segsize=None):
        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        staged = self._event(comm, state, "bcast-staged")
        drained = self._event(comm, state, "bcast-drained")
        yield from self._setup(comm)
        if comm.rank == root:
            state["payload"] = payload
            yield from self._launch(comm)
            # host segment (delivered by ib) -> device
            yield from self._gpu(comm, state, nbytes, "h2d")
            staged.succeed(None)
            result = payload
            yield drained
        else:
            if payload is not None:
                raise ValueError("payload may only be supplied at the root")
            yield staged
            yield from self._launch(comm)
            # fan-out over the NVLink fabric (aggregate resource: all
            # reader flows share it, like a broadcast ring)
            yield from self._gpu(comm, state, nbytes, "nvlink")
            result = state.get("payload")
            state["readers_done"] = state.get("readers_done", 0) + 1
            if state["readers_done"] == comm.size - 1:
                drained.succeed(None)
        self._finish(comm, state)
        return result

    def reduce(self, comm, nbytes, root=0, payload=None, op=SUM,
               algorithm=None, segsize=None):
        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "reduce-ready")
        result_ready = self._event(comm, state, "reduce-result")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        yield all_ready
        # chunk-parallel: every GPU pulls the other P-1 chunks of its
        # 1/P slice over NVLink and reduces at kernel rate
        size = comm.size
        chunk = nbytes / size
        yield from self._launch(comm)
        yield from self._gpu(comm, state, (size - 1) * chunk, "nvlink")
        yield from self._gpu_reduce(comm, (size - 1) * chunk)
        state["chunks_done"] = state.get("chunks_done", 0) + 1
        if state["chunks_done"] == size:
            vals = [contrib[r] for r in range(size)]
            if all(v is not None for v in vals):
                acc = vals[0]
                for v in vals[1:]:
                    acc = op(acc, v)
            else:
                acc = None
            state["result"] = acc
            result_ready.succeed(None)
        if comm.rank == root:
            yield result_ready
            # gather the reduced slices to the root GPU, then stage the
            # full vector to host memory so `ir` can take over
            yield from self._gpu(
                comm, state, (size - 1) * chunk, "nvlink"
            )
            yield from self._gpu(comm, state, nbytes, "d2h")
            result = state.get("result")
        else:
            result = None
        self._finish(comm, state)
        return result

    def allreduce(self, comm, nbytes, payload=None, op=SUM, algorithm=None,
                  segsize=None):
        """Pure-NVLink ring allreduce (no host staging): ~2x the bytes of
        the vector cross the fabric per GPU."""
        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "ar-ready")
        done = self._event(comm, state, "ar-done")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        yield all_ready
        size = comm.size
        ring_bytes = 2.0 * nbytes * (size - 1) / size
        yield from self._launch(comm)
        yield from self._gpu(comm, state, ring_bytes, "nvlink")
        yield from self._gpu_reduce(comm, nbytes * (size - 1) / size)
        state["done"] = state.get("done", 0) + 1
        if state["done"] == size:
            vals = [contrib[r] for r in range(size)]
            if all(v is not None for v in vals):
                acc = vals[0]
                for v in vals[1:]:
                    acc = op(acc, v)
            else:
                acc = None
            state["result"] = acc
            done.succeed(None)
        yield done
        result = state.get("result")
        self._finish(comm, state)
        return result

    # -- fallback collectives (consistent GPU-staged pattern) -----------------------
    #
    # Each follows the same shape as the core three: launch latency,
    # all-ready flag sync, NVLink flows for device bytes, PCIe staging
    # only where the result must land in host memory for an inter-node
    # stage.  Data contracts match repro.colls (gather/allgather/alltoall
    # take one block, scatter/reduce_scatter the total).

    def gather(self, comm, nbytes, root=0, payload=None):
        """Root GPU pulls every peer block over NVLink, then stages the
        concatenation to host memory (for HAN's inter-node `ig`)."""
        import numpy as np

        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "gather-ready")
        done = self._event(comm, state, "gather-done")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        if comm.rank == root:
            yield all_ready
            yield from self._launch(comm)
            yield from self._gpu(comm, state, (comm.size - 1) * nbytes, "nvlink")
            yield from self._gpu(comm, state, comm.size * nbytes, "d2h")
            parts = [contrib.get(r) for r in range(comm.size)]
            done.succeed(None)
            self._finish(comm, state)
            if any(p is None for p in parts):
                return None
            return np.concatenate(parts)
        yield done
        self._finish(comm, state)
        return None

    def scatter(self, comm, nbytes, root=0, payload=None):
        """Root stages the full buffer to its device, peers pull their
        blocks over NVLink; results are device-resident."""
        import numpy as np

        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        staged = self._event(comm, state, "scatter-staged")
        drained = self._event(comm, state, "scatter-drained")
        yield from self._setup(comm)
        per = nbytes / comm.size
        if comm.rank == root:
            state["payload"] = payload
            yield from self._launch(comm)
            yield from self._gpu(comm, state, nbytes, "h2d")
            staged.succeed(None)
            yield drained
        else:
            if payload is not None:
                raise ValueError("payload may only be supplied at the root")
            yield staged
            yield from self._launch(comm)
            yield from self._gpu(comm, state, per, "nvlink")
            state["readers_done"] = state.get("readers_done", 0) + 1
            if state["readers_done"] == comm.size - 1:
                drained.succeed(None)
        src = state.get("payload")
        self._finish(comm, state)
        if src is None:
            return None
        bounds = np.linspace(0, src.size, comm.size + 1).astype(int)
        return src[bounds[comm.rank] : bounds[comm.rank + 1]]

    def allgather(self, comm, nbytes, payload=None):
        """NVLink ring allgather, fully device-resident: every GPU pulls
        the size-1 foreign blocks around the ring."""
        import numpy as np

        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "ag-ready")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        yield all_ready
        yield from self._launch(comm)
        yield from self._gpu(comm, state, (comm.size - 1) * nbytes, "nvlink")
        parts = [contrib.get(r) for r in range(comm.size)]
        self._finish(comm, state)
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts)

    def reduce_scatter(self, comm, nbytes, payload=None, op=SUM):
        """Ring reduce-scatter (the first phase of the ring allreduce):
        nbytes*(P-1)/P cross the fabric per GPU, reductions at kernel
        rate; every rank keeps its own reduced block on device."""
        import numpy as np

        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "rs-ready")
        done = self._event(comm, state, "rs-done")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        yield all_ready
        size = comm.size
        ring_bytes = nbytes * (size - 1) / size
        yield from self._launch(comm)
        yield from self._gpu(comm, state, ring_bytes, "nvlink")
        yield from self._gpu_reduce(comm, ring_bytes)
        state["done"] = state.get("done", 0) + 1
        if state["done"] == size:
            vals = [contrib[r] for r in range(size)]
            if all(v is not None for v in vals):
                acc = vals[0]
                for v in vals[1:]:
                    acc = op(acc, v)
            else:
                acc = None
            state["result"] = acc
            done.succeed(None)
        yield done
        acc = state.get("result")
        self._finish(comm, state)
        if acc is None:
            return None
        bounds = np.linspace(0, acc.size, size + 1).astype(int)
        return acc[bounds[comm.rank] : bounds[comm.rank + 1]]

    def alltoall(self, comm, nbytes, payload=None):
        """Direct NVLink exchange: every GPU pulls its size-1 foreign
        blocks once all peers exposed their send buffers."""
        import numpy as np

        if comm.size == 1:
            return payload
        self._check_gpus(comm)
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        all_ready = self._event(comm, state, "a2a-ready")
        yield from self._setup(comm)
        contrib[comm.rank] = payload
        yield from self._latency(comm)
        state["ready"] = state.get("ready", 0) + 1
        if state["ready"] == comm.size:
            all_ready.succeed(None)
        yield all_ready
        yield from self._launch(comm)
        yield from self._gpu(comm, state, (comm.size - 1) * nbytes, "nvlink")
        parts = []
        for r in range(comm.size):
            src = contrib.get(r)
            if src is None:
                parts.append(None)
                continue
            bounds = np.linspace(0, src.size, comm.size + 1).astype(int)
            parts.append(src[bounds[comm.rank] : bounds[comm.rank + 1]])
        self._finish(comm, state)
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts)

    def barrier(self, comm):
        if comm.size == 1:
            return
        self._check_gpus(comm)
        state = self._begin(comm)
        release = self._event(comm, state, "barrier-release")
        yield from self._setup(comm)
        yield from self._latency(comm)
        state["arrived"] = state.get("arrived", 0) + 1
        if state["arrived"] == comm.size:
            release.succeed(None)
        yield release
        self._finish(comm, state)

    def frag_count(self, nbytes: float) -> int:
        return max(1, math.ceil(nbytes / (1 << 20)))
