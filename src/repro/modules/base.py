"""Collective-module interface.

Blocking entry points are generators (``yield from module.bcast(...)``);
non-blocking entry points return a :class:`~repro.mpi.Request` backed by
a child simulated process on the same rank -- the child's software costs
queue on the rank's serial progress server, so "non-blocking" work still
contends for the CPU exactly as the paper's single-threaded analysis
requires (section III-A2).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.mpi.communicator import Communicator
from repro.mpi.op import SUM
from repro.mpi.request import Request

__all__ = ["CollModule", "NotSupportedError"]


class NotSupportedError(NotImplementedError):
    """The module does not implement this collective (or variant)."""


class CollModule:
    """Base class; subclasses override what they support."""

    #: module name, matches the registry key
    name: str = "base"
    #: reductions run at the AVX rate (paper IV-A2: only SOLO and ADAPT)
    avx: bool = False
    #: supports non-blocking collectives (paper: only Libnbc and ADAPT)
    nonblocking: bool = False
    #: algorithm names accepted by bcast/ibcast (empty -> no choice)
    bcast_algorithms: tuple[str, ...] = ()
    #: algorithm names accepted by reduce/ireduce
    reduce_algorithms: tuple[str, ...] = ()

    # -- blocking interface ----------------------------------------------------

    def bcast(
        self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None
    ) -> Generator:
        raise NotSupportedError(f"{self.name} has no bcast")

    def reduce(
        self,
        comm,
        nbytes,
        root=0,
        payload=None,
        op=SUM,
        algorithm=None,
        segsize=None,
    ) -> Generator:
        raise NotSupportedError(f"{self.name} has no reduce")

    def allreduce(
        self, comm, nbytes, payload=None, op=SUM, algorithm=None, segsize=None
    ) -> Generator:
        raise NotSupportedError(f"{self.name} has no allreduce")

    def gather(self, comm, nbytes, root=0, payload=None) -> Generator:
        raise NotSupportedError(f"{self.name} has no gather")

    def scatter(self, comm, nbytes, root=0, payload=None) -> Generator:
        raise NotSupportedError(f"{self.name} has no scatter")

    def allgather(self, comm, nbytes, payload=None) -> Generator:
        raise NotSupportedError(f"{self.name} has no allgather")

    def reduce_scatter(self, comm, nbytes, payload=None, op=SUM) -> Generator:
        raise NotSupportedError(f"{self.name} has no reduce_scatter")

    def alltoall(self, comm, nbytes, payload=None) -> Generator:
        raise NotSupportedError(f"{self.name} has no alltoall")

    def barrier(self, comm) -> Generator:
        raise NotSupportedError(f"{self.name} has no barrier")

    # -- non-blocking interface ----------------------------------------------------

    def ibcast(
        self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None
    ) -> Request:
        raise NotSupportedError(f"{self.name} has no ibcast")

    def ireduce(
        self,
        comm,
        nbytes,
        root=0,
        payload=None,
        op=SUM,
        algorithm=None,
        segsize=None,
    ) -> Request:
        raise NotSupportedError(f"{self.name} has no ireduce")

    # -- helpers ----------------------------------------------------

    @staticmethod
    def _spawn(comm: Communicator, gen: Generator, kind: str) -> Request:
        """Run ``gen`` as a concurrent child of this rank; Request wraps it."""
        obs = comm.runtime.engine.obs
        if obs is not None:
            gen = _observed_schedule(obs, comm, gen, kind)
        proc = comm.runtime.engine.spawn_eager(
            gen, name=f"{kind}@w{comm.world_rank}"
        )
        return Request(proc.done_event, kind)

    def _check_alg(self, algorithm: Optional[str], allowed, what: str) -> None:
        if algorithm is not None and algorithm not in allowed:
            raise ValueError(
                f"{self.name} {what} supports {sorted(allowed)}, "
                f"got {algorithm!r}"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


def _observed_schedule(obs, comm: Communicator, gen: Generator, kind: str):
    """Wrap a non-blocking schedule in an observability span.

    The span covers the schedule's whole lifetime on the issuing rank's
    track (category ``module``), closing even if the schedule dies.
    """
    sid = obs.begin(f"rank{comm.world_rank}", kind, "module")
    try:
        result = yield from gen
    finally:
        obs.end(sid)
    return result
