"""The `sm` module: bounce-buffer shared-memory collectives.

Open MPI's ``coll/sm``: ranks exchange data through a pre-mapped shared
segment of small fragments.  Setup is nearly free (the segment and its
flags are persistent), but every byte crosses the memory bus four times
on its way root -> shared buffer -> receiver (write: read-src+write-shm;
read: read-shm+write-dst) and the per-fragment flag dance adds a small
cost proportional to ceil(m / fragment).

Net effect, as the paper states (section III): "SM has better performance
for small messages while SOLO performs significantly better as the
communication size increases".  Reductions are scalar (no AVX, IV-A2).
"""

from __future__ import annotations

import math

from repro.modules.shm_common import ShmModule
from repro.mpi.op import SUM

__all__ = ["SMModule"]


class SMModule(ShmModule):
    name = "sm"
    avx = False
    nonblocking = False
    _ds_write_copies = 2  # bounce buffer: staging writes cross the bus

    def __init__(
        self,
        fragment: float = 8 * 1024,
        frag_overhead: float = 0.05e-6,
        setup_overhead: float = 0.2e-6,
        pipe_efficiency: float = 0.6,
    ):
        self.fragment = fragment
        self.frag_overhead = frag_overhead
        self.setup_overhead = setup_overhead
        #: fraction of peak copy bandwidth a reader achieves through the
        #: fragment pipeline (flag polling between 8KB fragments); this
        #: is SM's large-message handicap vs SOLO's single big copy.
        self.pipe_efficiency = pipe_efficiency

    def _reader_cap(self, comm) -> float:
        return comm.runtime.machine.node.copy_bw * self.pipe_efficiency

    def _frag_cost(self, comm, nbytes: float):
        """Per-fragment flag handling, charged as one CPU lump."""
        nfrag = max(1, math.ceil(nbytes / self.fragment))
        yield from comm.compute(nfrag * self.frag_overhead)

    def _stage_cost(self, comm, nbytes: float):
        """Generic shared-segment ops pay SM's per-fragment flag dance."""
        yield from self._frag_cost(comm, nbytes)

    def _pipe_head_delay(self, comm, nbytes: float) -> float:
        """Time until the first fragment is available to readers."""
        node = comm.runtime.machine.node
        first = min(self.fragment, nbytes)
        return node.shm_latency + first / node.copy_bw

    # -- bcast ----------------------------------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None):
        if comm.size == 1:
            return payload
        state = self._begin(comm)
        ready = self._event(comm, state, "bcast-ready")
        yield from self._setup(comm)
        if comm.rank == root:
            state["payload"] = payload
            # Readers may start as soon as the first fragment landed.
            comm.runtime.engine.schedule(
                self._pipe_head_delay(comm, nbytes), lambda: ready.succeed(None)
            )
            yield from self._frag_cost(comm, nbytes)
            yield from self._flow(comm, state, nbytes, copies=2,
                                  rate_cap=comm.runtime.machine.node.copy_bw)
            result = payload
            # Bounce-buffer backpressure: the fragment pool is finite, so
            # the root cannot retire the call until readers drained it.
            drained = self._event(comm, state, "bcast-drained")
            yield drained
        else:
            if payload is not None:
                raise ValueError("payload may only be supplied at the root")
            yield ready
            yield from self._frag_cost(comm, nbytes)
            # the bounce fragment is cache-resident when read: one bus
            # crossing (the write to the destination buffer)
            yield from self._flow(comm, state, nbytes, copies=1,
                                  rate_cap=self._reader_cap(comm))
            result = state.get("payload")
            state["readers_done"] = state.get("readers_done", 0) + 1
            if state["readers_done"] == comm.size - 1:
                self._event(comm, state, "bcast-drained").succeed(None)
        self._finish(comm, state)
        return result

    # -- reduce ----------------------------------------------------------------

    def reduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, algorithm=None, segsize=None
    ):
        if comm.size == 1:
            return payload
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        written = [
            self._event(comm, state, f"reduce-w{r}") for r in range(comm.size)
        ]
        yield from self._setup(comm)
        node = comm.runtime.machine.node
        if comm.rank != root:
            contrib[comm.rank] = payload
            yield from self._frag_cost(comm, nbytes)
            yield from self._flow(comm, state, nbytes, copies=2,
                                  rate_cap=node.copy_bw)
            written[comm.rank].succeed(None)
            self._finish(comm, state)
            return None
        # Root drains contributions in rank order: read + scalar combine.
        acc = payload
        yield from self._frag_cost(comm, nbytes)
        for r in range(comm.size):
            if r == root:
                continue
            yield written[r]
            yield from self._flow(comm, state, nbytes, copies=2,
                                  rate_cap=node.copy_bw)
            yield from comm.reduce_compute(nbytes, avx=self.avx)
            incoming = contrib.get(r)
            if acc is not None and incoming is not None:
                acc = op(acc, incoming)
        self._finish(comm, state)
        return acc

    # -- composed collectives ----------------------------------------------------------------

    def allreduce(self, comm, nbytes, payload=None, op=SUM, algorithm=None, segsize=None):
        reduced = yield from self.reduce(comm, nbytes, root=0, payload=payload, op=op)
        result = yield from self.bcast(
            comm, nbytes, root=0, payload=reduced if comm.rank == 0 else None
        )
        return result

    def gather(self, comm, nbytes, root=0, payload=None):
        """Children write blocks to the shared segment; root reads them all."""
        import numpy as np

        if comm.size == 1:
            return payload
        state = self._begin(comm)
        contrib = state.setdefault("contrib", {})
        written = [self._event(comm, state, f"gather-w{r}") for r in range(comm.size)]
        yield from self._setup(comm)
        node = comm.runtime.machine.node
        if comm.rank != root:
            contrib[comm.rank] = payload
            yield from self._frag_cost(comm, nbytes)
            yield from self._flow(comm, state, nbytes, copies=2, rate_cap=node.copy_bw)
            written[comm.rank].succeed(None)
            self._finish(comm, state)
            return None
        contrib[root] = payload
        parts = []
        for r in range(comm.size):
            if r != root:
                yield written[r]
                yield from self._flow(
                    comm, state, nbytes, copies=2, rate_cap=node.copy_bw
                )
            parts.append(contrib.get(r))
        self._finish(comm, state)
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts)

    def barrier(self, comm):
        """Flag counter in the shared segment."""
        if comm.size == 1:
            return
        state = self._begin(comm)
        release = self._event(comm, state, "barrier-release")
        yield from self._setup(comm)
        yield from self._latency(comm)
        state["arrived"] = state.get("arrived", 0) + 1
        if state["arrived"] == comm.size:
            release.succeed(None)
        yield release
        yield from self._latency(comm)
        self._finish(comm, state)
