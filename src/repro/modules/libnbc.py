"""The `libnbc` module: schedule-based non-blocking collectives [31].

Libnbc compiles a collective into *rounds* of point-to-point operations;
a round can only start once the previous round's operations completed and
the process has entered the progress engine again.  Compared to ADAPT's
event-driven design this costs an extra progression delay per round and
prevents intra-collective pipelining -- which is exactly why the paper's
autotuner prefers ADAPT for large messages while Libnbc stays competitive
for small ones (no per-segment machinery).

No algorithm selection (binomial trees only -- the "if supported" fields
of Table II stay empty for Libnbc) and no AVX reductions (paper IV-A2).
"""

from __future__ import annotations

from repro.colls.trees import binomial_tree
from repro.colls.util import charge_reduce, coll_tag_block, combine, unvrank, vrank
from repro.modules.base import CollModule
from repro.mpi.op import SUM

__all__ = ["LibnbcModule"]


class LibnbcModule(CollModule):
    name = "libnbc"
    avx = False
    nonblocking = True
    bcast_algorithms = ("binomial",)
    reduce_algorithms = ("binomial",)

    def __init__(self, round_overhead: float = 0.6e-6):
        #: progression cost charged per schedule round (test/wait driven)
        self.round_overhead = round_overhead

    # -- blocking wrappers (ibcast + wait) -----------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None):
        req = self.ibcast(comm, nbytes, root, payload, algorithm, segsize)
        result = yield req.event
        return result

    def reduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, algorithm=None, segsize=None
    ):
        req = self.ireduce(comm, nbytes, root, payload, op, algorithm, segsize)
        result = yield req.event
        return result

    # -- non-blocking collectives ----------------------------------------------------

    def ibcast(self, comm, nbytes, root=0, payload=None, algorithm=None, segsize=None):
        self._check_alg(algorithm, self.bcast_algorithms, "ibcast")
        return self._spawn(
            comm, self._sched_bcast(comm, nbytes, root, payload), "libnbc.ibcast"
        )

    def ireduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, algorithm=None, segsize=None
    ):
        self._check_alg(algorithm, self.reduce_algorithms, "ireduce")
        return self._spawn(
            comm, self._sched_reduce(comm, nbytes, root, payload, op), "libnbc.ireduce"
        )

    def ibarrier(self, comm):
        return self._spawn(comm, self._sched_barrier(comm), "libnbc.ibarrier")

    def barrier(self, comm):
        req = self.ibarrier(comm)
        yield req.event

    # -- schedules ----------------------------------------------------

    def _sched_bcast(self, comm, nbytes, root, payload):
        """Binomial bcast, one schedule round per tree level."""
        size, rank = comm.size, comm.rank
        tag = coll_tag_block(comm)
        if size == 1:
            return payload
        v = vrank(rank, root, size)
        tree = binomial_tree(v, size)
        buf = payload
        if tree.parent >= 0:
            msg = yield from comm.recv(source=unvrank(tree.parent, root, size), tag=tag)
            buf = msg.payload
            yield from comm.compute(self.round_overhead)
        for c in tree.children:
            yield from comm.send(
                unvrank(c, root, size), payload=buf, nbytes=nbytes, tag=tag
            )
            yield from comm.compute(self.round_overhead)
        return buf

    def _sched_reduce(self, comm, nbytes, root, payload, op):
        size, rank = comm.size, comm.rank
        tag = coll_tag_block(comm)
        if size == 1:
            return payload
        v = vrank(rank, root, size)
        tree = binomial_tree(v, size)
        acc = payload
        for c in tree.children:
            msg = yield from comm.recv(source=unvrank(c, root, size), tag=tag)
            yield from charge_reduce(comm, nbytes, self.avx)
            acc = combine(op, acc, msg.payload)
            yield from comm.compute(self.round_overhead)
        if tree.parent >= 0:
            yield from comm.send(
                unvrank(tree.parent, root, size), payload=acc, nbytes=nbytes, tag=tag
            )
            yield from comm.compute(self.round_overhead)
            return None
        return acc

    def _sched_barrier(self, comm):
        size, rank = comm.size, comm.rank
        tag = coll_tag_block(comm)
        dist = 1
        while dist < size:
            yield from comm.sendrecv(
                (rank + dist) % size,
                (rank - dist) % size,
                nbytes=0,
                send_tag=tag,
                recv_tag=tag,
            )
            yield from comm.compute(self.round_overhead)
            dist <<= 1
