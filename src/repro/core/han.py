"""The HAN collective module: task-based hierarchical collectives.

Implements the paper's designs:

- **MPI_Bcast** (Fig 1): node leaders run ``ib(0), sbib(1) ... sbib(u-1),
  sb(u-1)`` -- each ``sbib`` starts the non-blocking inter-node broadcast
  of segment *i* and overlaps it with the intra-node broadcast of segment
  *i-1*; other processes run ``sb(0) ... sb(u-1)``.
- **MPI_Allreduce** (Fig 5): a four-stage pipeline per segment --
  intra-node reduce ``sr``, inter-node reduce ``ir``, inter-node
  broadcast ``ib``, intra-node broadcast ``sb`` -- with the inter-node
  allreduce deliberately split into explicit ``ir`` + ``ib`` "to further
  increase the pipeline and improve the performance for large messages"
  (paper III-B1).  ``ir``/``ib`` use the same algorithm and root to
  maximize their overlap on opposite network directions (Fig 6).
- extensions the paper mentions (section III): Reduce, Gather, Allgather,
  Scatter, Barrier, built from the same task vocabulary.

Configurations come from an explicit :class:`HanConfig`, a decision
function (usually an autotuned lookup table, :mod:`repro.tuning`), or the
built-in static default.
"""

from __future__ import annotations

import functools
import math
from typing import Callable, Optional

import numpy as np

from repro.colls.allgather import allgather_ring
from repro.colls.alltoall import alltoall_pairwise
from repro.colls.bcast import bcast_linear
from repro.colls.gather import gather_binomial
from repro.colls.reduce import reduce_linear
from repro.colls.reduce_scatter import reduce_scatter_ring
from repro.colls.scatter import scatter_binomial
from repro.core.config import HanConfig
from repro.core.subcomms import build_hierarchy
from repro.modules import make_module
from repro.modules.base import CollModule
from repro.mpi.constants import INTERNAL_TAG_BASE
from repro.mpi.op import SUM
from repro.sim.engine import AnyOf

__all__ = ["HanModule", "han_segments"]

# Runtime-internal tags for the degraded-mode probe protocol (far above
# the collective tag blocks and the dissemination-barrier tag window).
_PROBE_TAG = INTERNAL_TAG_BASE + 2048
_VOTE_TAG = INTERNAL_TAG_BASE + 2049
_VERDICT_TAG = INTERNAL_TAG_BASE + 2050
_SHARE_TAG = INTERNAL_TAG_BASE + 2051


def _coll_span(fn):
    """Observe a collective generator method: one span per call.

    When no recorder is attached (``engine.obs is None``) the original
    generator is returned untouched — zero wrapping, zero overhead.
    """
    coll_name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self, comm, *args, **kwargs):
        gen = fn(self, comm, *args, **kwargs)
        rec = comm.runtime.engine.obs
        if rec is None:
            return gen
        nbytes = args[0] if args and isinstance(args[0], (int, float)) else (
            kwargs.get("nbytes", 0)
        )
        return _spanned(rec, comm, coll_name, nbytes, gen)

    return wrapper


def _spanned(rec, comm, name, nbytes, gen):
    sid = rec.begin(
        f"rank{comm.world_rank}", name, "coll", nbytes=nbytes, size=comm.size
    )
    try:
        result = yield from gen
    finally:
        rec.end(sid)
    return result


def han_segments(nbytes: float, fs: Optional[float], payload=None):
    """Split a message into HAN pipeline segments.

    Returns ``(u, seg_bytes, views)``: the segment count (identical on
    every rank because it depends only on ``nbytes`` and ``fs``), the
    nominal byte size of each segment, and element-aligned views of
    ``payload`` (``None`` entries when no payload).
    """
    if fs is None or fs <= 0 or nbytes <= fs:
        u = 1
    else:
        u = int(math.ceil(nbytes / fs))
    seg_bytes = [min(fs, nbytes - i * fs) if u > 1 else nbytes for i in range(u)]
    if payload is None:
        views = [None] * u
    else:
        bounds = np.linspace(0, payload.size, u + 1).astype(int)
        views = [payload[bounds[i] : bounds[i + 1]] for i in range(u)]
    return u, seg_bytes, views


class HanModule(CollModule):
    """HAN, usable anywhere a collective module is expected."""

    name = "han"
    nonblocking = False

    def __init__(
        self,
        config: Optional[HanConfig] = None,
        decision_fn: Optional[Callable[[int, int, float, str], HanConfig]] = None,
        degraded_timeout: Optional[float] = None,
        probe_bytes: float = 4096.0,
    ):
        #: fixed configuration (overrides the decision function)
        self.config = config
        #: callable ``(n_nodes, ppn, nbytes, coll_type) -> HanConfig``
        self.decision_fn = decision_fn
        #: seconds to wait for an inter-node probe reply before declaring
        #: the fabric degraded; ``None`` (default) disables the probe and
        #: leaves every schedule bit-identical to the pre-probe module
        self.degraded_timeout = degraded_timeout
        #: payload size of the probe message -- nonzero so it rides the
        #: fluid network and actually stalls on a dead link
        self.probe_bytes = probe_bytes
        self._mods: dict[str, CollModule] = {}

    # -- configuration ------------------------------------------------------------

    def module(self, name: str) -> CollModule:
        mod = self._mods.get(name)
        if mod is None:
            mod = self._mods[name] = make_module(name)
        return mod

    def _intra_module(self, hier, cfg) -> CollModule:
        """The module driving intra-node stages.

        Plain ``smod`` on flat nodes; on split-NVLink nodes a fabric-
        aware ``smod`` (gpu) is wrapped in the fabric/host composite so
        the intra stage itself becomes a 2-level island/bridge schedule
        -- HAN's third hardware level.
        """
        smod = self.module(cfg.smod)
        if hier.fab is None or not getattr(smod, "fabric_tier", False):
            return smod
        comp = getattr(hier, "_fabric_composite", None)
        if comp is None:
            from repro.core.fabric_tier import FabricComposite

            comp = FabricComposite(hier, smod, self.module("sm"))
            hier._fabric_composite = comp
        return comp

    @staticmethod
    def _position_map(comm, hier) -> dict:
        """(node position, local rank) -> parent rank, cached per hierarchy."""
        pos = getattr(hier, "_pos_to_parent", None)
        if pos is None:
            pos = {
                (hier.up_rank_of(i), hier.local_rank_of(i)): i
                for i in range(comm.size)
            }
            hier._pos_to_parent = pos
        return pos

    def resolve_config(
        self, hier, nbytes: float, coll: str, config: Optional[HanConfig]
    ) -> HanConfig:
        if config is not None:
            return config
        if self.config is not None:
            return self.config
        if self.decision_fn is not None:
            return self.decision_fn(
                hier.num_nodes, hier.local_size, nbytes, coll
            )
        return self.default_config(nbytes)

    @staticmethod
    def default_config(nbytes: float) -> HanConfig:
        """Untuned static fallback (what HAN ships before autotuning).

        Mirrors the shipped coll/han defaults: latency-friendly binomial
        trees for small and mid-range messages, a pipelined chain once
        there are enough segments to fill it, SOLO above the 512KB
        SM/SOLO crossover (paper III-C).
        """
        if nbytes <= 64 * 1024:
            return HanConfig(fs=None, imod="libnbc", smod="sm")
        if nbytes <= 4 * 1024 * 1024:
            return HanConfig(
                fs=512 * 1024,
                imod="adapt",
                smod="sm" if nbytes <= 512 * 1024 else "solo",
                ibalg="binary",
                iralg="binary",
                ibs=256 * 1024,
                irs=256 * 1024,
            )
        return HanConfig(
            fs=2 * 1024 * 1024,
            imod="adapt",
            smod="solo",
            ibalg="chain",
            iralg="chain",
            ibs=512 * 1024,
            irs=512 * 1024,
        )

    # -- degraded mode (dead inter-node link detection + flat fallback) -------------

    def _probe_up(self, up):
        """Leader-side liveness probe of every up-comm peer.

        Exchanges a ``probe_bytes`` message with each peer and races every
        reply against one shared deadline ``degraded_timeout`` seconds
        out.  A reply crossing a dead link stalls in the fluid network,
        so the deadline wins and the leader votes "degraded".
        """
        engine = up.runtime.engine
        peers = [p for p in range(up.size) if p != up.rank]
        recvs = [up.irecv(source=p, tag=_PROBE_TAG) for p in peers]
        for p in peers:
            up.isend(p, nbytes=self.probe_bytes, tag=_PROBE_TAG)
        deadline = engine.event("han:probe-deadline")
        token = engine.schedule(self.degraded_timeout, deadline.succeed)
        bad = False
        for req in recvs:
            idx, _ = yield AnyOf([req.event, deadline])
            bad = bad or idx == 1
        if not bad:
            engine.cancel(token)
        return bad

    def _check_degraded(self, comm, hier):
        """Collectively decide (once per communicator) if the inter-node
        fabric is unusable for hierarchical schedules.

        Node leaders probe their up-comm layer; the per-leader votes are
        OR-reduced at up-rank 0 and the verdict fanned back out — both
        over zero-byte control messages, which bypass the fluid network
        and therefore still arrive across the very link being diagnosed
        (a simulator artifact standing in for an out-of-band RAS plane).
        The verdict is cached per parent rank, so only the first
        collective on a communicator pays the probe cost.
        """
        if self.degraded_timeout is None or hier.up.size == 1:
            return False
        state = comm.runtime.coll_state(("han:degraded", comm.cid))
        if comm.rank in state:
            return state[comm.rank]
        low, up = hier.low, hier.up
        verdict = False
        if hier.local_rank == 0:
            bad = yield from self._probe_up(up)
            if up.rank == 0:
                for src in range(1, up.size):
                    msg = yield from up.recv(source=src, tag=_VOTE_TAG)
                    bad = bad or msg.payload
                reqs = [
                    up.isend(dst, nbytes=0, payload=bad, tag=_VERDICT_TAG)
                    for dst in range(1, up.size)
                ]
                yield from up.waitall(reqs)
            else:
                yield from up.send(0, nbytes=0, payload=bad, tag=_VOTE_TAG)
                msg = yield from up.recv(source=0, tag=_VERDICT_TAG)
                bad = msg.payload
            verdict = bad
        if low.size > 1:
            if hier.local_rank == 0:
                reqs = [
                    low.isend(dst, nbytes=0, payload=verdict, tag=_SHARE_TAG)
                    for dst in range(1, low.size)
                ]
                yield from low.waitall(reqs)
            else:
                msg = yield from low.recv(source=0, tag=_SHARE_TAG)
                verdict = msg.payload
        state[comm.rank] = verdict
        return verdict

    # -- MPI_Bcast (paper Fig 1) -----------------------------------------------------

    @_coll_span
    def bcast(
        self, comm, nbytes, root=0, payload=None, config=None,
        algorithm=None, segsize=None,
    ):
        if comm.size == 1:
            return payload
        hier = yield from build_hierarchy(comm)
        degraded = yield from self._check_degraded(comm, hier)
        if degraded:
            # Dead inter-node link: a hierarchical schedule would wedge on
            # it, so fall back to a flat star rooted at the coordinator
            # (linear bcast routes radiate from one node and can avoid a
            # failed non-root link).
            out = yield from bcast_linear(comm, nbytes, root=root, payload=payload)
            return out
        cfg = self.resolve_config(hier, nbytes, "bcast", config)
        if segsize is not None:
            cfg = cfg.with_(fs=segsize)
        imod, smod = self.module(cfg.imod), self._intra_module(hier, cfg)
        root_local = hier.local_rank_of(root)
        root_up = hier.up_rank_of(root)
        on_ib_layer = hier.local_rank == root_local
        u, seg_bytes, views = han_segments(
            nbytes, cfg.fs, payload if comm.rank == root else None
        )
        low, up = hier.low, hier.up
        pieces: list = [None] * u
        rec = comm.runtime.engine.obs
        trk = f"rank{comm.world_rank}" if rec is not None else ""

        if low.size == 1:
            # Degenerate: one rank per node -> pure inter-node bcast.
            out = yield from imod.bcast(
                up, nbytes, root=root_up, payload=payload,
                algorithm=cfg.ibalg, segsize=cfg.ibs,
            )
            return out if payload is None or comm.rank == root else out

        if on_ib_layer and up.size > 1:
            # leaders: ib(0), sbib(1..u-1), sb(u-1)
            s_ib = rec.begin(trk, "ib", "phase", seg=0) if rec else -1
            req = imod.ibcast(
                up, seg_bytes[0], root=root_up, payload=views[0],
                algorithm=cfg.ibalg, segsize=cfg.ibs,
            )
            prev = yield from up.wait(req)  # task ib(0)
            if rec:
                rec.end(s_ib)
            for i in range(1, u):
                if rec:
                    s_ib = rec.begin(trk, "ib", "phase", seg=i)
                req = imod.ibcast(
                    up, seg_bytes[i], root=root_up, payload=views[i],
                    algorithm=cfg.ibalg, segsize=cfg.ibs,
                )  # start ib(i) ...
                if rec:
                    s_sb = rec.begin(trk, "sb", "phase", seg=i - 1)
                pieces[i - 1] = yield from smod.bcast(
                    low, seg_bytes[i - 1], root=root_local, payload=prev
                )  # ... overlap with sb(i-1): the sbib(i) task
                if rec:
                    rec.end(s_sb)
                prev = yield from up.wait(req)
                if rec:
                    rec.end(s_ib)
            if rec:
                s_sb = rec.begin(trk, "sb", "phase", seg=u - 1)
            pieces[u - 1] = yield from smod.bcast(
                low, seg_bytes[u - 1], root=root_local, payload=prev
            )  # final sb(u-1)
            if rec:
                rec.end(s_sb)
        elif on_ib_layer:
            # single node: the "leader" just feeds the intra level
            for i in range(u):
                if rec:
                    s_sb = rec.begin(trk, "sb", "phase", seg=i)
                pieces[i] = yield from smod.bcast(
                    low, seg_bytes[i], root=root_local, payload=views[i]
                )
                if rec:
                    rec.end(s_sb)
        else:
            # other processes: sb(0) ... sb(u-1)
            for i in range(u):
                if rec:
                    s_sb = rec.begin(trk, "sb", "phase", seg=i)
                pieces[i] = yield from smod.bcast(
                    low, seg_bytes[i], root=root_local, payload=None
                )
                if rec:
                    rec.end(s_sb)

        if comm.rank == root:
            return payload
        if any(p is None for p in pieces):
            return None
        return pieces[0] if u == 1 else np.concatenate(pieces)

    # -- MPI_Allreduce (paper Fig 5) -----------------------------------------------------

    @_coll_span
    def allreduce(
        self, comm, nbytes, payload=None, op=SUM, config=None,
        algorithm=None, segsize=None,
    ):
        if comm.size == 1:
            return payload
        if not op.commutative:
            raise ValueError(
                "HAN's MPI_Allreduce assumes a commutative operation "
                "(paper section III-B1)"
            )
        hier = yield from build_hierarchy(comm)
        degraded = yield from self._check_degraded(comm, hier)
        if degraded:
            # Flat star fallback: reduce-to-root + broadcast-from-root
            # (star routes avoid a dead link between non-root nodes).
            red = yield from reduce_linear(comm, nbytes, root=0, payload=payload, op=op)
            out = yield from bcast_linear(comm, nbytes, root=0, payload=red)
            return out
        cfg = self.resolve_config(hier, nbytes, "allreduce", config)
        if segsize is not None:
            cfg = cfg.with_(fs=segsize)
        imod, smod = self.module(cfg.imod), self._intra_module(hier, cfg)
        low, up = hier.low, hier.up
        u, seg_bytes, views = han_segments(nbytes, cfg.fs, payload)
        pieces: list = [None] * u
        layer0 = hier.local_rank == 0
        rec = comm.runtime.engine.obs
        trk = f"rank{comm.world_rank}" if rec is not None else ""

        if low.size == 1:
            # one rank per node: explicit ir + ib on the wire
            result = yield from self._inter_allreduce(
                imod, up, nbytes, payload, op, cfg, u, seg_bytes, views
            )
            return result
        if up.size == 1:
            # single node: pure shared-memory allreduce
            result = yield from smod.allreduce(low, nbytes, payload=payload, op=op)
            return result

        if layer0:
            srres: dict[int, object] = {}
            irreq: dict[int, object] = {}
            ibreq: dict[int, object] = {}
            ir_sid: dict[int, int] = {}
            ib_sid: dict[int, int] = {}
            for i in range(u + 3):
                if 0 <= i - 1 < u:
                    # start ir(i-1): inter-node reduce of the intra result
                    if rec:
                        ir_sid[i - 1] = rec.begin(trk, "ir", "phase", seg=i - 1)
                    irreq[i - 1] = imod.ireduce(
                        up, seg_bytes[i - 1], root=0,
                        payload=srres.pop(i - 1), op=op,
                        algorithm=cfg.iralg, segsize=cfg.irs,
                    )
                if 0 <= i - 2 < u:
                    # start ib(i-2): broadcast the reduced segment back
                    red = yield from up.wait(irreq.pop(i - 2))
                    if rec:
                        rec.end(ir_sid.pop(i - 2))
                        ib_sid[i - 2] = rec.begin(trk, "ib", "phase", seg=i - 2)
                    ibreq[i - 2] = imod.ibcast(
                        up, seg_bytes[i - 2], root=0, payload=red,
                        algorithm=cfg.ibalg, segsize=cfg.ibs,
                    )
                if 0 <= i - 3 < u:
                    # sb(i-3): distribute on the node
                    res = yield from up.wait(ibreq.pop(i - 3))
                    if rec:
                        rec.end(ib_sid.pop(i - 3))
                        s_sb = rec.begin(trk, "sb", "phase", seg=i - 3)
                    pieces[i - 3] = yield from smod.bcast(
                        low, seg_bytes[i - 3], root=0, payload=res
                    )
                    if rec:
                        rec.end(s_sb)
                if i < u:
                    # sr(i): intra-node reduction of the next segment
                    if rec:
                        s_sr = rec.begin(trk, "sr", "phase", seg=i)
                    srres[i] = yield from smod.reduce(
                        low, seg_bytes[i], root=0, payload=views[i], op=op
                    )
                    if rec:
                        rec.end(s_sr)
        else:
            # other processes: the sbsr task stream
            for i in range(u + 3):
                if 0 <= i - 3 < u:
                    if rec:
                        s_sb = rec.begin(trk, "sb", "phase", seg=i - 3)
                    pieces[i - 3] = yield from smod.bcast(
                        low, seg_bytes[i - 3], root=0, payload=None
                    )
                    if rec:
                        rec.end(s_sb)
                if i < u:
                    if rec:
                        s_sr = rec.begin(trk, "sr", "phase", seg=i)
                    yield from smod.reduce(
                        low, seg_bytes[i], root=0, payload=views[i], op=op
                    )
                    if rec:
                        rec.end(s_sr)

        if any(p is None for p in pieces):
            return None
        return pieces[0] if u == 1 else np.concatenate(pieces)

    def _inter_allreduce(self, imod, up, nbytes, payload, op, cfg, u, seg_bytes, views):
        """Pipelined explicit ir+ib allreduce on a pure inter-node comm."""
        irreq: dict[int, object] = {}
        ibreq: dict[int, object] = {}
        pieces: list = [None] * u
        rec = up.runtime.engine.obs
        trk = f"rank{up.world_rank}" if rec is not None else ""
        ir_sid: dict[int, int] = {}
        ib_sid: dict[int, int] = {}
        for i in range(u + 2):
            if 0 <= i < u:
                if rec:
                    ir_sid[i] = rec.begin(trk, "ir", "phase", seg=i)
                irreq[i] = imod.ireduce(
                    up, seg_bytes[i], root=0, payload=views[i], op=op,
                    algorithm=cfg.iralg, segsize=cfg.irs,
                )
            if 0 <= i - 1 < u:
                red = yield from up.wait(irreq.pop(i - 1))
                if rec:
                    rec.end(ir_sid.pop(i - 1))
                    ib_sid[i - 1] = rec.begin(trk, "ib", "phase", seg=i - 1)
                ibreq[i - 1] = imod.ibcast(
                    up, seg_bytes[i - 1], root=0, payload=red,
                    algorithm=cfg.ibalg, segsize=cfg.ibs,
                )
            if 0 <= i - 2 < u:
                pieces[i - 2] = yield from up.wait(ibreq.pop(i - 2))
                if rec:
                    rec.end(ib_sid.pop(i - 2))
        if any(p is None for p in pieces):
            return None
        return pieces[0] if u == 1 else np.concatenate(pieces)

    # -- extensions (paper section III: "similar designs can be extended") ------------

    @_coll_span
    def reduce(
        self, comm, nbytes, root=0, payload=None, op=SUM, config=None,
        algorithm=None, segsize=None,
    ):
        """Hierarchical reduce: pipelined sr + ir (the irsr task stream)."""
        if comm.size == 1:
            return payload
        if not op.commutative:
            raise ValueError("HAN reduce assumes a commutative operation")
        hier = yield from build_hierarchy(comm)
        cfg = self.resolve_config(hier, nbytes, "reduce", config)
        if segsize is not None:
            cfg = cfg.with_(fs=segsize)
        imod, smod = self.module(cfg.imod), self._intra_module(hier, cfg)
        low, up = hier.low, hier.up
        root_local = hier.local_rank_of(root)
        root_up = hier.up_rank_of(root)
        u, seg_bytes, views = han_segments(nbytes, cfg.fs, payload)
        on_layer = hier.local_rank == root_local
        pieces: list = [None] * u

        if up.size == 1:
            result = yield from smod.reduce(
                low, nbytes, root=root_local, payload=payload, op=op
            )
            return result if comm.rank == root else None

        rec = comm.runtime.engine.obs
        trk = f"rank{comm.world_rank}" if rec is not None else ""
        if on_layer:
            # the irsr task stream: irsr(i) starts the inter-node reduce
            # of segment i-1, overlaps it with the intra reduce of
            # segment i, and completes it at task end
            srres: dict[int, object] = {}
            irreq = None
            s_ir = -1
            for i in range(u + 1):
                if 0 <= i - 1 < u:
                    if rec:
                        s_ir = rec.begin(trk, "ir", "phase", seg=i - 1)
                    irreq = imod.ireduce(
                        up, seg_bytes[i - 1], root=root_up,
                        payload=srres.pop(i - 1), op=op,
                        algorithm=cfg.iralg, segsize=cfg.irs,
                    )
                if i < u:
                    if rec:
                        s_sr = rec.begin(trk, "sr", "phase", seg=i)
                    if low.size > 1:
                        srres[i] = yield from smod.reduce(
                            low, seg_bytes[i], root=root_local,
                            payload=views[i], op=op,
                        )
                    else:
                        srres[i] = views[i]
                    if rec:
                        rec.end(s_sr)
                if 0 <= i - 1 < u:
                    pieces[i - 1] = yield from up.wait(irreq)
                    if rec:
                        rec.end(s_ir)
        else:
            for i in range(u):
                if rec:
                    s_sr = rec.begin(trk, "sr", "phase", seg=i)
                yield from smod.reduce(
                    low, seg_bytes[i], root=root_local, payload=views[i], op=op
                )
                if rec:
                    rec.end(s_sr)
            return None

        if comm.rank != root:
            return None
        if any(p is None for p in pieces):
            return None
        return pieces[0] if u == 1 else np.concatenate(pieces)

    @_coll_span
    def gather(self, comm, nbytes, root=0, payload=None, config=None):
        """Intra-node gather (sg) then inter-node gather (ig) of node blocks."""
        if comm.size == 1:
            return payload
        hier = yield from build_hierarchy(comm)
        cfg = self.resolve_config(hier, nbytes, "gather", config)
        smod = self._intra_module(hier, cfg)
        low, up = hier.low, hier.up
        root_local = hier.local_rank_of(root)
        root_up = hier.up_rank_of(root)

        node_block = payload
        if low.size > 1:
            node_block = yield from smod.gather(
                low, nbytes, root=root_local, payload=payload
            )
        if hier.local_rank != root_local:
            return None
        if up.size > 1:
            gathered = yield from gather_binomial(
                up, nbytes * low.size, root=root_up, payload=node_block
            )
        else:
            gathered = node_block
        return gathered if comm.rank == root else None

    @_coll_span
    def allgather(self, comm, nbytes, payload=None, config=None):
        """sg + inter-node allgather + sb, as sketched in the paper."""
        if comm.size == 1:
            return payload
        hier = yield from build_hierarchy(comm)
        cfg = self.resolve_config(hier, nbytes, "allgather", config)
        smod = self._intra_module(hier, cfg)
        low, up = hier.low, hier.up

        node_block = payload
        if low.size > 1:
            node_block = yield from smod.gather(
                low, nbytes, root=0, payload=payload
            )
        full = None
        if hier.local_rank == 0:
            if up.size > 1:
                full = yield from allgather_ring(
                    up, nbytes * low.size, payload=node_block
                )
            else:
                full = node_block
        if low.size > 1:
            full = yield from smod.bcast(
                low, nbytes * comm.size, root=0, payload=full
            )
        return full

    @_coll_span
    def scatter(self, comm, nbytes, root=0, payload=None, config=None):
        """Inter-node scatter of node blocks, then intra-node scatter."""
        if comm.size == 1:
            return payload
        hier = yield from build_hierarchy(comm)
        cfg = self.resolve_config(hier, nbytes, "scatter", config)
        low, up = hier.low, hier.up
        root_local = hier.local_rank_of(root)
        root_up = hier.up_rank_of(root)

        node_block = None
        if hier.local_rank == root_local:
            if up.size > 1:
                node_block = yield from scatter_binomial(
                    up, nbytes, root=root_up, payload=payload
                )
            else:
                node_block = payload
        if low.size == 1:
            return node_block
        # intra-node scatter from the layer member (simple linear over shm)
        result = yield from self._intra_scatter(
            comm, hier, nbytes / up.size, root_local, node_block
        )
        return result

    def _intra_scatter(self, comm, hier, node_bytes, root_local, node_block):
        from repro.colls.scatter import scatter_linear

        result = yield from scatter_linear(
            hier.low, node_bytes, root=root_local, payload=node_block
        )
        return result

    @_coll_span
    def reduce_scatter(self, comm, nbytes, payload=None, op=SUM, config=None):
        """Hierarchical reduce-scatter: intra reduce-scatter of node
        slices, then an inter-node reduce-scatter per layer.

        ``nbytes`` is the TOTAL vector size; rank *i* ends with block
        *i* of the fully reduced vector (``nbytes / size`` bytes).  The
        send buffer is pre-permuted so the intra stage hands local rank
        *j* exactly the blocks owned by layer *j*, node-major; the
        per-layer inter stage then finishes the reduction and the
        scatter simultaneously -- no dedicated final intra scatter is
        needed because the layered up-comms already place block *m* of
        slice *j* on the rank at position ``(m, j)``.
        """
        if comm.size == 1:
            return payload
        if not op.commutative:
            raise ValueError(
                "hierarchical reduce_scatter requires a commutative op"
            )
        hier = yield from build_hierarchy(comm)
        cfg = self.resolve_config(hier, nbytes, "reduce_scatter", config)
        smod = self._intra_module(hier, cfg)
        low, up = hier.low, hier.up
        P, p, n_nodes = comm.size, low.size, up.size

        if payload is not None and payload.size % P != 0:
            # nested block splits only line up on divisible payloads
            out = yield from reduce_scatter_ring(
                comm, nbytes, payload=payload, op=op
            )
            return out
        if p == 1:
            out = yield from reduce_scatter_ring(
                up, nbytes, payload=payload, op=op
            )
            return out
        if n_nodes == 1:
            out = yield from smod.reduce_scatter(
                low, nbytes, payload=payload, op=op
            )
            return out

        send = payload
        if payload is not None:
            # group my P blocks by owning local rank, node-major inside
            # each group: slice j = the blocks of ranks (m, j), m ascending
            pos = self._position_map(comm, hier)
            per = payload.size // P
            blocks = payload.reshape(P, per)
            send = np.concatenate(
                [blocks[pos[(m, j)]] for j in range(p) for m in range(n_nodes)]
            )
        # intra: local rank j keeps slice j, reduced over this node
        slice_ = yield from smod.reduce_scatter(
            low, nbytes, payload=send, op=op
        )
        # inter (per layer): up-rank m keeps block m of the slice --
        # which is exactly this rank's own block of the full vector
        out = yield from reduce_scatter_ring(
            up, nbytes / p, payload=slice_, op=op
        )
        return out

    @_coll_span
    def alltoall(self, comm, nbytes, payload=None, config=None):
        """Truly hierarchical all-to-all, every rank active in both
        phases (no leader bottleneck):

        1. **intra**: node-local all-to-all of destination-layer groups
           (each group holds the ``n_nodes`` blocks bound for one local
           rank position, node-major),
        2. **inter**: per-layer all-to-all of node-sized groups,
        3. a free local reorder into global source-rank order.

        ``nbytes`` is one rank-to-rank block; every rank sends and
        receives ``size`` blocks, moving ``size * nbytes`` bytes across
        each of the two phases.
        """
        if comm.size == 1:
            return payload
        hier = yield from build_hierarchy(comm)
        cfg = self.resolve_config(hier, nbytes, "alltoall", config)
        smod = self._intra_module(hier, cfg)
        low, up = hier.low, hier.up
        P, p, n_nodes = comm.size, low.size, up.size

        if payload is not None and payload.size % P != 0:
            out = yield from alltoall_pairwise(comm, nbytes, payload=payload)
            return out
        if p == 1:
            out = yield from alltoall_pairwise(up, nbytes, payload=payload)
            return out
        if n_nodes == 1:
            out = yield from smod.alltoall(low, nbytes, payload=payload)
            return out

        send = payload
        if payload is not None:
            # group my P send blocks by destination local rank k,
            # node-major inside each group
            pos = self._position_map(comm, hier)
            per = payload.size // P
            blocks = payload.reshape(P, per)
            send = np.concatenate(
                [blocks[pos[(m, k)]] for k in range(p) for m in range(n_nodes)]
            )
        # 1) intra exchange: one block per local peer = n_nodes sub-blocks
        r1 = yield from smod.alltoall(low, nbytes * n_nodes, payload=send)
        send_up = None
        if r1 is not None:
            # [src_local][dst_node][per] -> [dst_node][src_local][per]
            per = r1.size // P
            send_up = (
                r1.reshape(p, n_nodes, per).transpose(1, 0, 2).reshape(-1)
            )
        # 2) inter exchange on my layer: one block per node = p sub-blocks
        r2 = yield from alltoall_pairwise(up, nbytes * p, payload=send_up)
        if r2 is None:
            return None
        # 3) reorder [src_node][src_local] into global source-rank order
        per = r2.size // P
        r3 = r2.reshape(n_nodes, p, per)
        out = np.concatenate(
            [r3[hier.up_rank_of(i), hier.local_rank_of(i)] for i in range(P)]
        )
        return out

    @_coll_span
    def barrier(self, comm, config=None):
        """sb-style barrier: low, then up (layer 0), then low again."""
        if comm.size == 1:
            return
        hier = yield from build_hierarchy(comm)
        cfg = self.resolve_config(hier, 0, "barrier", config)
        smod = self._intra_module(hier, cfg)
        low, up = hier.low, hier.up
        if low.size > 1:
            yield from smod.barrier(low)
        if hier.local_rank == 0 and up.size > 1:
            imod = self.module(cfg.imod)
            yield from imod.barrier(up)
        if low.size > 1:
            yield from smod.barrier(low)
