"""HAN configuration: the autotuned parameters of paper Table II."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["HanConfig"]


@dataclass(frozen=True)
class HanConfig:
    """One configuration of a HAN collective (the output of autotuning).

    Mirrors Table II of the paper:

    ======  =====================================================
    symbol  meaning
    ======  =====================================================
    fs      segment size in the HAN module (pipeline granularity)
    imod    submodule used for inter-node ('libnbc' or 'adapt')
    smod    submodule used for intra-node ('sm' or 'solo')
    ibalg   inter-node bcast algorithm, if the submodule supports
            choosing one (ADAPT: chain / binary / binomial)
    iralg   inter-node reduce algorithm, if supported
    ibs     inter-node bcast segment size, if supported
    irs     inter-node reduce segment size, if supported
    ======  =====================================================

    ``fs=None`` disables HAN-level segmentation (single segment).
    ``ibalg``/``ibs`` must be ``None`` for submodules without algorithm /
    segment support (Libnbc).

    ``seed`` is the single top-level entropy source of a run: every
    stochastic component (fault injectors, noise models) derives child
    generators from it via :meth:`seed_sequence` and
    ``numpy.random.SeedSequence.spawn`` — no module-level RNG state
    anywhere.  It is *not* a tuned parameter: it is excluded from
    equality, hashing and :meth:`key`, so two configs that differ only in
    seed are the same tuning decision.
    """

    fs: Optional[float] = 512 * 1024
    imod: str = "libnbc"
    smod: str = "sm"
    ibalg: Optional[str] = None
    iralg: Optional[str] = None
    ibs: Optional[float] = None
    irs: Optional[float] = None
    seed: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        from repro.modules import INTER_MODULES, INTRA_MODULES

        if self.imod not in INTER_MODULES:
            raise ValueError(
                f"imod must be one of {sorted(INTER_MODULES)}, got {self.imod!r}"
            )
        if self.smod not in INTRA_MODULES:
            raise ValueError(
                f"smod must be one of {sorted(INTRA_MODULES)}, got {self.smod!r}"
            )
        if self.fs is not None and self.fs <= 0:
            raise ValueError("fs must be positive or None")
        if self.imod == "libnbc":
            for f in ("ibalg", "iralg", "ibs", "irs"):
                if getattr(self, f) is not None:
                    raise ValueError(
                        f"{f} is only supported by submodules with algorithm "
                        f"selection (ADAPT), not {self.imod!r}"
                    )

    def with_(self, **kw) -> "HanConfig":
        """Functional update (used heavily by the search loops)."""
        return replace(self, **kw)

    def seed_sequence(self) -> "object":
        """Root ``numpy.random.SeedSequence`` for this run.

        Stochastic components must spawn children from this (never share
        or re-seed ad hoc)::

            rng_a, rng_b = (np.random.Generator(np.random.PCG64(s))
                            for s in cfg.seed_sequence().spawn(2))
        """
        import numpy as np

        return np.random.SeedSequence(0 if self.seed is None else self.seed)

    def key(self) -> tuple:
        """Hashable identity used by lookup tables."""
        return (
            self.fs,
            self.imod,
            self.smod,
            self.ibalg,
            self.iralg,
            self.ibs,
            self.irs,
        )

    def describe(self) -> str:
        parts = [f"fs={_fmt(self.fs)}", f"imod={self.imod}", f"smod={self.smod}"]
        if self.ibalg:
            parts.append(f"ibalg={self.ibalg}")
        if self.iralg:
            parts.append(f"iralg={self.iralg}")
        if self.ibs:
            parts.append(f"ibs={_fmt(self.ibs)}")
        if self.irs:
            parts.append(f"irs={_fmt(self.irs)}")
        return " ".join(parts)


def _fmt(n) -> str:
    if n is None:
        return "whole"
    n = float(n)
    for unit in ("B", "KB", "MB"):
        if n < 1024:
            return f"{n:g}{unit}"
        n /= 1024
    return f"{n:g}GB"
