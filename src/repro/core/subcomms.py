"""HAN's two-level communicator decomposition.

HAN uses the only portable MPI-3.1 hierarchy probe,
``MPI_Comm_split_type(COMM_TYPE_SHARED)``, to group processes by node
(paper section III), then builds one *up* (inter-node) communicator per
local rank layer -- the j-th process of every node belongs to up-comm
layer j.  This is how Open MPI's coll/han supports arbitrary broadcast
roots without relocation: the inter-node stage of a collective rooted at
a process with local rank j simply runs on layer j.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.communicator import Communicator
from repro.mpi.constants import UNDEFINED

__all__ = ["Hierarchy", "build_hierarchy"]

_CACHE_ATTR = "_han_hierarchy"
_LAYOUT_ATTR = "_han_group_layouts"


def _group_layout(runtime, group: tuple) -> tuple[int, dict]:
    """Node layout of a communicator group, shared across its ranks.

    Returns ``(num_nodes, positions)`` where ``positions`` maps a world
    rank to its ``(node position, local rank)`` pair.  Every rank of a
    communicator asks the same question about the same group, so the
    answer is computed once per distinct group and cached on the runtime
    — without this, P ranks each doing an O(P) scan makes hierarchy
    construction O(P^2) per runtime, which dominates paper-scale setup.
    """
    cache = getattr(runtime, _LAYOUT_ATTR, None)
    if cache is None:
        cache = {}
        setattr(runtime, _LAYOUT_ATTR, cache)
    # keyed by identity, not value: hashing a 4096-tuple on every lookup
    # is an O(P) cost per call.  Group tuples are interned per cid on the
    # runtime, so identity hits are the norm; the stored (group, layout)
    # pair keeps the keyed tuple alive, which keeps id() unambiguous.
    hit = cache.get(id(group))
    if hit is not None and hit[0] is group:
        return hit[1]
    fabric = runtime.fabric
    members_by_node: dict[int, list[int]] = {}
    for w in group:
        members_by_node.setdefault(fabric.node_of(w), []).append(w)
    positions: dict[int, tuple[int, int]] = {}
    for node_pos, node in enumerate(sorted(members_by_node)):
        for local, w in enumerate(sorted(members_by_node[node])):
            positions[w] = (node_pos, local)
    layout = (len(members_by_node), positions)
    cache[id(group)] = (group, layout)
    return layout


@dataclass
class Hierarchy:
    """One rank's view of the two-level decomposition.

    On machines with split NVLink fabrics (``NodeSpec.fabric_domains >
    1``) the intra-node level itself decomposes: ``fab`` spans my NVLink
    island and ``fleaders`` connects the first rank of every island on my
    node (``None`` on non-leader ranks).  Both are ``None`` on flat
    single-fabric machines, so two-level consumers are unaffected.
    """

    parent: Communicator
    low: Communicator  # intra-node communicator (all ranks of my node)
    up: Communicator  # inter-node communicator of my local-rank layer
    fab: Communicator | None = None  # intra-fabric-domain (NVLink island)
    fleaders: Communicator | None = None  # island leaders within my node

    def __post_init__(self) -> None:
        # parent rank -> (node position, local rank); built lazily once.
        self._pos_cache: dict[int, tuple[int, int]] = {}

    @property
    def has_fabric_tier(self) -> bool:
        """True when the node splits into multiple NVLink islands."""
        return self.fab is not None

    @property
    def local_rank(self) -> int:
        return self.low.rank

    @property
    def local_size(self) -> int:
        return self.low.size

    @property
    def num_nodes(self) -> int:
        return self.up.size

    def _positions(self, parent_rank: int) -> tuple[int, int]:
        hit = self._pos_cache.get(parent_rank)
        if hit is not None:
            return hit
        world = self.parent.group[parent_rank]
        _, positions = _group_layout(self.parent.runtime, self.parent.group)
        pos = positions[world]
        self._pos_cache[parent_rank] = pos
        return pos

    def up_rank_of(self, parent_rank: int) -> int:
        """Position of ``parent_rank``'s node within the up communicators.

        Valid because every layer orders its members by node identically.
        """
        return self._positions(parent_rank)[0]

    def local_rank_of(self, parent_rank: int) -> int:
        """Local (intra-node) rank of any rank of the parent communicator."""
        return self._positions(parent_rank)[1]


def build_hierarchy(comm: Communicator):
    """Collectively build (and cache) the HAN hierarchy for ``comm``.

    Raises ``ValueError`` (on every rank) if nodes carry unequal process
    counts -- HAN requires a homogeneous layout for its layer scheme,
    matching the paper's evaluation setup.
    """
    cached = getattr(comm, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    low = yield from comm.split_type_shared()
    # layer = my local rank; order layers by node via the parent rank
    up = yield from comm.split(color=low.rank, key=comm.rank)
    # fabric tier: on split-NVLink nodes, decompose the node level into
    # per-island comms plus an island-leader comm.  Splits are
    # instantaneous in simulated time, so flat-machine schedules are
    # unaffected by this block never running there.
    fab = fleaders = None
    fabric = comm.runtime.fabric
    if fabric.fabric_domains > 1:
        domain = fabric.fabric_domain_of(comm.group[comm.rank])
        fab = yield from low.split(color=domain, key=low.rank)
        fleaders = yield from low.split(
            color=0 if fab.rank == 0 else UNDEFINED, key=low.rank
        )
    hier = Hierarchy(parent=comm, low=low, up=up, fab=fab, fleaders=fleaders)
    # homogeneity check: every layer must have one member per node
    num_nodes, _ = _group_layout(comm.runtime, comm.group)
    if up.size != num_nodes or low.size * up.size != comm.size:
        raise ValueError(
            "HAN requires the same number of processes on every node "
            f"(got {comm.size} ranks over {num_nodes} nodes, layer "
            f"{low.rank} has {up.size} members)"
        )
    setattr(comm, _CACHE_ATTR, hier)
    return hier
