"""The fabric tier: intra-node collectives over split NVLink islands.

On machines with ``NodeSpec.fabric_domains > 1`` a node is not one flat
shared-memory domain but several accelerator islands bridged by PCIe and
host memory (HiCCL's fabric/node split; the HCCL demo's scale-up vs
scale-out ports).  :class:`FabricComposite` makes that structure visible
to HAN: it presents the standard intra-node module interface on the
node comm (``hier.low``) but internally composes

- the **gpu** module on ``hier.fab`` (my NVLink island), and
- a **host** module (SM) on ``hier.fleaders`` (the island leaders),

so a node-level collective becomes island-collective -> host bridge ->
island-collective, giving HAN a true fabric/node/network 3-level
schedule when combined with its inter-node stage.

Rooted collectives are *leader-normalized*: every island reduces or
gathers to its leader (fab rank 0), leaders bridge over host shared
memory, and when the caller's root is not its island's leader the result
rides one more island-level fan-out plus a device->host hop.  Host-bound
thin operations (scatter) take the host path directly -- their bytes
must cross PCIe anyway, so NVLink staging would only add latency.
"""

from __future__ import annotations

import numpy as np

from repro.modules.base import CollModule
from repro.mpi.op import SUM

__all__ = ["FabricComposite"]


class FabricComposite(CollModule):
    name = "fabric"
    avx = True  # island reductions run on-device
    nonblocking = False

    def __init__(self, hier, island_mod, host_mod):
        if hier.fab is None:
            raise ValueError("hierarchy has no fabric tier (flat node)")
        self.hier = hier
        self.island = island_mod  # drives hier.fab (one NVLink island)
        self.host = host_mod  # drives hier.fleaders (island leaders)
        low = hier.low
        fabric = low.runtime.fabric
        d = fabric.fabric_domains
        if low.size % d != 0:
            raise ValueError(
                f"node comm of {low.size} ranks does not split into "
                f"{d} equal fabric islands"
            )
        self._q = low.size // d
        self._d = d
        # Island membership must be contiguous in low-rank order: the
        # host-bridge concatenations below rely on domain-major == rank-
        # major.  Block placement guarantees this; fail loudly otherwise.
        dom = [fabric.fabric_domain_of(w) for w in low.group]
        for r, dm in enumerate(dom):
            if dm != r // self._q:
                raise ValueError(
                    "fabric islands are not contiguous in node-rank order"
                )

    # -- layout helpers ---------------------------------------------------------

    def _dom(self, low_rank: int) -> int:
        """Island of a node-comm rank (domains are rank-contiguous)."""
        return low_rank // self._q

    def _frank(self, low_rank: int) -> int:
        """Rank within its island of a node-comm rank."""
        return low_rank % self._q

    @property
    def _is_leader(self) -> bool:
        return self.hier.fleaders is not None

    def _check(self, comm) -> None:
        if comm is not self.hier.low:
            raise ValueError(
                "FabricComposite drives the hierarchy's node comm only"
            )

    def _hop(self, comm, nbytes: float, path: str):
        """One explicit host<->device staging flow charged by this rank."""
        if nbytes <= 0:
            return
        fabric = comm.runtime.fabric
        ev = comm.runtime.engine.event(f"ftier-{path}")
        fabric.gpu_flow(
            fabric.node_of(comm.world_rank),
            nbytes,
            lambda: ev.succeed(None),
            path=path,
            domain=fabric.fabric_domain_of(comm.world_rank),
        )
        yield ev

    # -- collectives ---------------------------------------------------------------

    def bcast(self, comm, nbytes, root=0, payload=None, algorithm=None,
              segsize=None):
        """Root island fan-out -> host bridge across leaders -> other
        islands fan out from their leaders."""
        self._check(comm)
        if comm.size == 1:
            return payload
        hier = self.hier
        rd = self._dom(root)
        mine = self._dom(comm.rank)
        res = None
        if mine == rd:
            res = yield from self.island.bcast(
                hier.fab, nbytes, root=self._frank(root),
                payload=payload if comm.rank == root else None,
            )
            if self._frank(comm.rank) == 0 and comm.rank != root:
                # leader needs a host copy to feed the bridge
                yield from self._hop(comm, nbytes, "d2h")
        host_copy = None
        if self._is_leader:
            host_copy = yield from self.host.bcast(
                hier.fleaders, nbytes, root=rd,
                payload=res if mine == rd else None,
            )
        if mine != rd:
            res = yield from self.island.bcast(
                hier.fab, nbytes, root=0,
                payload=host_copy if self._frank(comm.rank) == 0 else None,
            )
        return payload if comm.rank == root else res

    def reduce(self, comm, nbytes, root=0, payload=None, op=SUM,
               algorithm=None, segsize=None):
        """Every island reduces to its leader, leaders reduce over host
        memory to the root island's leader, plus a delivery fan-out when
        the root is not that leader."""
        self._check(comm)
        if comm.size == 1:
            return payload
        hier = self.hier
        rd = self._dom(root)
        partial = yield from self.island.reduce(
            hier.fab, nbytes, root=0, payload=payload, op=op
        )
        total = None
        if self._is_leader:
            total = yield from self.host.reduce(
                hier.fleaders, nbytes, root=rd, payload=partial, op=op
            )
        if self._frank(root) == 0:
            return total if comm.rank == root else None
        # deliver to the true root over its island fabric + a d2h so the
        # result is host-resident (ready for an inter-node `ir`)
        if self._dom(comm.rank) != rd:
            return None
        res = yield from self.island.bcast(
            hier.fab, nbytes, root=0,
            payload=total if self._frank(comm.rank) == 0 else None,
        )
        if comm.rank != root:
            return None
        yield from self._hop(comm, nbytes, "d2h")
        return res

    def allreduce(self, comm, nbytes, payload=None, op=SUM, algorithm=None,
                  segsize=None):
        """Island reduce -> host allreduce across leaders -> island bcast."""
        self._check(comm)
        if comm.size == 1:
            return payload
        hier = self.hier
        partial = yield from self.island.reduce(
            hier.fab, nbytes, root=0, payload=payload, op=op
        )
        total = None
        if self._is_leader:
            total = yield from self.host.allreduce(
                hier.fleaders, nbytes, payload=partial, op=op
            )
        res = yield from self.island.bcast(
            hier.fab, nbytes, root=0,
            payload=total if self._is_leader else None,
        )
        return res

    def gather(self, comm, nbytes, root=0, payload=None):
        """Island gather to leaders (NVLink + one d2h each), host gather
        across leaders; island order == rank order, so the concatenation
        is already in node-rank order."""
        self._check(comm)
        if comm.size == 1:
            return payload
        hier = self.hier
        rd = self._dom(root)
        island_blk = yield from self.island.gather(
            hier.fab, nbytes, root=0, payload=payload
        )
        full = None
        if self._is_leader:
            full = yield from self.host.gather(
                hier.fleaders, nbytes * self._q, root=rd, payload=island_blk
            )
        if self._frank(root) == 0:
            return full if comm.rank == root else None
        if self._dom(comm.rank) != rd:
            return None
        res = yield from self.island.bcast(
            hier.fab, nbytes * comm.size, root=0,
            payload=full if self._frank(comm.rank) == 0 else None,
        )
        if comm.rank != root:
            return None
        yield from self._hop(comm, nbytes * comm.size, "d2h")
        return res

    def scatter(self, comm, nbytes, root=0, payload=None):
        """Host path: scatter bytes start host-resident at the root and
        are thin per receiver, so they ride shared memory directly."""
        self._check(comm)
        if comm.size == 1:
            return payload
        result = yield from self.host.scatter(
            comm, nbytes, root=root, payload=payload
        )
        return result

    def allgather(self, comm, nbytes, payload=None):
        """Fabric-aware gather to rank 0, then the composed bcast."""
        self._check(comm)
        if comm.size == 1:
            return payload
        gathered = yield from self.gather(comm, nbytes, root=0, payload=payload)
        result = yield from self.bcast(
            comm, nbytes * comm.size, root=0,
            payload=gathered if comm.rank == 0 else None,
        )
        return result

    def reduce_scatter(self, comm, nbytes, payload=None, op=SUM):
        """Fabric-aware reduce to rank 0, then the host scatter."""
        self._check(comm)
        if comm.size == 1:
            return payload
        reduced = yield from self.reduce(
            comm, nbytes, root=0, payload=payload, op=op
        )
        result = yield from self.scatter(
            comm, nbytes, root=0,
            payload=reduced if comm.rank == 0 else None,
        )
        return result

    def alltoall(self, comm, nbytes, payload=None):
        """Gather-transpose-scatter through rank 0: island gathers ride
        NVLink, the transpose is free, the scatter takes the host path."""
        self._check(comm)
        if comm.size == 1:
            return payload
        p = comm.size
        gathered = yield from self.gather(
            comm, nbytes * p, root=0, payload=payload
        )
        send = None
        if gathered is not None:
            per = gathered.size // (p * p)
            # [src][dst][per] -> [dst][src][per]
            send = gathered.reshape(p, p, per).transpose(1, 0, 2).reshape(-1)
        result = yield from self.scatter(
            comm, nbytes * p * p, root=0, payload=send
        )
        return result

    def barrier(self, comm):
        """Island barrier -> leader barrier -> island release."""
        self._check(comm)
        if comm.size == 1:
            return
        hier = self.hier
        yield from self.island.barrier(hier.fab)
        if self._is_leader:
            yield from self.host.barrier(hier.fleaders)
        yield from self.island.barrier(hier.fab)
