"""HAN: the Hierarchical AutotuNed collective communication framework.

This is the paper's primary contribution (section III): hierarchical
collective operations expressed as sequences of *tasks*, where each task
combines fine-grained collective operations from interchangeable
submodules --

- inter-node level: non-blocking collectives from `libnbc` or `adapt`,
- intra-node level: shared-memory collectives from `sm` or `solo`,

with a pipelining technique (segments of size `fs`) that overlaps the
levels.  The per-collective configuration (Table II) lives in
:class:`~repro.core.config.HanConfig`; the autotuner that fills it is
:mod:`repro.tuning`.
"""

from repro.core.config import HanConfig
from repro.core.subcomms import Hierarchy, build_hierarchy
from repro.core.han import HanModule
from repro.core.multilevel import (
    Hierarchy3,
    MultiLevelHanModule,
    build_hierarchy3,
)

__all__ = [
    "HanConfig",
    "HanModule",
    "Hierarchy",
    "Hierarchy3",
    "MultiLevelHanModule",
    "build_hierarchy",
    "build_hierarchy3",
]
