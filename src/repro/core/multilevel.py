"""Three-level HAN: the paper's future work, implemented.

The conclusion announces: "we plan to ... explore approaches based on an
increased number of hardware levels".  This module adds a third level
between node and machine using the interconnect's own structure -- the
dragonfly *group* (Cray Aries) or the fat-tree *edge switch*: messages
cross expensive global links once per group instead of once per node,
and the per-group distribution runs on cheap local links, in parallel
across groups.

Task pipeline per segment (broadcast):

    tb(i)   top-level bcast across group leaders   (global links)
    mb(i)   mid-level bcast within each group      (local links)
    sb(i)   intra-node bcast                        (memory bus)

organized exactly like HAN's 2-level `sbib` stream, one level deeper:
the leader loop runs ``sbmbtb`` compound tasks that keep all three
levels busy on consecutive segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import HanConfig
from repro.core.han import HanModule, han_segments
from repro.core.subcomms import build_hierarchy
from repro.mpi.communicator import Communicator
from repro.mpi.constants import UNDEFINED

__all__ = ["Hierarchy3", "MultiLevelHanModule", "build_hierarchy3"]

_CACHE_ATTR = "_han_hierarchy3"


@dataclass
class Hierarchy3:
    """One rank's view of the node / group / machine decomposition."""

    parent: Communicator
    low: Communicator  # intra-node
    layer: Communicator  # my local-rank layer (one member per node)
    mid: Optional[Communicator]  # my layer, nodes of my group
    top: Optional[Communicator]  # group leaders of my layer

    @property
    def local_rank(self) -> int:
        return self.low.rank

    @property
    def is_group_leader(self) -> bool:
        return self.mid is not None and self.mid.rank == 0

    @property
    def num_groups(self) -> int:
        # every rank knows its top size only if it is a leader; others
        # can infer from group ids -- kept on the hierarchy at build time
        return self._num_groups

    def group_of_node(self, node: int) -> int:
        return self._group_fn(node)


def _group_fn_for(comm: Communicator):
    """Node -> topology group (dragonfly group / fat-tree edge switch)."""
    topo = comm.runtime.fabric.topo
    if hasattr(topo, "group_of"):
        return topo.group_of  # dragonfly takes node ids
    if hasattr(topo, "edge_of"):
        return topo.edge_of
    # structureless fabrics: synthesize groups of ~sqrt(N) nodes
    n = comm.runtime.machine.num_nodes
    per = max(1, int(np.ceil(np.sqrt(n))))
    return lambda node: node // per


def build_hierarchy3(comm: Communicator):
    """Collectively build (and cache) the three-level decomposition."""
    cached = getattr(comm, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    two = yield from build_hierarchy(comm)
    group_fn = _group_fn_for(comm)

    my_node = comm.node_of()
    mid = yield from two.up.split(color=group_fn(my_node), key=two.up.rank)
    is_leader = mid.rank == 0
    top = yield from two.up.split(
        color=0 if is_leader else UNDEFINED, key=two.up.rank
    )
    hier = Hierarchy3(
        parent=comm, low=two.low, layer=two.up, mid=mid, top=top
    )
    groups = {group_fn(comm.runtime.fabric.node_of(w)) for w in comm.group}
    hier._num_groups = len(groups)
    hier._group_fn = group_fn
    setattr(comm, _CACHE_ATTR, hier)
    return hier


class MultiLevelHanModule(HanModule):
    """HAN with a third (topology-group) level for rooted collectives.

    Falls back to the 2-level pipeline when the machine has fewer than
    ``min_groups`` groups (the extra stage only pays off when the top
    level is substantially smaller than the leader layer).
    """

    name = "han3"

    def __init__(self, config: Optional[HanConfig] = None,
                 decision_fn=None, min_groups: int = 2):
        super().__init__(config=config, decision_fn=decision_fn)
        self.min_groups = min_groups

    def bcast(self, comm, nbytes, root=0, payload=None, config=None,
              algorithm=None, segsize=None):
        if comm.size == 1:
            return payload
        hier2 = yield from build_hierarchy(comm)
        if hier2.local_rank_of(root) != 0:
            # three-level relocation is only wired for layer-0 roots;
            # other roots use the 2-level path (still hierarchical)
            out = yield from super().bcast(
                comm, nbytes, root=root, payload=payload, config=config,
                algorithm=algorithm, segsize=segsize,
            )
            return out
        hier = yield from build_hierarchy3(comm)
        if (
            hier.num_groups < self.min_groups
            or hier.num_groups == hier.layer.size
        ):
            out = yield from super().bcast(
                comm, nbytes, root=root, payload=payload, config=config,
                algorithm=algorithm, segsize=segsize,
            )
            return out
        cfg = self.resolve_config(hier2, nbytes, "bcast", config)
        if segsize is not None:
            cfg = cfg.with_(fs=segsize)
        imod, smod = self.module(cfg.imod), self._intra_module(hier2, cfg)
        low, mid, top = hier.low, hier.mid, hier.top
        on_layer = hier.local_rank == 0
        u, seg_bytes, views = han_segments(
            nbytes, cfg.fs, payload if comm.rank == root else None
        )
        pieces: list = [None] * u

        if not on_layer:
            for i in range(u):
                pieces[i] = yield from smod.bcast(
                    low, seg_bytes[i], root=0, payload=None
                )
            return self._assemble(comm, root, payload, pieces, u)

        # ---- layer members: the sb/mb/tb pipeline ----
        root_mid_rank = None
        reloc_peer = None
        root_top = 0
        root_w = comm.group[root]
        root_node = comm.runtime.fabric.node_of(root_w)
        root_group = hier.group_of_node(root_node)
        my_group = hier.group_of_node(comm.node_of())
        i_am_root_leader = comm.rank == root

        # Relocation: if the root's node is not its group's fixed leader,
        # the root hands each segment to that leader over the local fabric.
        in_root_group = my_group == root_group
        needs_reloc = False
        if in_root_group:
            # mid rank 0 is the fixed leader of this group
            needs_reloc = i_am_root_leader and mid.rank != 0
        recv_reloc = (
            in_root_group and mid.rank == 0 and not i_am_root_leader
            and root_group == my_group
        )
        if hier.top is not None:
            # top root = position of the root's group among group leaders
            # (top members are ordered by layer rank == node order)
            groups_sorted = sorted(
                {
                    hier.group_of_node(
                        comm.runtime.fabric.node_of(w)
                    )
                    for w in comm.group
                }
            )
            root_top = groups_sorted.index(root_group)

        tb_req: dict[int, object] = {}
        mb_req: dict[int, object] = {}
        tb_res: dict[int, object] = {}
        for i in range(u + 2):
            if 0 <= i < u:
                # tb(i): top-level bcast across group leaders
                buf = views[i] if i_am_root_leader else None
                if needs_reloc:
                    yield from mid.send(
                        0, payload=views[i], nbytes=seg_bytes[i], tag=77
                    )
                if recv_reloc:
                    msg = yield from mid.recv(
                        source=None if False else mid.size and
                        _root_mid(mid, comm, root_w), tag=77
                    )
                    buf = msg.payload
                if top is not None:
                    tb_req[i] = imod.ibcast(
                        top, seg_bytes[i], root=root_top, payload=buf,
                        algorithm=cfg.ibalg, segsize=cfg.ibs,
                    )
                else:
                    tb_res[i] = buf
            if 0 <= i - 1 < u:
                # mb(i-1): distribute within the group
                if top is not None and (i - 1) in tb_req:
                    tb_res[i - 1] = yield from hier.layer.wait(
                        tb_req.pop(i - 1)
                    )
                    if i_am_root_leader and tb_res[i - 1] is None:
                        tb_res[i - 1] = views[i - 1]
                if mid.size > 1:
                    mb_req[i - 1] = imod.ibcast(
                        mid, seg_bytes[i - 1], root=0,
                        payload=tb_res.pop(i - 1) if mid.rank == 0 else None,
                        algorithm=cfg.ibalg, segsize=cfg.ibs,
                    )
                else:
                    mb_req[i - 1] = None
            if 0 <= i - 2 < u:
                # sb(i-2): intra-node distribution
                req = mb_req.pop(i - 2)
                if req is not None:
                    seg_payload = yield from hier.layer.wait(req)
                else:
                    seg_payload = tb_res.pop(i - 2, None)
                pieces[i - 2] = yield from smod.bcast(
                    low, seg_bytes[i - 2], root=0, payload=seg_payload
                )
        return self._assemble(comm, root, payload, pieces, u)

    @staticmethod
    def _assemble(comm, root, payload, pieces, u):
        if comm.rank == root:
            return payload
        if any(p is None for p in pieces):
            return None
        return pieces[0] if u == 1 else np.concatenate(pieces)


def _root_mid(mid, comm, root_w):
    """Mid-comm rank of the broadcast root (it is in this mid comm)."""
    return mid.group.index(root_w)
