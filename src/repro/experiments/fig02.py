"""Fig 2: cost of tasks ib, sb, concurrent ib+sb, and delayed-start sbib.

Paper setup: 64KB segments on 6 nodes, rank 0 as root, several
submodule/algorithm configurations.  The figure's three findings, which
this driver reproduces:

1. node leaders finish ib(0) at *different* times;
2. the overlap of ib and sb is significant but usually not perfect
   (max(ib, sb) < concurrent < ib + sb);
3. in-context (delayed-start) sbib differs from naively timing
   concurrent ib+sb -- "the importance of considering previous tasks".
"""

from __future__ import annotations

from repro.core.config import HanConfig
from repro.experiments.common import (
    geometry,
    main_wrapper,
    print_table,
    save_result,
)
from repro.tuning import TaskBench

KiB = 1024

CONFIGS = [
    HanConfig(fs=64 * KiB, imod="libnbc", smod="sm"),
    HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="chain", iralg="chain"),
    HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="binary", iralg="binary"),
    HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="binomial",
              iralg="binomial"),
]


#: segment sizes swept.  The paper's Fig 2 uses 64KB; larger segments
#: are included because the memory-bus + CPU contention that makes the
#: overlap *imperfect* grows with segment size (at 64KB on this
#: simulated substrate `sb` hides almost entirely inside `ib`).
SEG_SIZES = (64 * KiB, 512 * KiB, 2 * 1024 * KiB)


def run(scale: str = "small", save: bool = True) -> dict:
    """Regenerate Fig 2 (task costs per node leader)."""
    machine = geometry("shaheen2", "small").scaled(num_nodes=6)  # paper: 6 nodes
    bench = TaskBench(machine, warm_iters=8)
    out = {"machine": f"{machine.name} 6x{machine.ppn}", "segments": {}}
    detail_rows = []
    overlap_rows = []
    for seg in SEG_SIZES:
        seg_out = out["segments"].setdefault(int(seg), {})
        for base_cfg in CONFIGS:
            cfg = base_cfg.with_(fs=seg)
            costs = bench.bench_bcast_tasks(cfg, seg)
            label = f"{cfg.imod}" + (f"/{cfg.ibalg}" if cfg.ibalg else "")
            seg_out[label] = {
                "ib0_per_leader_us": [t * 1e6 for t in costs.ib0],
                "sb0_us": float(costs.sb0.max() * 1e6),
                "concurrent_per_leader_us": [t * 1e6 for t in costs.concurrent],
                "sbib_delayed_per_leader_us": [
                    t * 1e6 for t in costs.sbib_stable
                ],
            }
            if seg == 64 * KiB:  # the paper's per-leader bars
                for leader in range(machine.num_nodes):
                    detail_rows.append(
                        (
                            label,
                            leader,
                            f"{costs.ib0[leader] * 1e6:.2f}",
                            f"{costs.sb0.max() * 1e6:.2f}",
                            f"{costs.concurrent[leader] * 1e6:.2f}",
                            f"{costs.sbib_stable[leader] * 1e6:.2f}",
                        )
                    )
            ib = costs.ib0.max() * 1e6
            sb = costs.sb0.max() * 1e6
            conc = costs.concurrent.max() * 1e6
            verdict = (
                "imperfect" if conc > max(ib, sb) * 1.02
                else "near-perfect"
            ) if conc <= (ib + sb) * 1.001 else "check"
            overlap_rows.append(
                (
                    f"{int(seg) >> 10}KB",
                    label,
                    f"{ib:.1f}",
                    f"{sb:.1f}",
                    f"{conc:.1f}",
                    f"{ib + sb:.1f}",
                    verdict,
                )
            )
    print_table(
        "Fig 2: task costs per node leader (us), 64KB segments, 6 nodes",
        ["config", "leader", "ib(0)", "sb(0)", "ib+sb concurrent",
         "sbib (delayed)"],
        detail_rows,
    )
    print_table(
        "Fig 2 (overlap summary): max(ib,sb) <= concurrent <= ib+sb",
        ["segment", "config", "ib", "sb", "concurrent", "serial sum",
         "overlap"],
        overlap_rows,
    )
    if save:
        save_result("fig02_task_costs", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
