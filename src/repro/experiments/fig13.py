"""Fig 13: MPI_Allreduce on Shaheen II (paper: 4096 processes).

Paper: significant improvement over default Open MPI everywhere; "HAN
shows better performance than Cray MPI after the message size is larger
than 2MB and eventually achieves up to 1.12X speedup"; on *small*
messages HAN lags because its small-message submodules (Libnbc, SM) lack
AVX reductions (paper IV-A2).
"""

from __future__ import annotations

from repro.experiments.common import main_wrapper
from repro.experiments.machine_bench import bench_against_libraries


def run(scale: str = "small", save: bool = True, store_dir=None) -> dict:
    """Regenerate Fig 13."""
    return bench_against_libraries(
        fig="Fig 13",
        machine_name="shaheen2",
        coll="allreduce",
        rivals=["openmpi", "craympi"],
        scale=scale,
        save=save,
        paper_note=(
            "HAN > default Open MPI everywhere; crossover vs Cray MPI near "
            "2MB, up to 1.12x beyond; HAN behind on small (no AVX in SM/"
            "Libnbc)"
        ),
        store_dir=store_dir,
    )


if __name__ == "__main__":
    main_wrapper(run)
