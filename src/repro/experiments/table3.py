"""Table III: ASP (parallel Floyd-Warshall) on Stampede2.

Paper setup: 1536 processes, 1M-row matrix (4MB row broadcasts), first
1536 iterations so every process roots once.  Paper results:

================  ==========  ============
library           comm ratio  HAN speedup
================  ==========  ============
HAN               46.41%      1.00x
Intel MPI         50.24%      1.08x
MVAPICH2          69.29%      1.80x
default Open MPI  81.77%      2.43x
================  ==========  ============
"""

from __future__ import annotations

from repro.apps import asp_run
from repro.comparators import OpenMPIHan, library_by_name
from repro.experiments.common import (
    geometry,
    main_wrapper,
    print_table,
    save_result,
    tuned_decision,
)

#: matrix rows: the paper's 1M rows (4MB broadcasts) at every scale --
#: the row size, not the rank count, determines the bcast regime
N_VERTICES = {"small": 1_000_000, "medium": 1_000_000, "paper": 1_000_000}


def run(scale: str = "small", save: bool = True) -> dict:
    """Regenerate Table III."""
    machine = geometry("stampede2", scale)
    n = N_VERTICES[scale]
    decide = tuned_decision(machine, colls=("bcast",))
    han = OpenMPIHan(decision_fn=decide)
    libs = [
        han,
        library_by_name("intelmpi"),
        library_by_name("mvapich2"),
        library_by_name("openmpi"),
    ]
    # Calibrate the FW-update rate so HAN sits at the paper's balance
    # point (46.41% communication); the other libraries' ratios and the
    # speedups then fall out of their broadcast costs (see
    # repro.apps.asp.calibrated_flops).
    from repro.apps import calibrated_flops

    flops = calibrated_flops(machine, han, n, target_comm_ratio=0.4641)
    results = {
        lib.name: asp_run(machine, lib, n_vertices=n, flops=flops)
        for lib in libs
    }
    han_total = results["han"].total_time
    rows = []
    out = {
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "n_vertices": n,
        "iterations": results["han"].iterations,
        "libraries": {},
    }
    for name, res in results.items():
        speedup = res.total_time / han_total
        rows.append(
            (
                name,
                f"{res.total_time * 1e3:.1f}ms",
                f"{res.comm_time * 1e3:.1f}ms",
                f"{res.comm_ratio * 100:.2f}%",
                f"{speedup:.2f}x",
            )
        )
        out["libraries"][name] = {
            "total_s": res.total_time,
            "comm_s": res.comm_time,
            "comm_ratio_pct": res.comm_ratio * 100,
            "han_speedup": speedup,
        }
    print_table(
        f"Table III: ASP, {machine.num_ranks} processes, "
        f"{n:,}-row matrix, first {results['han'].iterations} iterations",
        ["library", "total", "comm", "comm ratio", "HAN speedup"],
        rows,
    )
    print(
        "\npaper reference: comm ratios 46.41/50.24/69.29/81.77% "
        "(HAN/Intel/MVAPICH2/OMPI); speedups 1.08x/1.80x/2.43x"
    )
    print(
        "note: in this zero-noise simulator the default Open MPI flat "
        "chain pipelines across ASP iterations (wavefront), an idealised "
        "behaviour real 1536-rank systems do not sustain -- see "
        "EXPERIMENTS.md"
    )
    if save:
        save_result("table3_asp", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
