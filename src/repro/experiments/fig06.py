"""Fig 6: the overlap between inter-node broadcast (ib) and reduce (ir).

"ir and ib could overlap if their communications occupy opposite
directions of the same inter-node network ... [Fig 6] strongly indicates
a high degree of overlap."  HAN uses the same algorithm and root for
both to maximize it (paper III-B1).
"""

from __future__ import annotations

from repro.core.config import HanConfig
from repro.experiments.common import (
    geometry,
    main_wrapper,
    print_table,
    save_result,
)
from repro.tuning import TaskBench

KiB = 1024

CONFIGS = [
    ("libnbc", HanConfig(fs=64 * KiB, imod="libnbc", smod="sm")),
    ("adapt/chain", HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                              ibalg="chain", iralg="chain")),
    ("adapt/binary", HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                               ibalg="binary", iralg="binary")),
    ("adapt/binomial", HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                                 ibalg="binomial", iralg="binomial")),
]


def run(scale: str = "small", save: bool = True) -> dict:
    """Regenerate Fig 6 (ib/ir overlap per config)."""
    machine = geometry("shaheen2", "small").scaled(num_nodes=6)
    seg = 64 * KiB
    bench = TaskBench(machine, warm_iters=4)
    out = {"machine": f"{machine.name} 6x{machine.ppn}", "seg_bytes": seg,
           "rows": []}
    rows = []
    for label, cfg in CONFIGS:
        r = bench.bench_ib_ir_overlap(cfg, seg)
        ib, ir, both = r["ib"].max(), r["ir"].max(), r["both"].max()
        overlap = 100 * (ib + ir - both) / min(ib, ir) if min(ib, ir) else 0
        rows.append(
            (label, f"{ib * 1e6:.2f}", f"{ir * 1e6:.2f}",
             f"{both * 1e6:.2f}", f"{ib + ir:.2e}", f"{overlap:.0f}%")
        )
        out["rows"].append(
            {"config": label, "ib_us": ib * 1e6, "ir_us": ir * 1e6,
             "concurrent_us": both * 1e6,
             "overlap_pct_of_smaller": overlap}
        )
    print_table(
        "Fig 6: ib vs ir vs concurrent ib+ir (us, max over leaders)",
        ["config", "ib", "ir", "ib+ir concurrent", "serial sum", "overlap"],
        rows,
    )
    if save:
        save_result("fig06_ib_ir_overlap", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
