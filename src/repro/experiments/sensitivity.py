"""Sensitivity of autotuned decisions to performance variability.

The paper's tuning story (Figs 8/9) assumes noise-free measurements: one
benchmark run per configuration picks the winner.  The reproducibility
literature (Cornebize & Legrand; Hunold & Carpen-Amarie) shows that on a
real, noisy platform a single sample routinely crowns the wrong
configuration.  This experiment quantifies that on the simulated
platform using :mod:`repro.faults`:

1. a noise-free exhaustive search establishes the ground-truth winner
   per (collective, message size);
2. under increasing :class:`~repro.faults.OsNoise` amplitude, a *naive*
   tuner (one sample per configuration), a *robust* tuner (median of k
   samples, confidence-aware selection) and a *bandit* tuner (successive
   halving with the same k ceiling, ``allocation="bandit"``) re-tune;
3. each pick is scored by its noise-free time; "regret" is the gap to
   the ground-truth best, a "flip" is picking a non-optimal config.

Expected shape: at amplitude 0 every method agrees (bit-identical to the
pristine platform); as amplitude grows the naive tuner starts flipping
while median-of-k keeps (most of) the decisions and pays at most a
fraction of the naive regret — and the bandit keeps the robust tuner's
decision quality while spending a fraction of its trial budget (the
``BENCH_bandit_trials.json`` gate, here folded into the same artifact).

``--traffic-plan``/``--traffic-seed`` re-run the noisy tuners under
background tenant load (:mod:`repro.tenancy`); the ground truth stays
quiet, so regret then also prices in interference-driven flips.
"""

from __future__ import annotations

from repro.experiments.common import (
    fmt_bytes,
    geometry,
    main_wrapper,
    print_table,
    save_result,
)
from repro.faults import FaultPlan, OsNoise
from repro.tuning import Autotuner, SearchSpace

KiB, MiB = 1024, 1024 * 1024

GEOM = {"small": (4, 4), "medium": (8, 8), "paper": (16, 12)}

SEED = 2026
AMPLITUDES = (0.0, 0.5, 1.0)
STRAGGLER_PROB = 0.02  # per-rank chance of a straggler in any one run
TRIALS = 5  # the k of median-of-k


def _space() -> SearchSpace:
    return SearchSpace(
        seg_sizes=(128 * KiB, 512 * KiB),
        messages=(256 * KiB, 1 * MiB),
        adapt_algorithms=("chain", "binary"),
        inner_segs=(None,),
    )


def _pick_time(report, truth_times, coll, nodes, ppn, m):
    """Noise-free cost of the configuration ``report`` selected."""
    cfg = report.table.get(coll, nodes, ppn, m)
    return cfg, truth_times[cfg]


def run(scale: str = "small", save: bool = True, traffic_plan=None) -> dict:
    """Tuned-decision flips vs noise amplitude: naive, median-of-k, bandit."""
    nodes, ppn = GEOM[scale]
    machine = geometry("shaheen2", "small").scaled(num_nodes=nodes, ppn=ppn)
    space = _space()
    colls = ("bcast", "allreduce")

    truth = Autotuner(machine, space=space).tune(colls=colls, method="exhaustive")

    out = {
        "machine": f"{machine.name} {nodes}x{ppn}",
        "seed": SEED,
        "trials": TRIALS,
        "amplitudes": list(AMPLITUDES),
        "traffic_plan": traffic_plan.describe() if traffic_plan else None,
        "colls": {c: {} for c in colls},
        "summary": {},
    }
    tags = ("naive", "robust", "bandit")
    flips = {tag: 0 for tag in tags}
    regret = {tag: 0.0 for tag in tags}
    trials_spent = {"robust": 0, "bandit": 0}
    rows = []
    for amp in AMPLITUDES:
        plan = FaultPlan(seed=SEED).add(
            OsNoise(amplitude=amp, prob=STRAGGLER_PROB)
        )
        naive = Autotuner(
            machine, space=space, fault_plan=plan, trials=1,
            traffic_plan=traffic_plan,
        ).tune(colls=colls, method="exhaustive")
        robust = Autotuner(
            machine, space=space, fault_plan=plan, trials=TRIALS,
            selection="confident", traffic_plan=traffic_plan,
        ).tune(colls=colls, method="exhaustive")
        bandit = Autotuner(
            machine, space=space, fault_plan=plan, trials=TRIALS,
            selection="confident", allocation="bandit",
            traffic_plan=traffic_plan,
        ).tune(colls=colls, method="exhaustive")
        trials_spent["robust"] += robust.trials_spent
        trials_spent["bandit"] += bandit.trials_spent
        for coll in colls:
            for m in space.messages:
                truth_times = dict(truth.candidates[(coll, m)])
                best_cfg, best_t = truth.best(coll, m)
                cell = {}
                for tag, rep in (
                    ("naive", naive), ("robust", robust), ("bandit", bandit)
                ):
                    cfg, t = _pick_time(rep, truth_times, coll, nodes, ppn, m)
                    flip = cfg != best_cfg
                    reg = (t - best_t) / best_t
                    if amp > 0:
                        flips[tag] += flip
                        regret[tag] += reg
                    cell[tag] = {
                        "picked": cfg.key(), "flip": flip,
                        "regret_pct": 100.0 * reg,
                    }
                cell["truth"] = {"picked": best_cfg.key(), "time": best_t}
                out["colls"][coll].setdefault(fmt_bytes(m), {})[str(amp)] = cell
                rows.append(
                    (
                        coll,
                        fmt_bytes(m),
                        f"{amp:.1f}",
                        "flip" if cell["naive"]["flip"] else "keep",
                        f"{cell['naive']['regret_pct']:.1f}%",
                        "flip" if cell["robust"]["flip"] else "keep",
                        f"{cell['robust']['regret_pct']:.1f}%",
                        "flip" if cell["bandit"]["flip"] else "keep",
                        f"{cell['bandit']['regret_pct']:.1f}%",
                    )
                )
    savings = 1.0 - trials_spent["bandit"] / trials_spent["robust"]
    out["summary"] = {
        "naive_flips": flips["naive"],
        "robust_flips": flips["robust"],
        "naive_regret_pct": 100.0 * regret["naive"],
        "robust_regret_pct": 100.0 * regret["robust"],
        "bandit_flips": flips["bandit"],
        "bandit_regret_pct": 100.0 * regret["bandit"],
        "fixed_trials_spent": trials_spent["robust"],
        "bandit_trials_spent": trials_spent["bandit"],
        "bandit_trial_savings_pct": 100.0 * savings,
    }
    print_table(
        "Tuned decision vs noise amplitude "
        "(1-shot naive vs median-of-k vs bandit)",
        ["coll", "message", "amp", "naive", "regret",
         "median-of-k", "regret", "bandit", "regret"],
        rows,
    )
    print(
        f"\nflips: naive={flips['naive']} robust={flips['robust']} "
        f"bandit={flips['bandit']}; "
        f"cumulative regret: naive={100 * regret['naive']:.1f}% "
        f"robust={100 * regret['robust']:.1f}% "
        f"bandit={100 * regret['bandit']:.1f}%"
    )
    print(
        f"trial budget: fixed={trials_spent['robust']} "
        f"bandit={trials_spent['bandit']} "
        f"({100 * savings:.1f}% saved)"
    )
    if save:
        save_result("sensitivity_variability", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
