"""Fig 14: MPI_Allreduce on Stampede2 (paper: 1536 processes).

Paper: "HAN is the fastest when message size is between 4MB and 64MB.
Afterward, it delivers a similar performance as MVAPICH2 [multi-leader
allreduce], both significantly outperforming the others."
"""

from __future__ import annotations

from repro.experiments.common import main_wrapper
from repro.experiments.machine_bench import bench_against_libraries


def run(scale: str = "small", save: bool = True, store_dir=None) -> dict:
    """Regenerate Fig 14."""
    return bench_against_libraries(
        fig="Fig 14",
        machine_name="stampede2",
        coll="allreduce",
        rivals=["intelmpi", "mvapich2", "openmpi"],
        scale=scale,
        save=save,
        paper_note=(
            "HAN fastest 4..64MB; ties MVAPICH2 (multi-leader) above; both "
            "clearly beat Intel MPI and default Open MPI at large sizes"
        ),
        store_dir=store_dir,
    )


if __name__ == "__main__":
    main_wrapper(run)
