"""Fig 10: MPI_Bcast on Shaheen II (paper: 4096 processes).

Paper findings to reproduce in shape:

- HAN beats default Open MPI by up to 4.72x (small) / 7.35x (large);
- Cray MPI is slightly *faster* than HAN on small messages (better P2P,
  Fig 11);
- HAN beats Cray MPI by up to 2.32x on large messages (level overlap).
"""

from __future__ import annotations

from repro.experiments.common import main_wrapper
from repro.experiments.machine_bench import bench_against_libraries


def run(scale: str = "small", save: bool = True, trace_out: str = "",
        store_dir=None, decision_store=None) -> dict:
    """Regenerate Fig 10."""
    return bench_against_libraries(
        fig="Fig 10",
        machine_name="shaheen2",
        coll="bcast",
        rivals=["openmpi", "craympi"],
        scale=scale,
        save=save,
        paper_note=(
            "HAN up to 4.72x/7.35x vs default Open MPI (small/large); "
            "slightly slower than Cray MPI small, up to 2.32x faster large"
        ),
        trace_out=trace_out,
        store_dir=store_dir,
        decision_store=decision_store,
    )


if __name__ == "__main__":
    main_wrapper(run)
