"""Fig 8: total autotuning search time across the four methods.

Paper result (64 nodes x 12 ppn): relative to the exhaustive search,
heuristics cost 26.8%, the task-based method 23% ("reduces the tuning
time by 77%"), and the combined approach 4.3%.  The absolute numbers are
machine- and space-dependent; the *ordering* and rough magnitudes are
the reproduction target.
"""

from __future__ import annotations

from repro.experiments.common import (
    geometry,
    main_wrapper,
    print_table,
    run_store,
    save_result,
)
from repro.tuning import Autotuner, MeasurementCache, SearchSpace

KiB, MiB = 1024, 1024 * 1024

GEOM = {"small": (8, 8), "medium": (16, 12), "paper": (64, 12)}
METHODS = ("exhaustive", "exhaustive+h", "task", "task+h")


def run(
    scale: str = "small",
    save: bool = True,
    workers: int = 0,
    cache_dir=None,
    store_dir=None,
) -> dict:
    """Regenerate Fig 8 (tuning cost per search method).

    ``workers`` fans measurements over a process pool; ``cache_dir``
    persists them across runs.  Both only change the wall-clock: the
    heuristic methods re-measure points of the plain methods, so even
    the default in-memory cache collapses substantial rework, while the
    reported tuning cost stays in simulated benchmark seconds.
    ``store_dir`` points the cross-run observatory (default
    ``results/store``; ``"none"`` disables).
    """
    nodes, ppn = GEOM[scale]
    machine = geometry("shaheen2", "small").scaled(num_nodes=nodes, ppn=ppn)
    space = SearchSpace(
        seg_sizes=(128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB),
        messages=[2.0 ** k for k in range(12, 25)],  # 4KB .. 16MB
        adapt_algorithms=("chain", "binary", "binomial"),
        inner_segs=(None,),
    )
    cache = MeasurementCache(cache_dir)
    # an explicitly requested store dir is honored even under
    # --no-save; only the default results/store is save-gated
    store = run_store(store_dir) if (save or store_dir) else None
    tuner = Autotuner(
        machine, space=space, warm_iters=6, workers=workers, cache=cache,
        store=store,
    )
    reports = {}
    for method in METHODS:
        reports[method] = tuner.tune(colls=("bcast", "allreduce"),
                                     method=method)
    base = reports["exhaustive"].tuning_cost
    rows = []
    out = {"machine": f"{machine.name} {nodes}x{ppn}", "methods": {}}
    for method in METHODS:
        rep = reports[method]
        rel = 100 * rep.tuning_cost / base
        rows.append(
            (method, rep.searches, f"{rep.tuning_cost:.3f}s", f"{rel:.1f}%")
        )
        out["methods"][method] = {
            "searches": rep.searches,
            "tuning_cost_s": rep.tuning_cost,
            "relative_pct": rel,
        }
    print_table(
        "Fig 8: total search time of MPI_Bcast + MPI_Allreduce tuning",
        ["method", "benchmark runs", "simulated bench time", "vs exhaustive"],
        rows,
    )
    print(
        "\npaper reference: heuristics 26.8%, task-based 23%, combined 4.3% "
        "of exhaustive"
    )
    stats = cache.stats()
    out["cache"] = stats
    print(
        f"measurement cache: {stats['hits']} hits / {stats['misses']} misses "
        f"across the four methods"
    )
    if save:
        save_result("fig08_tuning_cost", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
