"""Fig 15: Horovod (AlexNet, synthetic data) scaling on Stampede2.

Paper: due to a site configuration problem only Intel MPI, default Open
MPI and HAN ran; "increasing gains for HAN as the number of processes
increases, becoming 24.30% and 9.05% faster than default Open MPI and
Intel MPI on 1536 processes".
"""

from __future__ import annotations

from repro.apps import horovod_run
from repro.comparators import OpenMPIHan, library_by_name
from repro.experiments.common import (
    geometry,
    main_wrapper,
    print_table,
    save_result,
    tuned_decision,
)

#: (nodes, ppn) sweep per scale; paper sweeps up to 32x48 = 1536
SWEEPS = {
    "small": [(2, 12), (4, 12), (8, 12)],
    "medium": [(4, 16), (8, 16), (16, 16)],
    "paper": [(8, 48), (16, 48), (32, 48)],
}


def run(scale: str = "small", save: bool = True) -> dict:
    """Regenerate Fig 15 (Horovod throughput scaling)."""
    out = {"scale": scale, "points": []}
    rows = []
    for nodes, ppn in SWEEPS[scale]:
        machine = geometry("stampede2", "small").scaled(
            num_nodes=nodes, ppn=ppn
        )
        decide = tuned_decision(machine, colls=("allreduce",))
        libs = [
            OpenMPIHan(decision_fn=decide),
            library_by_name("intelmpi"),
            library_by_name("openmpi"),
        ]
        point = {"ranks": machine.num_ranks, "images_per_sec": {}}
        res = {lib.name: horovod_run(machine, lib, steps=1) for lib in libs}
        for name, r in res.items():
            point["images_per_sec"][name] = r.images_per_sec
        han = res["han"].images_per_sec
        rows.append(
            (
                machine.num_ranks,
                f"{han:.0f}",
                f"{res['intelmpi'].images_per_sec:.0f}",
                f"{res['openmpi'].images_per_sec:.0f}",
                f"{100 * (han / res['intelmpi'].images_per_sec - 1):+.1f}%",
                f"{100 * (han / res['openmpi'].images_per_sec - 1):+.1f}%",
            )
        )
        out["points"].append(point)
    print_table(
        "Fig 15: Horovod AlexNet throughput (images/s)",
        ["ranks", "HAN", "Intel MPI", "Open MPI", "HAN vs Intel",
         "HAN vs OMPI"],
        rows,
    )
    print(
        "\npaper reference at 1536 ranks: HAN +9.05% vs Intel MPI, "
        "+24.30% vs default Open MPI; gains grow with scale"
    )
    print(
        "note: the growth-with-scale trend needs paper-scale rank counts "
        "(flat-ring chunk collapse); at reduced scale HAN wins every "
        "point on allreduce cost -- see EXPERIMENTS.md"
    )
    if save:
        save_result("fig15_horovod", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
