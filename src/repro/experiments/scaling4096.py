"""Paper-scale run: HAN collectives at 4096 processes (256 nodes x 16).

The published evaluation runs up to 4096 processes; the incremental
fluid solver is what makes that geometry tractable in simulation (the
reference solver re-solves every in-flight flow globally at every rate
event).  This driver times MPI_Bcast and MPI_Allreduce at 1 MiB on the
full geometry and reports both the simulated collective times and the
engine event count, so ``scripts/bench_sim_kernel.py`` can bit-compare
the incremental and reference solvers at paper scale.

Scales:

- ``quick``  -- 16 nodes x 4 ppn; seconds, used by the bench ``--quick``,
- ``small``  -- 32 nodes x 8 ppn,
- ``medium`` -- 64 nodes x 16 ppn,
- ``paper``  -- 256 nodes x 16 ppn = 4096 processes.
"""

from __future__ import annotations

from repro.core.config import HanConfig
from repro.experiments.common import (
    fmt_time,
    main_wrapper,
    print_table,
    run_store,
    save_result,
)
from repro.hardware import shaheen2
from repro.sim.engine import Engine
from repro.tuning.measure import measure_collective

KiB, MiB = 1024, 1024 * 1024

GEOM = {
    "quick": (16, 4),
    "small": (32, 8),
    "medium": (64, 16),
    "paper": (256, 16),
}

COLLS = ("bcast", "allreduce")
NBYTES = 1 * MiB


def run(scale: str = "small", save: bool = True, store_dir=None) -> dict:
    """Time bcast + allreduce at (up to) 4096 simulated processes."""
    nodes, ppn = GEOM.get(scale, GEOM["paper"])
    machine = shaheen2(num_nodes=nodes, ppn=ppn)
    config = HanConfig(fs=512 * KiB)
    # an explicitly requested store dir is honored even under
    # --no-save; only the default results/store is save-gated
    store = run_store(store_dir) if (save or store_dir) else None
    out: dict = {
        "geometry": f"{machine.name} {nodes}x{ppn} "
                    f"({machine.num_ranks} processes)",
        "nbytes": NBYTES,
        "times": {},
        "events": {},
    }
    rows = []
    for coll in COLLS:
        ev0 = Engine.events_total
        m = measure_collective(machine, coll, NBYTES, config,
                               store=store, store_source="scaling4096")
        events = Engine.events_total - ev0
        # repr() keeps the full float; json round-trips it exactly, so
        # the bench's before/after bit-comparison stays meaningful.
        out["times"][coll] = m.time
        out["events"][coll] = events
        rows.append((coll, fmt_time(m.time), f"{events:,}"))
    print_table(
        f"Scaling: 1 MiB collectives at {machine.num_ranks} processes",
        ["collective", "simulated time", "engine events"],
        rows,
    )
    if save:
        save_result(f"scaling4096_{scale}", out, config=config)
    return out


if __name__ == "__main__":
    main_wrapper(run)
