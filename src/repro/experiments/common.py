"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

import argparse
import inspect
import json
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.hardware import shaheen2, stampede2
from repro.hardware.spec import MachineSpec
from repro.tuning import Autotuner, LookupTable, SearchSpace

__all__ = [
    "RESULT_HEADER_KEYS",
    "RESULT_SCHEMA_VERSION",
    "RESULTS_DIR",
    "bcast_sweep_sizes",
    "fmt_bytes",
    "geometry",
    "main_wrapper",
    "print_table",
    "run_store",
    "save_result",
    "strip_result_header",
    "tuned_decision",
]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

#: every ``results/*.json`` document carries this version plus a config
#: digest, so downstream tooling can tell at a glance whether two result
#: files are comparable.  Bump on incompatible layout changes.
RESULT_SCHEMA_VERSION = 1

#: provenance keys :func:`save_result` stamps onto every document —
#: consumers that diff or hash results (golden traces, regen scripts)
#: must ignore exactly these.
RESULT_HEADER_KEYS = frozenset(
    {"schema_version", "config_digest", "_generated"}
)


def strip_result_header(doc: dict) -> dict:
    """The document minus the provenance header (for content compares)."""
    return {k: v for k, v in doc.items() if k not in RESULT_HEADER_KEYS}


def run_store(store_dir: Optional[str] = None):
    """The cross-run observatory every experiment appends to.

    Defaults to ``results/store/``; pass ``store_dir="none"`` to disable
    (returns ``None``) — e.g. for throwaway runs that should not enter
    the regression history (``python -m repro.obs.cli regress``).
    """
    if store_dir == "none":
        return None
    from repro.obs.store import RunStore

    return RunStore(Path(store_dir) if store_dir else RESULTS_DIR / "store")

KiB, MiB = 1024, 1024 * 1024

#: machine geometries (nodes, ppn) per scale
GEOMETRY = {
    "shaheen2": {"small": (8, 8), "medium": (16, 16), "paper": (128, 32)},
    "stampede2": {"small": (8, 8), "medium": (16, 24), "paper": (32, 48)},
}


def geometry(machine_name: str, scale: str) -> MachineSpec:
    """The machine preset scaled for the requested experiment size."""
    try:
        nodes, ppn = GEOMETRY[machine_name][scale]
    except KeyError:
        raise ValueError(
            f"unknown machine/scale {machine_name!r}/{scale!r}"
        ) from None
    base = shaheen2 if machine_name == "shaheen2" else stampede2
    return base(num_nodes=nodes, ppn=ppn)


def bcast_sweep_sizes(scale: str) -> tuple[list[float], list[float]]:
    """(small-message, large-message) size sweeps, as in Figs 10-14.

    The paper splits the IMB range at 128 KB: "small messages up to 128K
    ... and large messages up to 128MB".
    """
    small = [2.0 ** k for k in range(6, 18)]  # 64 B .. 128 KB
    hi = 27 if scale == "paper" else 25  # 128 MB or 32 MB
    large = [2.0 ** k for k in range(18, hi + 1)]
    return small, large


def tuned_decision(
    machine: MachineSpec,
    colls: Sequence[str] = ("bcast", "allreduce"),
    cache_key: Optional[str] = None,
    space: Optional[SearchSpace] = None,
    workers: int = 0,
    decision_store=None,
):
    """Autotune HAN (task method) for this machine, with result caching.

    Returns a decision function for :class:`HanModule` /
    :class:`OpenMPIHan`.  The lookup table is cached under ``results/``
    so repeated experiment runs skip the tuning step.

    ``decision_store`` (a directory or
    :class:`~repro.serve.store.DecisionStore`) switches the experiment
    onto the serving layer: decisions come from the store's shard for
    this machine's hardware band, which is warmed first if this job
    geometry has no decisions yet.  Unlike the per-geometry JSON tables,
    one warmed store answers every machine shape of the same band.
    """
    if decision_store is not None and decision_store != "none":
        from repro.serve.service import DecisionService
        from repro.serve.store import DecisionStore, band_digest
        from repro.serve.warm import warm_machine

        store = (decision_store if isinstance(decision_store, DecisionStore)
                 else DecisionStore(decision_store))
        band = band_digest(machine)
        missing = [
            coll for coll in colls
            if not any(r["n"] == machine.num_nodes and r["p"] == machine.ppn
                       for r in store.records(band, coll))
        ]
        if missing:
            warm_machine(machine, store, colls=missing, method="task+h",
                         space=space, workers=workers)
        return DecisionService(store).as_decision_fn(machine)

    RESULTS_DIR.mkdir(exist_ok=True)
    key = cache_key or (
        f"tuning_{machine.name}_{machine.num_nodes}x{machine.ppn}_"
        + "_".join(sorted(colls))
    )
    path = RESULTS_DIR / f"{key}.json"
    if path.exists():
        return LookupTable.load(path).as_decision_fn()
    if space is None:
        space = SearchSpace(
            seg_sizes=(128 * KiB, 512 * KiB, 1 * MiB, 2 * MiB),
            messages=[2.0 ** k for k in range(10, 26, 2)],
            adapt_algorithms=("chain", "binary", "binomial"),
            inner_segs=(None, 512 * KiB),
        )
    tuner = Autotuner(machine, space=space, warm_iters=6, workers=workers)
    report = tuner.tune(colls=colls, method="task+h")
    report.table.save(path)
    return report.table.as_decision_fn()


def fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:g}{unit}"
        n /= 1024
    return f"{n:g}TB"


def fmt_time(t: float) -> str:
    if t < 1e-3:
        return f"{t * 1e6:8.2f}us"
    if t < 1:
        return f"{t * 1e3:8.3f}ms"
    return f"{t:8.3f}s "


def print_table(title: str, headers: Sequence[str], rows) -> None:
    print(f"\n== {title} ==")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def save_result(name: str, payload: dict, config=None) -> Path:
    """Write one ``results/<name>.json`` with the provenance header.

    Every result document is stamped with ``schema_version`` and a
    ``config_digest`` (of the :class:`HanConfig` the experiment ran
    under; the null-config digest when the experiment sweeps configs) —
    see :data:`RESULT_HEADER_KEYS` for what readers must ignore.
    """
    from repro.obs.store import config_digest

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload["schema_version"] = RESULT_SCHEMA_VERSION
    payload["config_digest"] = config_digest(config)
    payload["_generated"] = time.strftime("%Y-%m-%d %H:%M:%S")
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=1, default=str))
    return path


def main_wrapper(run_fn, default_scale: str = "small"):
    """Standard CLI for an experiment module."""
    parser = argparse.ArgumentParser(description=run_fn.__doc__)
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "paper"),
        default=default_scale,
        help="experiment geometry (see DESIGN.md on scale substitution)",
    )
    parser.add_argument("--no-save", action="store_true")
    accepted = inspect.signature(run_fn).parameters
    if "workers" in accepted:
        parser.add_argument(
            "--workers", type=int, default=0,
            help="measurement worker processes (0 = serial)",
        )
    if "cache_dir" in accepted:
        parser.add_argument(
            "--cache-dir", default=None,
            help="persistent measurement-cache directory",
        )
    if "trace_out" in accepted:
        parser.add_argument(
            "--trace-out", default="",
            help="write a Perfetto-loadable Chrome trace here "
                 "(see repro.obs)",
        )
    if "store_dir" in accepted:
        parser.add_argument(
            "--store-dir", default=None,
            help="run-store directory (default results/store; "
                 "'none' disables)",
        )
    if "decision_store" in accepted:
        parser.add_argument(
            "--decision-store", default=None,
            help="serve tuned decisions from this sharded decision-store "
                 "directory (see repro.serve; warmed on first use)",
        )
    if "traffic_plan" in accepted:
        parser.add_argument(
            "--traffic-plan", default=None,
            help="background tenant traffic while measuring: a preset "
                 "name or a TrafficPlan JSON file (see repro.tenancy)",
        )
        parser.add_argument(
            "--traffic-seed", type=int, default=None,
            help="override the traffic plan's seed",
        )
    if "allocation" in accepted:
        parser.add_argument(
            "--allocation", choices=("fixed", "bandit"), default="fixed",
            help="trial-budget strategy for tuning measurements "
                 "(bandit = successive halving; see repro.tuning)",
        )
    args = parser.parse_args()
    kwargs = {}
    if "workers" in accepted:
        kwargs["workers"] = args.workers
    if "cache_dir" in accepted:
        kwargs["cache_dir"] = args.cache_dir
    if "trace_out" in accepted:
        kwargs["trace_out"] = args.trace_out
    if "store_dir" in accepted:
        kwargs["store_dir"] = args.store_dir
    if "decision_store" in accepted:
        kwargs["decision_store"] = args.decision_store
    if "traffic_plan" in accepted:
        from repro.tenancy import load_traffic

        kwargs["traffic_plan"] = (
            load_traffic(args.traffic_plan, args.traffic_seed)
            if args.traffic_plan else None
        )
    if "allocation" in accepted:
        kwargs["allocation"] = args.allocation
    t0 = time.time()
    run_fn(scale=args.scale, save=not args.no_save, **kwargs)
    print(f"\n[done in {time.time() - t0:.1f}s wall]")
