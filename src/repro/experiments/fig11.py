"""Fig 11: Netpipe point-to-point comparison, Open MPI vs Cray MPI.

On the same Shaheen II hardware, "when the message size is between 512B
and 2MB, Open MPI achieves less bandwidth comparing to Cray MPI
especially ... 16KB to 512KB.  As message sizes increase, both ... reach
the same peak P2P performance."
"""

from __future__ import annotations

from repro.bench import netpipe_run
from repro.experiments.common import (
    fmt_bytes,
    geometry,
    main_wrapper,
    print_table,
    save_result,
)
from repro.netsim.profiles import craympi_profile, openmpi_profile

KiB, MiB = 1024, 1024 * 1024


def run(scale: str = "small", save: bool = True, trace_out: str = "") -> dict:
    """Regenerate Fig 11 (P2P bandwidth curves)."""
    machine = geometry("shaheen2", "small").scaled(num_nodes=2)
    sizes = [2.0 ** k for k in range(6, 25)]  # 64B .. 16MB
    omp = netpipe_run(machine, openmpi_profile(), sizes, trace_out=trace_out)
    cray = netpipe_run(machine, craympi_profile(), sizes)
    rows = []
    out = {"machine": machine.name, "rows": []}
    for i, s in enumerate(sizes):
        ratio = cray.bandwidth[i] / omp.bandwidth[i]
        rows.append(
            (
                fmt_bytes(s),
                f"{omp.bandwidth[i] / 1e9:.3f}",
                f"{cray.bandwidth[i] / 1e9:.3f}",
                f"{ratio:.2f}x",
            )
        )
        out["rows"].append(
            {
                "size": s,
                "openmpi_GBps": omp.bandwidth[i] / 1e9,
                "craympi_GBps": cray.bandwidth[i] / 1e9,
                "cray_over_openmpi": ratio,
            }
        )
    print_table(
        "Fig 11: Netpipe P2P bandwidth on Shaheen II (GB/s)",
        ["message", "Open MPI", "Cray MPI", "Cray/OMPI"],
        rows,
    )
    mid = [r for r in out["rows"] if 16 * KiB <= r["size"] <= 512 * KiB]
    peak = out["rows"][-1]
    print(
        f"\nmid-range (16KB-512KB) Cray advantage: "
        f"{max(r['cray_over_openmpi'] for r in mid):.2f}x max; "
        f"peak ratio {peak['cray_over_openmpi']:.2f}x (paper: converges to ~1)"
    )
    if save:
        save_result("fig11_netpipe", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
