"""Fig 3: the cost of sbib(i) stabilizes once the pipeline is full.

The paper benchmarks sbib(1)..sbib(8) per algorithm on one node leader
and observes that "after the first few tasks, the cost of sbib is
stabilized", justifying the single stabilized value sbib(s) in eq. (3).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import HanConfig
from repro.experiments.common import (
    geometry,
    main_wrapper,
    print_table,
    save_result,
)
from repro.tuning import TaskBench

KiB = 1024

CONFIGS = [
    ("libnbc", HanConfig(fs=64 * KiB, imod="libnbc", smod="sm")),
    ("adapt/chain", HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                              ibalg="chain", iralg="chain")),
    ("adapt/binary", HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                               ibalg="binary", iralg="binary")),
    ("adapt/binomial", HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                                 ibalg="binomial", iralg="binomial")),
]

LEADER = 2  # the paper shows node leader 2


def run(scale: str = "small", save: bool = True) -> dict:
    """Regenerate Fig 3 (sbib(i) series on one node leader)."""
    machine = geometry("shaheen2", "small").scaled(num_nodes=6)
    bench = TaskBench(machine, warm_iters=8)
    out = {"machine": f"{machine.name} 6x{machine.ppn}", "leader": LEADER,
           "series_us": {}, "stabilized_us": {}}
    rows = []
    for label, cfg in CONFIGS:
        costs = bench.bench_bcast_tasks(cfg, cfg.fs)
        series = costs.sbib_series[LEADER]
        out["series_us"][label] = [t * 1e6 for t in series]
        out["stabilized_us"][label] = float(costs.sbib_stable[LEADER] * 1e6)
        rows.append(
            (label, *(f"{t * 1e6:.2f}" for t in series),
             f"{costs.sbib_stable[LEADER] * 1e6:.2f}")
        )
        # quantify stabilization: tail spread vs head value
        tail = series[-3:]
        out.setdefault("tail_spread_pct", {})[label] = float(
            100 * (tail.max() - tail.min()) / tail.mean()
        )
    print_table(
        f"Fig 3: cost of sbib(i) on node leader {LEADER} (us)",
        ["config"] + [f"sbib({i})" for i in range(1, 9)] + ["stable"],
        rows,
    )
    print("\ntail spread (last 3 iterations):")
    for label, pct in out["tail_spread_pct"].items():
        print(f"  {label:16s} {pct:5.1f}%  (stabilized)")
    if save:
        save_result("fig03_sbib_stabilization", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)


def series_is_stabilized(series: np.ndarray, tol: float = 0.25) -> bool:
    """Helper used by the test-suite: tail variation within tolerance."""
    tail = np.asarray(series[-3:], dtype=float)
    return bool((tail.max() - tail.min()) <= tol * tail.mean() + 1e-12)
