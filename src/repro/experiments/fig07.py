"""Fig 7: MPI_Allreduce cost-model validation (estimated vs measured).

Same methodology as Fig 4 but for the four-stage allreduce pipeline and
equation (4).  The paper's example outcome: "the cost model predicts
that the optimal configuration for an MPI_Allreduce with a 4MB message
is to use a 1MB segment with a binary algorithm from the ADAPT submodule
and the SOLO submodule ... This prediction matches the best measured."
"""

from __future__ import annotations

from repro.experiments import fig04
from repro.experiments.common import main_wrapper

MiB = 1024 * 1024


def run(scale: str = "small", save: bool = True) -> dict:
    """Regenerate Fig 7 (allreduce model validation at 4MB)."""
    out = fig04.run(scale=scale, save=False, coll="allreduce",
                    message=4 * MiB)
    if save:
        from repro.experiments.common import save_result

        save_result("fig07_allreduce_model_validation", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
