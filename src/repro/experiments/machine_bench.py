"""Shared driver for the machine benchmark figures (Figs 10, 12, 13, 14)."""

from __future__ import annotations

from repro.bench import imb_run
from repro.comparators import OpenMPIHan, library_by_name
from repro.experiments.common import (
    bcast_sweep_sizes,
    fmt_bytes,
    geometry,
    print_table,
    run_store,
    save_result,
    tuned_decision,
)

__all__ = ["bench_against_libraries"]


def bench_against_libraries(
    fig: str,
    machine_name: str,
    coll: str,
    rivals: list[str],
    scale: str,
    save: bool,
    paper_note: str,
    trace_out: str = "",
    store_dir=None,
    decision_store=None,
) -> dict:
    """``trace_out`` (a path) records the HAN sweep as a Chrome trace;
    ``store_dir`` points the cross-run observatory every sweep point is
    appended to (default ``results/store``, ``"none"`` disables);
    ``decision_store`` serves HAN's tuned decisions from a sharded
    :mod:`repro.serve` store instead of per-geometry JSON tables."""
    machine = geometry(machine_name, scale)
    small, large = bcast_sweep_sizes(scale)
    sizes = small + large

    decide = tuned_decision(
        machine, colls=(coll,), decision_store=decision_store
    )
    libs = [OpenMPIHan(decision_fn=decide)] + [
        library_by_name(r) for r in rivals
    ]
    results = {
        lib.name: imb_run(
            machine, lib, coll, sizes,
            trace_out=trace_out if lib.name == "han" else "",
        )
        for lib in libs
    }

    # an explicitly requested store dir is honored even under
    # --no-save; only the default results/store is save-gated
    store = run_store(store_dir) if (save or store_dir) else None
    if store is not None:
        from repro.obs.store import summarize_point

        for lib in libs:
            for s, t in zip(sizes, results[lib.name].times):
                store.append(summarize_point(
                    machine, coll, s, t, library=lib.name,
                    source=f"machine_bench.{fig.lower().replace(' ', '')}",
                ))

    han = results["han"]
    rows = []
    out_rows = {}
    for i, s in enumerate(sizes):
        row = [fmt_bytes(s)]
        entry = {}
        for lib in libs:
            t = results[lib.name].times[i]
            row.append(f"{t * 1e6:.1f}")
            entry[lib.name] = t
        for r in rivals:
            row.append(f"{results[r].times[i] / han.times[i]:.2f}x")
        rows.append(tuple(row))
        out_rows[fmt_bytes(s)] = entry
    headers = (
        ["message"]
        + [f"{lib.name}(us)" for lib in libs]
        + [f"HAN vs {r}" for r in rivals]
    )
    title = (
        f"{fig}: {coll} on {machine_name} "
        f"({machine.num_nodes} nodes x {machine.ppn} ppn = "
        f"{machine.num_ranks} ranks)"
    )
    print_table(title, headers, rows)

    # headline speedups over the small/large ranges, as the paper quotes
    summary = {}
    for r in rivals:
        sp = [results[r].times[i] / han.times[i] for i in range(len(sizes))]
        small_best = max(sp[: len(small)])
        large_best = max(sp[len(small):])
        summary[r] = {
            "max_speedup_small": small_best,
            "max_speedup_large": large_best,
        }
        print(
            f"HAN vs {r:10s}: up to {small_best:.2f}x (small msgs), "
            f"up to {large_best:.2f}x (large msgs)"
        )
    print(f"paper reference: {paper_note}")

    out = {
        "figure": fig,
        "machine": f"{machine_name} {machine.num_nodes}x{machine.ppn}",
        "scale": scale,
        "coll": coll,
        "times_s": out_rows,
        "speedups": summary,
        "paper_note": paper_note,
    }
    if save:
        save_result(
            f"{fig.lower().replace(' ', '')}_{coll}_{machine_name}_{scale}", out
        )
    return out
