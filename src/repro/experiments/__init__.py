"""Experiment drivers: one module per table/figure of the paper.

Every module exposes ``run(scale=..., save=...) -> dict`` and a CLI::

    python -m repro.experiments.fig10 --scale small

Scales (see DESIGN.md on scale substitution):

- ``small``  -- minutes on a laptop; default for benches and CI,
- ``medium`` -- a denser geometry, still tractable,
- ``paper``  -- the published process counts (4096 / 1536 ranks); slow.

Results are printed as tables and saved as JSON under ``results/``.
``python -m repro.experiments.run_all`` regenerates everything;
EXPERIMENTS.md records paper-vs-measured for each artifact.
"""

EXPERIMENTS = [
    "fig02",
    "fig03",
    "fig04",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table3",
    "fig15",
    "scaling4096",
]

__all__ = ["EXPERIMENTS"]
