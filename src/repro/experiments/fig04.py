"""Fig 4: MPI_Bcast cost-model validation (estimated vs measured).

Paper setup: a 4MB broadcast on 64 nodes x 12 ppn, across combinations
of submodule, algorithm and segment size.  The success criteria are (a)
estimates track measurements, and (b) the *argmin* of the estimates is
the (or near the) argmin of the measurements -- "the optimal
configurations of either estimated or actual cost are the same".
"""

from __future__ import annotations

from repro.experiments.common import (
    fmt_bytes,
    geometry,
    main_wrapper,
    print_table,
    save_result,
)
from repro.tuning import Autotuner, SearchSpace

KiB, MiB = 1024, 1024 * 1024

GEOM = {"small": (8, 8), "medium": (16, 12), "paper": (64, 12)}


def run(scale: str = "small", save: bool = True, coll: str = "bcast",
        message: float = 4 * MiB) -> dict:
    """Regenerate Fig 4 (bcast model validation at 4MB)."""
    nodes, ppn = GEOM[scale]
    machine = geometry("shaheen2", "small").scaled(num_nodes=nodes, ppn=ppn)
    space = SearchSpace(
        seg_sizes=(128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB),
        messages=(message,),
        adapt_algorithms=("chain", "binary", "binomial"),
        inner_segs=(None,),
    )
    tuner = Autotuner(machine, space=space, warm_iters=6)
    rows_raw = tuner.validate_model(coll, message)

    rows, payload = [], []
    for cfg, est, meas in rows_raw:
        err = 100 * (est - meas) / meas
        rows.append(
            (
                cfg.imod + (f"/{cfg.ibalg}" if cfg.ibalg else ""),
                cfg.smod,
                fmt_bytes(cfg.fs),
                f"{est * 1e3:.3f}",
                f"{meas * 1e3:.3f}",
                f"{err:+.1f}%",
            )
        )
        payload.append(
            {
                "config": cfg.describe(),
                "estimated_ms": est * 1e3,
                "measured_ms": meas * 1e3,
                "error_pct": err,
            }
        )
    print_table(
        f"Fig 4: {coll} model validation, {fmt_bytes(message)} on "
        f"{nodes} nodes x {ppn} ppn",
        ["inter", "intra", "fs", "estimated(ms)", "measured(ms)", "error"],
        rows,
    )

    best_est = min(rows_raw, key=lambda r: r[1])
    best_meas = min(rows_raw, key=lambda r: r[2])
    agree = best_est[0] == best_meas[0]
    # near-agreement: the estimated pick costs within 10% of true best
    picked_time = next(m for c, _e, m in rows_raw if c == best_est[0])
    near = picked_time <= best_meas[2] * 1.10
    print(f"\npredicted optimum: {best_est[0].describe()}")
    print(f"measured  optimum: {best_meas[0].describe()}")
    print(f"argmin agreement: {agree} (within 10% of optimum: {near})")

    out = {
        "machine": f"{machine.name} {nodes}x{ppn}",
        "message": message,
        "rows": payload,
        "predicted_optimum": best_est[0].describe(),
        "measured_optimum": best_meas[0].describe(),
        "argmin_agree": agree,
        "argmin_within_10pct": near,
    }
    if save:
        save_result(f"fig04_{coll}_model_validation", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
