"""Regenerate every table and figure: ``python -m repro.experiments.run_all``."""

from __future__ import annotations

import argparse
import importlib
import inspect
import time
import traceback

from repro.experiments import EXPERIMENTS


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=("small", "medium", "paper"), default="small"
    )
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of experiments, e.g. --only fig10 table3",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="measurement worker processes for tuning-heavy experiments",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent measurement-cache directory shared by experiments",
    )
    parser.add_argument(
        "--trace-out-dir", default="",
        help="directory for per-experiment Chrome traces (repro.obs); "
             "experiments that support tracing write "
             "<trace-out-dir>/<name>.json",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="cross-run observatory directory shared by experiments "
             "(default results/store; 'none' disables)",
    )
    args = parser.parse_args()
    if args.trace_out_dir:
        import os

        os.makedirs(args.trace_out_dir, exist_ok=True)
    todo = args.only or EXPERIMENTS
    failures = []
    for name in todo:
        mod = importlib.import_module(f"repro.experiments.{name}")
        print(f"\n{'=' * 70}\nRunning {name} (scale={args.scale})\n{'=' * 70}")
        t0 = time.time()
        # tuning-heavy experiments accept the engine knobs; the rest
        # keep their minimal (scale, save) signature
        accepted = inspect.signature(mod.run).parameters
        kwargs = {}
        if "workers" in accepted:
            kwargs["workers"] = args.workers
        if "cache_dir" in accepted:
            kwargs["cache_dir"] = args.cache_dir
        if "trace_out" in accepted and args.trace_out_dir:
            import os

            kwargs["trace_out"] = os.path.join(
                args.trace_out_dir, f"{name}.json"
            )
        if "store_dir" in accepted:
            kwargs["store_dir"] = args.store_dir
        try:
            mod.run(scale=args.scale, save=True, **kwargs)
        except Exception:
            traceback.print_exc()
            failures.append(name)
        print(f"[{name}: {time.time() - t0:.1f}s wall]")
    if failures:
        print(f"\nFAILED: {failures}")
        return 1
    print(f"\nAll {len(todo)} experiments regenerated under results/.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
