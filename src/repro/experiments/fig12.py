"""Fig 12: MPI_Bcast on Stampede2 (paper: 1536 processes).

Paper: "HAN outperforms every other tested MPI on both small and large
messages.  It achieves up to 1.15X, 2.28X, 5.35X speedup on small
messages, and up to 1.39X, 3.83X, 1.73X speedup on large messages
against Intel MPI, MVAPICH2 and default Open MPI, respectively."
"""

from __future__ import annotations

from repro.experiments.common import main_wrapper
from repro.experiments.machine_bench import bench_against_libraries


def run(scale: str = "small", save: bool = True, store_dir=None) -> dict:
    """Regenerate Fig 12."""
    return bench_against_libraries(
        fig="Fig 12",
        machine_name="stampede2",
        coll="bcast",
        rivals=["intelmpi", "mvapich2", "openmpi"],
        scale=scale,
        save=save,
        paper_note=(
            "HAN up to 1.15x/2.28x/5.35x (small) and 1.39x/3.83x/1.73x "
            "(large) vs Intel MPI / MVAPICH2 / default Open MPI"
        ),
        store_dir=store_dir,
    )


if __name__ == "__main__":
    main_wrapper(run)
