"""Fig 9: quality of the tuned configurations per search method.

For each message size the paper shows the exhaustive search's best /
median / average time-to-completion next to what each autotuning method
actually picked.  Expected shape: median and average are far above the
best (tuning matters); the task-based pick matches the best "in most
cases"; heuristics trade a little accuracy for speed.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    fmt_bytes,
    geometry,
    main_wrapper,
    print_table,
    save_result,
)
from repro.tuning import Autotuner, MeasurementCache, SearchSpace, measure_collective

KiB, MiB = 1024, 1024 * 1024

GEOM = {"small": (8, 8), "medium": (16, 12), "paper": (64, 12)}


def run(
    scale: str = "small",
    save: bool = True,
    workers: int = 0,
    cache_dir=None,
) -> dict:
    """Regenerate Fig 9 (tuning quality per method).

    ``workers``/``cache_dir`` accelerate the four tuning sweeps (see
    fig08); picked-configuration re-measurements go through the same
    cache, so they are free whenever the exhaustive sweep already timed
    that configuration.
    """
    nodes, ppn = GEOM[scale]
    machine = geometry("shaheen2", "small").scaled(num_nodes=nodes, ppn=ppn)
    space = SearchSpace(
        seg_sizes=(128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB),
        messages=(256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB),
        adapt_algorithms=("chain", "binary", "binomial"),
        inner_segs=(None,),
    )
    cache = MeasurementCache(cache_dir)
    tuner = Autotuner(
        machine, space=space, warm_iters=6, workers=workers, cache=cache
    )
    out = {"machine": f"{machine.name} {nodes}x{ppn}", "colls": {}}
    for coll in ("bcast", "allreduce"):
        exh = tuner.tune(colls=(coll,), method="exhaustive")
        exh_h = tuner.tune(colls=(coll,), method="exhaustive+h")
        task = tuner.tune(colls=(coll,), method="task")
        task_h = tuner.tune(colls=(coll,), method="task+h")
        rows = []
        coll_out = {}
        for m in space.messages:
            times = np.array([t for _c, t in exh.candidates[(coll, m)]])
            best = times.min()

            def picked_time(report):
                cfg = report.table.get(coll, nodes, ppn, m)
                # exhaustive candidates already contain the measurement
                for c, t in exh.candidates[(coll, m)]:
                    if c == cfg:
                        return t
                return measure_collective(machine, coll, m, cfg, cache=cache).time

            vals = {
                "best": best,
                "median": float(np.median(times)),
                "average": float(times.mean()),
                "exhaustive+h": picked_time(exh_h),
                "task": picked_time(task),
                "task+h": picked_time(task_h),
            }
            coll_out[fmt_bytes(m)] = {k: v * 1e3 for k, v in vals.items()}
            rows.append(
                (
                    fmt_bytes(m),
                    f"{vals['best'] * 1e3:.3f}",
                    f"{vals['median'] * 1e3:.3f}",
                    f"{vals['average'] * 1e3:.3f}",
                    f"{vals['exhaustive+h'] * 1e3:.3f}",
                    f"{vals['task'] * 1e3:.3f}",
                    f"{vals['task+h'] * 1e3:.3f}",
                )
            )
        print_table(
            f"Fig 9: {coll} time-to-completion by tuning method (ms)",
            ["message", "best", "median", "average", "exh+h", "task",
             "task+h"],
            rows,
        )
        out["colls"][coll] = coll_out
    if save:
        save_result("fig09_tuning_quality", out)
    return out


if __name__ == "__main__":
    main_wrapper(run)
