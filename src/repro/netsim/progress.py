"""Per-rank serial progress server.

Open MPI (as benchmarked in the paper) runs single-threaded: one CPU
drives the MPI progress engine, so the software costs of concurrent
operations *serialize* even when their data transfers overlap perfectly
in hardware.  The paper calls this out explicitly (III-A2): "in
single-threaded MPI, `ib` and `sb` share the same CPU resource to
progress, which affects the performance of both when they are running
simultaneously".

:class:`ProgressServer` is a non-preemptive FIFO server: ``request(d)``
returns a :class:`SimEvent` that fires once ``d`` seconds of exclusive
CPU have been granted after all previously queued work.  Message
overheads, eager copies and reduction kernels all go through it, which is
what makes HAN's measured `sbib` cost exceed ``max(ib, sb)``.
"""

from __future__ import annotations

from repro.sim.engine import Engine, SimEvent

__all__ = ["ProgressServer"]


class ProgressServer:
    """Serial FIFO work queue attached to one simulated rank."""

    __slots__ = (
        "engine", "name", "rank", "_busy_until", "busy_time", "jobs", "_ev_name"
    )

    def __init__(self, engine: Engine, name: str = "", rank: int = -1):
        self.engine = engine
        self.name = name
        # one request() per simulated message makes this a hot path at
        # paper scale; build the event name once instead of per call
        self._ev_name = f"progress:{name}"
        #: world rank this server belongs to (-1 when free-standing);
        #: passed to the engine's overhead hook so per-rank fault
        #: injectors (OS noise, stragglers) can target it
        self.rank = rank
        self._busy_until = 0.0
        # accounting (useful for utilization reports / debugging)
        self.busy_time = 0.0
        self.jobs = 0

    def request(self, duration: float, label: str = "cpu", **span_args) -> SimEvent:
        """Queue ``duration`` seconds of CPU; the event fires when done.

        ``label`` and ``span_args`` only feed the observability layer
        (span name / extra attributes); they never affect timing.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        if self.engine.overhead_hook is not None:
            duration = max(
                0.0, self.engine.overhead_hook("cpu", self.rank, duration)
            )
        ev = SimEvent(self.engine, self._ev_name)
        start = max(self.engine.now, self._busy_until)
        end = start + duration
        self._busy_until = end
        self.busy_time += duration
        self.jobs += 1
        obs = self.engine.obs
        if obs is not None and duration > 0:
            # Both endpoints are known at request time (FIFO, non-
            # preemptive), so the spans are emitted complete up front.
            track = f"cpu:{self.name or self.rank}"
            sid = -1
            if start > self.engine.now:
                # queued time is waiting, not work: separate category so
                # the exporter and the critical-path walk never mistake
                # it for busy CPU (it overlaps the prior job's busy span)
                sid = obs.complete(track, "queued", self.engine.now, start,
                                   "wait", rank=self.rank)
            obs.complete(track, label, start, end, "cpu",
                         rank=self.rank, **span_args)
            # metrics plane: zero-wait jobs count too — the queue-wait
            # distribution is meaningless without its uncontended mass
            obs.cpu_job(self.rank, duration, start - self.engine.now,
                        sid=sid)
        # succeed() with no argument delivers None to every waiter;
        # scheduling the bound method skips a per-request lambda
        self.engine.schedule_at(end, ev.succeed)
        return ev

    @property
    def backlog(self) -> float:
        """Seconds of queued work not yet finished."""
        return max(0.0, self._busy_until - self.engine.now)
