"""Per-rank serial progress server.

Open MPI (as benchmarked in the paper) runs single-threaded: one CPU
drives the MPI progress engine, so the software costs of concurrent
operations *serialize* even when their data transfers overlap perfectly
in hardware.  The paper calls this out explicitly (III-A2): "in
single-threaded MPI, `ib` and `sb` share the same CPU resource to
progress, which affects the performance of both when they are running
simultaneously".

:class:`ProgressServer` is a non-preemptive FIFO server: ``request(d)``
returns a :class:`SimEvent` that fires once ``d`` seconds of exclusive
CPU have been granted after all previously queued work.  Message
overheads, eager copies and reduction kernels all go through it, which is
what makes HAN's measured `sbib` cost exceed ``max(ib, sb)``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.sim.engine import Engine, SimEvent

__all__ = ["ProgressServer"]


class ProgressServer:
    """Serial FIFO work queue attached to one simulated rank."""

    __slots__ = (
        "engine", "name", "rank", "_busy_until", "busy_time", "jobs", "_ev_name"
    )

    def __init__(self, engine: Engine, name: str = "", rank: int = -1):
        self.engine = engine
        self.name = name
        # one request() per simulated message makes this a hot path at
        # paper scale; build the event name once instead of per call
        self._ev_name = f"progress:{name}"
        #: world rank this server belongs to (-1 when free-standing);
        #: passed to the engine's overhead hook so per-rank fault
        #: injectors (OS noise, stragglers) can target it
        self.rank = rank
        self._busy_until = 0.0
        # accounting (useful for utilization reports / debugging)
        self.busy_time = 0.0
        self.jobs = 0

    def _grant(self, duration: float, label: str, span_args) -> float:
        """FIFO-grant ``duration`` seconds of CPU; returns the end instant.

        The scheduling decision shared by every request flavor: the job
        starts when the server drains (or now, if idle) and holds the
        CPU exclusively until ``start + duration``.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        engine = self.engine
        if engine.overhead_hook is not None:
            duration = max(0.0, engine.overhead_hook("cpu", self.rank, duration))
        now = engine.now
        start = self._busy_until
        if start < now:
            start = now
        end = start + duration
        self._busy_until = end
        self.busy_time += duration
        self.jobs += 1
        obs = engine.obs
        if obs is not None and duration > 0:
            # Both endpoints are known at request time (FIFO, non-
            # preemptive), so the spans are emitted complete up front.
            track = f"cpu:{self.name or self.rank}"
            sid = -1
            if start > now:
                # queued time is waiting, not work: separate category so
                # the exporter and the critical-path walk never mistake
                # it for busy CPU (it overlaps the prior job's busy span)
                sid = obs.complete(track, "queued", now, start,
                                   "wait", rank=self.rank)
            obs.complete(track, label, start, end, "cpu",
                         rank=self.rank, **span_args)
            # metrics plane: zero-wait jobs count too — the queue-wait
            # distribution is meaningless without its uncontended mass
            obs.cpu_job(self.rank, duration, start - now, sid=sid)
        return end

    def request(self, duration: float, label: str = "cpu", **span_args) -> SimEvent:
        """Queue ``duration`` seconds of CPU; the event fires when done.

        ``label`` and ``span_args`` only feed the observability layer
        (span name / extra attributes); they never affect timing.
        """
        ev = SimEvent(self.engine, self._ev_name)
        end = self._grant(duration, label, span_args)
        # succeed() with no argument delivers None to every waiter;
        # scheduling the bound method skips a per-request lambda
        self.engine.schedule_at(end, ev.succeed)
        return ev

    def request_call(
        self, duration: float, fn: Callable[[], None],
        label: str = "cpu", **span_args,
    ) -> None:
        """Like :meth:`request`, but fire ``fn()`` directly when done.

        The grant math, heap placement and sequence allocation are
        identical to ``request()`` — a caller switching from
        ``request(d).callbacks.append(f)`` to ``request_call(d, f)``
        gets a bit-identical schedule — it just skips the
        SimEvent/succeed machinery, which is pure overhead for the
        fire-and-forget continuations the message pipeline queues per
        send/recv (two per message at paper scale).
        """
        end = self._grant(duration, label, span_args)
        self.engine.schedule_at(end, fn)

    def request_burst(
        self, durations: Sequence[float], label: str = "cpu",
    ) -> list[SimEvent]:
        """Queue a back-to-back burst of jobs; one event per job.

        The FIFO grant math for the whole burst resolves in one
        vectorized pass — a running ``add.accumulate`` *seeded with the
        start instant* — instead of N separate ``request()`` bookkeeping
        rounds.  Seeding matters for bit-identity: sequential calls
        compute ``((start+d0)+d1)+...`` with a rounding step per job,
        and only an accumulate over ``[start, d0, d1, ...]`` reproduces
        those exact doubles (``start + cumsum(d)`` rounds the partial
        sums *before* adding the start and drifts by an ulp almost
        immediately).  Per-job accounting (``busy_time``, obs spans) is
        likewise replayed job by job.
        """
        engine = self.engine
        n = len(durations)
        if n == 0:
            return []
        d = np.asarray(durations, dtype=np.float64)
        if d.min() < 0:
            raise ValueError("negative duration in burst")
        hook = engine.overhead_hook
        if hook is not None:
            # per-job hook consultation, exactly as N request() calls
            rank = self.rank
            d = np.fromiter(
                (max(0.0, hook("cpu", rank, x)) for x in d.tolist()),
                dtype=np.float64, count=n,
            )
        now = engine.now
        start0 = self._busy_until
        if start0 < now:
            start0 = now
        ends = np.add.accumulate(np.concatenate(((start0,), d)))[1:]
        self._busy_until = float(ends[-1])
        self.jobs += n
        obs = engine.obs
        end_list = ends.tolist()
        dur_list = d.tolist()
        # sequential float adds, matching N scalar request() calls bit
        # for bit (np.sum's pairwise reduction would not)
        busy = self.busy_time
        for x in dur_list:
            busy += x
        self.busy_time = busy
        if obs is not None:
            track = f"cpu:{self.name or self.rank}"
            prev_end = start0
            for i, end in enumerate(end_list):
                dur = dur_list[i]
                if dur <= 0:
                    prev_end = end
                    continue
                s = prev_end
                sid = -1
                if s > now:
                    sid = obs.complete(track, "queued", now, s,
                                       "wait", rank=self.rank)
                obs.complete(track, label, s, end, "cpu", rank=self.rank)
                obs.cpu_job(self.rank, dur, s - now, sid=sid)
                prev_end = end
        events = []
        schedule_at = engine.schedule_at
        ev_name = self._ev_name
        for end in end_list:
            ev = SimEvent(engine, ev_name)
            schedule_at(end, ev.succeed)
            events.append(ev)
        return events

    @property
    def backlog(self) -> float:
        """Seconds of queued work not yet finished."""
        return max(0.0, self._busy_until - self.engine.now)
