"""Point-to-point performance profiles of MPI libraries.

The paper explains the Bcast gap between HAN and Cray MPI on small
messages entirely through point-to-point differences measured with
Netpipe (Fig 11): "when the message size is between 512B and 2MB, Open
MPI achieves less bandwidth comparing to Cray MPI especially for messages
in the range from 16KB to 512KB.  As message sizes increase, both Open MPI
and Cray MPI reach the same peak P2P performance."

A :class:`P2PProfile` models exactly that: software overheads, the
eager/rendezvous protocol switch, and an *achievable bandwidth fraction*
curve (piecewise log-linear in message size) that caps the rate of a
single message flow.  The underlying hardware (NIC, links, memory bus)
stays identical across libraries; only the profile changes -- mirroring
how different MPI libraries share one machine.

The changing per-byte gap that fixed-G models (LogGP, SALaR) cannot
capture (paper section I-B) emerges from the curve + protocol switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "P2PProfile",
    "openmpi_profile",
    "craympi_profile",
    "intelmpi_profile",
    "mvapich2_profile",
]


@dataclass(frozen=True)
class P2PProfile:
    """How one MPI library drives the wire.

    Attributes
    ----------
    name:
        Library name (shows up in benchmark output).
    eager_threshold:
        Messages up to this size are sent eagerly (copied through internal
        buffers, sender completes locally); larger messages use the
        rendezvous protocol (RTS/CTS handshake, zero-copy).
    o_send / o_recv:
        Per-message software overhead (seconds) charged on the rank's
        serial progress server.
    sw_latency:
        Software component added to the NIC wire latency.
    eager_copy_bw:
        Bandwidth of the extra cache-resident copy eager messages pay on
        each side.
    bw_curve:
        ``((size_bytes, fraction), ...)`` -- fraction of the NIC bandwidth
        a single message of that size can achieve; log-linear interpolation
        between points, clamped at the ends.
    """

    name: str
    eager_threshold: int
    o_send: float
    o_recv: float
    sw_latency: float
    eager_copy_bw: float
    bw_curve: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")
        sizes = [s for s, _ in self.bw_curve]
        if len(sizes) < 1 or sizes != sorted(sizes):
            raise ValueError("bw_curve must be non-empty and sorted by size")
        if any(not (0 < f <= 1.0) for _, f in self.bw_curve):
            raise ValueError("bw_curve fractions must be in (0, 1]")

    # -- queries ---------------------------------------------------------------

    def bw_fraction(self, nbytes: float) -> float:
        """Achievable fraction of NIC bandwidth for one ``nbytes`` message."""
        curve = self.bw_curve
        if nbytes <= curve[0][0]:
            return curve[0][1]
        if nbytes >= curve[-1][0]:
            return curve[-1][1]
        x = math.log2(max(nbytes, 1.0))
        for (s0, f0), (s1, f1) in zip(curve, curve[1:]):
            if nbytes <= s1:
                x0, x1 = math.log2(s0), math.log2(s1)
                t = (x - x0) / (x1 - x0)
                return f0 + t * (f1 - f0)
        return curve[-1][1]  # pragma: no cover - unreachable

    def rate_cap(self, nbytes: float, nic_bw: float) -> float:
        """Peak single-message rate (bytes/s) on a NIC of ``nic_bw``."""
        return self.bw_fraction(nbytes) * nic_bw

    def is_eager(self, nbytes: float) -> bool:
        return nbytes <= self.eager_threshold

    def send_overhead(self, nbytes: float) -> float:
        """CPU time the sender burns per message."""
        o = self.o_send
        if self.is_eager(nbytes):
            o += nbytes / self.eager_copy_bw
        return o

    def recv_overhead(self, nbytes: float) -> float:
        """CPU time the receiver burns per message."""
        o = self.o_recv
        if self.is_eager(nbytes):
            o += nbytes / self.eager_copy_bw
        return o


def _curve(points: Sequence[Tuple[float, float]]) -> Tuple[Tuple[float, float], ...]:
    return tuple((float(s), float(f)) for s, f in points)


KiB = 1024.0
MiB = 1024.0 * 1024.0


def openmpi_profile() -> P2PProfile:
    """Open MPI 4.0.0 over the native fabric BTL/MTL.

    The mid-size dip (16KB..512KB, Fig 11) comes from the BTL pipeline
    protocol; the curve recovers to near peak for multi-MB messages.
    """
    return P2PProfile(
        name="openmpi",
        eager_threshold=8 * 1024,
        o_send=0.55e-6,
        o_recv=0.55e-6,
        sw_latency=0.35e-6,
        eager_copy_bw=30e9,
        bw_curve=_curve(
            [
                (512, 0.85),
                (4 * KiB, 0.72),
                (16 * KiB, 0.48),
                (64 * KiB, 0.42),
                (256 * KiB, 0.50),
                (1 * MiB, 0.72),
                (4 * MiB, 0.92),
                (16 * MiB, 0.96),
            ]
        ),
    )


def craympi_profile() -> P2PProfile:
    """Cray MPI 7.7.0: tightly integrated with Aries, near-peak curve."""
    return P2PProfile(
        name="craympi",
        eager_threshold=8 * 1024,
        o_send=0.35e-6,
        o_recv=0.35e-6,
        sw_latency=0.15e-6,
        eager_copy_bw=35e9,
        bw_curve=_curve(
            [
                (512, 0.90),
                (4 * KiB, 0.88),
                (16 * KiB, 0.85),
                (64 * KiB, 0.86),
                (256 * KiB, 0.90),
                (1 * MiB, 0.94),
                (4 * MiB, 0.96),
                (16 * MiB, 0.96),
            ]
        ),
    )


def intelmpi_profile() -> P2PProfile:
    """Intel MPI 18.0.2 over Omni-Path PSM2: strong small/mid messages."""
    return P2PProfile(
        name="intelmpi",
        eager_threshold=16 * 1024,
        o_send=0.40e-6,
        o_recv=0.40e-6,
        sw_latency=0.20e-6,
        eager_copy_bw=32e9,
        bw_curve=_curve(
            [
                (512, 0.88),
                (4 * KiB, 0.84),
                (16 * KiB, 0.78),
                (64 * KiB, 0.74),
                (256 * KiB, 0.80),
                (1 * MiB, 0.90),
                (4 * MiB, 0.95),
                (16 * MiB, 0.95),
            ]
        ),
    )


def mvapich2_profile() -> P2PProfile:
    """MVAPICH2 2.3.1 over Omni-Path: good peak, weaker mid-range."""
    return P2PProfile(
        name="mvapich2",
        eager_threshold=16 * 1024,
        o_send=0.45e-6,
        o_recv=0.45e-6,
        sw_latency=0.25e-6,
        eager_copy_bw=30e9,
        bw_curve=_curve(
            [
                (512, 0.86),
                (4 * KiB, 0.78),
                (16 * KiB, 0.62),
                (64 * KiB, 0.58),
                (256 * KiB, 0.66),
                (1 * MiB, 0.82),
                (4 * MiB, 0.93),
                (16 * MiB, 0.95),
            ]
        ),
    )
