"""The fabric: every shared hardware resource of one simulated machine.

Built once per simulation from a :class:`~repro.hardware.MachineSpec` and
a :class:`~repro.netsim.profiles.P2PProfile`:

- one *memory-bus* fluid resource per node (shared by intra-node copies
  and NIC DMA -- the `ib`-vs-`sb` contention of paper III-A2),
- one *NIC tx* and one *NIC rx* fluid resource per node (full-duplex, so
  `ir` and `ib` can overlap on opposite directions, paper III-B1),
- one fluid resource per interconnect link (from the topology),
- one serial :class:`ProgressServer` per rank (single-threaded MPI).

It exposes transfer *plans* (latency + resource route + rate cap) and a
``start_transfer`` helper that runs the latency->flow pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Tuple

import numpy as np

from repro.hardware.spec import MachineSpec
from repro.netsim.profiles import P2PProfile
from repro.netsim.progress import ProgressServer
from repro.sim.engine import Engine
from repro.sim.fluid import FluidSolver

__all__ = ["Fabric", "TransferPlan"]


@dataclass(frozen=True)
class TransferPlan:
    """Everything needed to time one message's data movement.

    ``resources`` is a pre-validated ``np.intp`` array so the fluid
    solver's trusted fast path can start the flow without converting or
    re-checking the route (plans are cached and reused per message).
    """

    latency: float
    resources: np.ndarray
    rate_cap: float
    intra_node: bool


class Fabric:
    def __init__(self, engine: Engine, machine: MachineSpec, profile: P2PProfile):
        self.engine = engine
        self.machine = machine
        self.profile = profile
        self.solver = FluidSolver(engine)
        self.topo = machine.build_topology()

        n = machine.num_nodes
        node = machine.node
        self._membus = [
            self.solver.add_resource(node.mem_bw, name=f"membus:n{i}")
            for i in range(n)
        ]
        self._nic_tx = [
            self.solver.add_resource(machine.nic.bw, name=f"nic_tx:n{i}")
            for i in range(n)
        ]
        self._nic_rx = [
            self.solver.add_resource(machine.nic.bw, name=f"nic_rx:n{i}")
            for i in range(n)
        ]
        self._links = [
            self.solver.add_resource(link.capacity, name=f"link:{i}")
            for i, link in enumerate(self.topo.links)
        ]
        # GPU nodes get NVLink-fabric resources and a per-direction PCIe
        # staging resource.  With NodeSpec.fabric_domains > 1 the node's
        # fabric splits into that many independent islands, each its own
        # fluid resource — the accelerator tier of HAN's
        # fabric/node/network hierarchy.  _nvlink is indexed
        # [node][domain]; single-fabric nodes keep the legacy resource
        # name so existing traces stay identical.
        self._fabric_domains = max(1, node.fabric_domains) if node.gpus > 0 else 0
        if node.gpus > 0:
            d = self._fabric_domains
            self._nvlink = [
                [
                    self.solver.add_resource(
                        node.nvlink_bw,
                        name=f"nvlink:n{i}" if d == 1 else f"nvlink:n{i}d{k}",
                    )
                    for k in range(d)
                ]
                for i in range(n)
            ]
            self._pcie_h2d = [
                self.solver.add_resource(node.pcie_bw, name=f"pcie_h2d:n{i}")
                for i in range(n)
            ]
            self._pcie_d2h = [
                self.solver.add_resource(node.pcie_bw, name=f"pcie_d2h:n{i}")
                for i in range(n)
            ]
        else:
            self._nvlink = self._pcie_h2d = self._pcie_d2h = None
        self.progress = [
            ProgressServer(engine, name=f"rank{r}", rank=r)
            for r in range(machine.num_ranks)
        ]
        # (src_node, dst_node) -> (latency, resources); the rate cap is
        # message-size dependent, so full plans are cached separately
        # under (src_node, dst_node, nbytes) — collectives reuse a
        # handful of segment sizes, so both caches stay small.
        self._path_cache: dict[tuple[int, int], tuple[float, np.ndarray]] = {}
        self._plan_cache: dict[tuple[int, int, float], TransferPlan] = {}
        # (src_rank, dst_rank) -> control latency; two lookups per
        # message (envelope + CTS) make even the plan-cache hit path hot
        self._ctrl_cache: dict[tuple[int, int], float] = {}
        # (node, copies) -> pre-validated membus route for membus_flow()
        self._membus_routes: dict[tuple[int, int], np.ndarray] = {}
        # node_of() is the hottest call in a paper-scale run (millions of
        # lookups); a precomputed table beats the div + property chain.
        ppn = machine.ppn
        self._node_of = [r // ppn for r in range(machine.num_ranks)]

    # -- placement ---------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        """Block ("by node") rank placement: ranks 0..ppn-1 on node 0, etc."""
        if rank < 0:
            raise IndexError(f"rank {rank} out of range")
        try:
            return self._node_of[rank]
        except IndexError:
            raise IndexError(f"rank {rank} out of range") from None

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    @property
    def fabric_domains(self) -> int:
        """NVLink islands per node (0 on CPU-only nodes, >= 1 on GPU nodes)."""
        return self._fabric_domains

    def fabric_domain_of(self, rank: int) -> int:
        """Which NVLink island hosts this rank (block placement within
        the node, mirroring :meth:`node_of`'s block placement across
        nodes).  Always 0 on single-fabric GPU nodes."""
        if self._fabric_domains <= 1:
            return 0
        ppn = self.machine.ppn
        return (rank % ppn) // (ppn // self._fabric_domains)

    def membus_rid(self, node: int) -> int:
        return self._membus[node]

    def nic_tx_rid(self, node: int) -> int:
        return self._nic_tx[node]

    def nic_rx_rid(self, node: int) -> int:
        return self._nic_rx[node]

    def fault_resources(self, kind: str, *args: int) -> tuple[int, ...]:
        """Resolve a named hardware element to its fluid resource ids.

        Used by the fault injectors (:mod:`repro.faults`) to target
        capacity changes without reaching into Fabric internals:

        - ``("membus", node)`` — the node's memory bus,
        - ``("nic_tx", node)`` / ``("nic_rx", node)`` — one NIC direction,
        - ``("nic", node)`` — both NIC directions,
        - ``("link", a, b)`` — every interconnect link on the routed path
          from node ``a`` to node ``b`` (for adjacent nodes this is the
          single direct link; topologies without internal links, like the
          crossbar, yield an empty tuple — degrade the NICs instead),
        - ``("nvlink", node)`` — every NVLink island on the node, or
          ``("nvlink", node, domain)`` for one island (GPU nodes only),
        - ``("pcie", node)`` — both host<->device staging directions.
        """
        if kind == "membus":
            (node,) = args
            return (self._membus[node],)
        if kind == "nic_tx":
            (node,) = args
            return (self._nic_tx[node],)
        if kind == "nic_rx":
            (node,) = args
            return (self._nic_rx[node],)
        if kind == "nic":
            (node,) = args
            return (self._nic_tx[node], self._nic_rx[node])
        if kind == "link":
            a, b = args
            return tuple(self._links[l] for l in self.topo.route(a, b))
        if kind == "nvlink":
            if self._nvlink is None:
                raise ValueError("machine has no GPUs (NodeSpec.gpus == 0)")
            if len(args) == 2:
                node, domain = args
                return (self._nvlink[node][domain],)
            (node,) = args
            return tuple(self._nvlink[node])
        if kind == "pcie":
            if self._pcie_h2d is None:
                raise ValueError("machine has no GPUs (NodeSpec.gpus == 0)")
            (node,) = args
            return (self._pcie_h2d[node], self._pcie_d2h[node])
        raise ValueError(
            f"unknown fault resource kind {kind!r}; expected membus, "
            f"nic_tx, nic_rx, nic, link, nvlink or pcie"
        )

    # -- transfer planning ----------------------------------------------------------

    def plan(self, src_rank: int, dst_rank: int, nbytes: float) -> TransferPlan:
        """Latency, fluid route and rate cap for one message."""
        nd = self._node_of
        sn, dn = nd[src_rank], nd[dst_rank]
        plan = self._plan_cache.get((sn, dn, nbytes))
        if plan is not None:
            return plan
        prof = self.profile
        intra = sn == dn
        cached = self._path_cache.get((sn, dn))
        if cached is None:
            if intra:
                # Shared-memory path: copy-in + copy-out cross the bus twice.
                bus = self._membus[sn]
                cached = (
                    self.machine.node.shm_latency + prof.sw_latency,
                    np.asarray((bus, bus), dtype=np.intp),
                )
            else:
                route = self.topo.route(sn, dn)
                latency = (
                    self.machine.nic.latency
                    + prof.sw_latency
                    + len(route) * self.machine.hop_latency
                )
                cached = (
                    latency,
                    np.asarray(
                        (
                            self._nic_tx[sn],
                            *(self._links[l] for l in route),
                            self._nic_rx[dn],
                            self._membus[sn],
                            self._membus[dn],
                        ),
                        dtype=np.intp,
                    ),
                )
            self._path_cache[(sn, dn)] = cached
        latency, resources = cached
        cap = (
            self.machine.node.copy_bw
            if intra
            else prof.rate_cap(nbytes, self.machine.nic.bw)
        )
        plan = TransferPlan(
            latency=latency, resources=resources, rate_cap=cap, intra_node=intra
        )
        self._plan_cache[(sn, dn, nbytes)] = plan
        return plan

    def control_latency(self, src_rank: int, dst_rank: int) -> float:
        """One-way latency of a zero-payload control message (RTS/CTS)."""
        key = (src_rank, dst_rank)
        hit = self._ctrl_cache.get(key)
        if hit is None:
            hit = self._ctrl_cache[key] = self.plan(src_rank, dst_rank, 0).latency
        return hit

    # -- transfer execution ----------------------------------------------------------

    def start_transfer(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: float,
        on_done: Callable[[], None],
    ) -> None:
        """Run latency then the fluid flow; ``on_done`` fires at delivery."""
        plan = self.plan(src_rank, dst_rank, nbytes)
        latency = plan.latency
        if self.engine.overhead_hook is not None:
            latency = max(
                0.0, self.engine.overhead_hook("net_latency", src_rank, latency)
            )
        label = (
            f"x:{src_rank}->{dst_rank}" if self.engine.obs is not None else ""
        )
        # positional partial (nbytes, resources, on_complete, rate_cap,
        # weight, label) over a closure: skips one Python frame per flow
        self.engine.schedule(latency, partial(
            self.solver.start_flow,
            nbytes, plan.resources, on_done, plan.rate_cap, 1.0, label,
        ))

    def gpu_flow(
        self,
        node: int,
        nbytes: float,
        on_done: Callable[[], None],
        path: str = "nvlink",
        domain: int = 0,
    ) -> int:
        """GPU-side data movement: 'nvlink', 'h2d' or 'd2h'.

        ``domain`` selects the NVLink island (only meaningful for the
        'nvlink' path on multi-fabric nodes).  Host<->device staging
        (h2d/d2h) also crosses the host memory bus.
        """
        if self._nvlink is None:
            raise RuntimeError("machine has no GPUs (NodeSpec.gpus == 0)")
        if path == "nvlink":
            resources = (self._nvlink[node][domain],)
        elif path == "h2d":
            resources = (self._pcie_h2d[node], self._membus[node])
        elif path == "d2h":
            resources = (self._pcie_d2h[node], self._membus[node])
        else:
            raise ValueError(f"unknown gpu path {path!r}")
        return self.solver.start_flow(
            nbytes, resources, on_done, label=f"gpu:{path}"
        )

    def membus_flow(
        self,
        node: int,
        nbytes: float,
        on_done: Callable[[], None],
        copies: int = 1,
        rate_cap: float | None = None,
    ) -> int:
        """Raw memory-bus flow used by the SM/SOLO intra-node modules.

        ``copies`` is how many times each byte crosses the bus (2 for a
        bounce-buffer pipe, 1 for a one-sided direct copy).
        """
        route = self._membus_routes.get((node, copies))
        if route is None:
            route = np.full(copies, self._membus[node], dtype=np.intp)
            self._membus_routes[(node, copies)] = route
        cap = self.machine.node.copy_bw if rate_cap is None else rate_cap
        return self.solver.start_flow(
            nbytes, route, on_done, rate_cap=cap, label="shm-copy"
        )
