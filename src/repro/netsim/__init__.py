"""Transport layer: turns hardware specs into simulated communication.

- :mod:`repro.netsim.profiles` -- per-MPI-library point-to-point behaviour
  (eager/rendezvous switch, software overheads, achievable-bandwidth
  curve).  This is the mechanism behind the paper's Fig 11, where the
  *same* Shaheen II hardware yields different Netpipe curves for Open MPI
  and Cray MPI.
- :mod:`repro.netsim.progress` -- per-rank serial progress server modelling
  single-threaded MPI progression (paper III-A2 factor (2)).
- :mod:`repro.netsim.fabric` -- builds the fluid resources (NIC channels,
  links, memory buses) for a machine and provides path lookup.
"""

from repro.netsim.fabric import Fabric
from repro.netsim.profiles import (
    P2PProfile,
    craympi_profile,
    intelmpi_profile,
    mvapich2_profile,
    openmpi_profile,
)
from repro.netsim.progress import ProgressServer

__all__ = [
    "Fabric",
    "P2PProfile",
    "ProgressServer",
    "craympi_profile",
    "intelmpi_profile",
    "mvapich2_profile",
    "openmpi_profile",
]
