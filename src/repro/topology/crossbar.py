"""Ideal full-crossbar interconnect (no internal contention points).

With a crossbar the only shared network resources are the per-node NIC
channels that the transport layer always models; this is the right default
for small test clusters and for isolating endpoint effects from fabric
effects in ablation studies.
"""

from __future__ import annotations

from typing import Tuple

from repro.topology.base import Topology

__all__ = ["Crossbar"]


class Crossbar(Topology):
    """Every node pair directly connected; routes have no internal links."""

    def __init__(self, num_nodes: int, link_bw: float = 1.0):
        super().__init__(num_nodes, link_bw)

    def _route(self, src_node: int, dst_node: int) -> Tuple[int, ...]:
        return ()
