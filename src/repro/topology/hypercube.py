"""Binary hypercube with e-cube (dimension-order) routing.

Included for the hypercube networks cited in the paper's introduction
[Agrawal & Bhuyan].  Node count is padded up to the next power of two;
excess vertices simply carry no compute node.
"""

from __future__ import annotations

from typing import Tuple

from repro.topology.base import Topology

__all__ = ["Hypercube"]


class Hypercube(Topology):
    def __init__(self, num_nodes: int, link_bw: float):
        super().__init__(num_nodes, link_bw)
        self.dim = max(1, (num_nodes - 1).bit_length())
        size = 1 << self.dim
        self._link_id: dict[tuple[int, int], int] = {}
        for n in range(size):
            for d in range(self.dim):
                m = n ^ (1 << d)
                self._link_id[(n, m)] = self._add_link(f"h{n}", f"h{m}", link_bw)

    def _route(self, src_node: int, dst_node: int) -> Tuple[int, ...]:
        path: list[int] = []
        cur = src_node
        diff = src_node ^ dst_node
        d = 0
        while diff:
            if diff & 1:
                nxt = cur ^ (1 << d)
                path.append(self._link_id[(cur, nxt)])
                cur = nxt
            diff >>= 1
            d += 1
        return tuple(path)
