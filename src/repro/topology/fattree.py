"""Two-level folded-Clos ("fat-tree") interconnect.

Models the leaf/core structure of Omni-Path and InfiniBand fabrics
(Stampede2 in the paper uses Omni-Path in a fat-tree).  Compute nodes
attach to *edge* switches; each edge switch has ``up`` uplinks, one to each
core switch.  A ``taper`` > 1 means the fabric is oversubscribed (uplink
capacity is ``link_bw / taper``), which is how real systems are deployed
and is the source of inter-node congestion for dense traffic.

Routing is deterministic up/down: the core switch is picked by hashing the
(src, dst) pair, spreading load like static destination-mod routing.
"""

from __future__ import annotations

from typing import Tuple

from repro.topology.base import Topology

__all__ = ["FatTree"]


class FatTree(Topology):
    def __init__(
        self,
        num_nodes: int,
        link_bw: float,
        nodes_per_edge: int = 16,
        num_core: int = 4,
        taper: float = 1.0,
    ):
        super().__init__(num_nodes, link_bw)
        if nodes_per_edge < 1 or num_core < 1:
            raise ValueError("nodes_per_edge and num_core must be >= 1")
        if taper < 1.0:
            raise ValueError("taper must be >= 1.0 (1.0 = full bisection)")
        self.nodes_per_edge = nodes_per_edge
        self.num_core = num_core
        self.taper = taper
        self.num_edge = (num_nodes + nodes_per_edge - 1) // nodes_per_edge

        up_bw = link_bw / taper
        # uplink[e][c] and downlink[c][e] link ids
        self._up: list[list[int]] = []
        self._down: list[list[int]] = []
        for e in range(self.num_edge):
            ups = [
                self._add_link(f"edge{e}", f"core{c}", up_bw)
                for c in range(num_core)
            ]
            self._up.append(ups)
        for c in range(num_core):
            downs = [
                self._add_link(f"core{c}", f"edge{e}", up_bw)
                for e in range(self.num_edge)
            ]
            self._down.append(downs)

    def edge_of(self, node: int) -> int:
        """Edge switch a compute node attaches to."""
        return node // self.nodes_per_edge

    def _route(self, src_node: int, dst_node: int) -> Tuple[int, ...]:
        es, ed = self.edge_of(src_node), self.edge_of(dst_node)
        if es == ed:
            # same leaf switch: stays inside the edge switch crossbar
            return ()
        core = (src_node * 7919 + dst_node) % self.num_core
        return (self._up[es][core], self._down[core][ed])
