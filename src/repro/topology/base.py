"""Topology interface shared by all interconnect models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import networkx as nx

__all__ = ["Link", "Topology"]


@dataclass(frozen=True)
class Link:
    """One unidirectional inter-switch link.

    ``capacity`` is in bytes/s.  ``hops`` is always 1; the name fields are
    for debugging and for the networkx export used in validation tests.
    """

    lid: int
    src: str
    dst: str
    capacity: float


class Topology(ABC):
    """A routed interconnect connecting ``num_nodes`` compute nodes.

    Subclasses populate ``self.links`` at construction time and implement
    :meth:`_route`.  Routes are memoised -- routing is on the per-message
    hot path of the simulator.
    """

    def __init__(self, num_nodes: int, link_bw: float):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if link_bw <= 0:
            raise ValueError("link_bw must be positive")
        self.num_nodes = num_nodes
        self.link_bw = link_bw
        self.links: list[Link] = []
        self._route_cached = lru_cache(maxsize=None)(self._route)

    # -- construction helpers -------------------------------------------------

    def _add_link(self, src: str, dst: str, capacity: float) -> int:
        lid = len(self.links)
        self.links.append(Link(lid=lid, src=src, dst=dst, capacity=capacity))
        return lid

    # -- public API ------------------------------------------------------------

    def route(self, src_node: int, dst_node: int) -> Tuple[int, ...]:
        """Link ids crossed by a message from ``src_node`` to ``dst_node``.

        Empty tuple for ``src == dst`` or when the topology has no internal
        links on the path (NIC-to-NIC contention is modelled separately by
        the transport layer).
        """
        if not (0 <= src_node < self.num_nodes and 0 <= dst_node < self.num_nodes):
            raise IndexError(
                f"node out of range: {src_node}->{dst_node} with "
                f"{self.num_nodes} nodes"
            )
        if src_node == dst_node:
            return ()
        return self._route_cached(src_node, dst_node)

    @abstractmethod
    def _route(self, src_node: int, dst_node: int) -> Tuple[int, ...]:
        """Compute the (uncached) route; src != dst guaranteed."""

    def hop_count(self, src_node: int, dst_node: int) -> int:
        """Number of inter-switch hops (0 for same node / direct)."""
        return len(self.route(src_node, dst_node))

    # -- validation support ------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Export the switch-level link graph for validation tests."""
        g = nx.DiGraph()
        for link in self.links:
            g.add_edge(link.src, link.dst, lid=link.lid, capacity=link.capacity)
        return g

    def validate_route(self, src_node: int, dst_node: int) -> bool:
        """Check the route is a connected walk in the link graph."""
        lids = self.route(src_node, dst_node)
        for a, b in zip(lids, lids[1:]):
            if self.links[a].dst != self.links[b].src:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} nodes={self.num_nodes} "
            f"links={len(self.links)}>"
        )
