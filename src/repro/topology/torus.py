"""k-ary n-dimensional torus with dimension-order routing.

Covers the "polymorphic-torus"-style networks cited in the paper's
introduction; also the Cray Gemini generation.  One node per router.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.topology.base import Topology

__all__ = ["Torus"]


class Torus(Topology):
    def __init__(
        self,
        num_nodes: int,
        link_bw: float,
        dims: Sequence[int] | None = None,
    ):
        super().__init__(num_nodes, link_bw)
        if dims is None:
            # Default: squarest 2-D torus covering num_nodes.
            side = max(1, int(math.isqrt(num_nodes)))
            while num_nodes % side:
                side -= 1
            dims = (side, num_nodes // side)
        dims = tuple(int(d) for d in dims)
        if any(d < 1 for d in dims):
            raise ValueError("torus dimensions must be >= 1")
        if math.prod(dims) < num_nodes:
            raise ValueError(
                f"torus {dims} holds {math.prod(dims)} nodes < {num_nodes}"
            )
        self.dims = dims

        # Links: +1/-1 neighbours in each dimension (wrap-around).
        self._link_id: dict[tuple[int, int], int] = {}
        total = math.prod(dims)
        for n in range(total):
            for d in range(len(dims)):
                for step in (+1, -1):
                    m = self._neighbor(n, d, step)
                    if (n, m) not in self._link_id and n != m:
                        self._link_id[(n, m)] = self._add_link(
                            f"t{n}", f"t{m}", link_bw
                        )

    def _coords(self, n: int) -> Tuple[int, ...]:
        cs = []
        for d in self.dims:
            cs.append(n % d)
            n //= d
        return tuple(cs)

    def _index(self, coords: Sequence[int]) -> int:
        n, mult = 0, 1
        for c, d in zip(coords, self.dims):
            n += (c % d) * mult
            mult *= d
        return n

    def _neighbor(self, n: int, dim: int, step: int) -> int:
        cs = list(self._coords(n))
        cs[dim] = (cs[dim] + step) % self.dims[dim]
        return self._index(cs)

    def _route(self, src_node: int, dst_node: int) -> Tuple[int, ...]:
        path: list[int] = []
        cur = src_node
        cur_c = list(self._coords(src_node))
        dst_c = self._coords(dst_node)
        for d, k in enumerate(self.dims):
            while cur_c[d] != dst_c[d]:
                fwd = (dst_c[d] - cur_c[d]) % k
                step = +1 if fwd <= k - fwd else -1
                nxt = self._neighbor(cur, d, step)
                path.append(self._link_id[(cur, nxt)])
                cur = nxt
                cur_c[d] = (cur_c[d] + step) % k
        return tuple(path)
