"""Dragonfly interconnect (Kim et al., ISCA'08), as in Cray Aries / XC40.

Shaheen II -- the paper's primary machine -- is a Cray XC40 with an Aries
dragonfly.  The canonical dragonfly is parameterised by:

- ``p``: compute nodes per router,
- ``a``: routers per group (fully connected inside the group),
- ``h``: global links per router (groups fully connected through them).

Minimal routing crosses at most one local link in the source group, one
global link, and one local link in the destination group (l-g-l).
"""

from __future__ import annotations

from typing import Tuple

from repro.topology.base import Topology

__all__ = ["Dragonfly"]


class Dragonfly(Topology):
    def __init__(
        self,
        num_nodes: int,
        link_bw: float,
        nodes_per_router: int = 4,
        routers_per_group: int = 4,
        global_links_per_router: int = 2,
        global_bw_factor: float = 1.0,
    ):
        super().__init__(num_nodes, link_bw)
        if min(nodes_per_router, routers_per_group, global_links_per_router) < 1:
            raise ValueError("dragonfly parameters must be >= 1")
        self.p = nodes_per_router
        self.a = routers_per_group
        self.h = global_links_per_router

        routers_needed = (num_nodes + self.p - 1) // self.p
        self.num_groups = (routers_needed + self.a - 1) // self.a
        self.num_routers = self.num_groups * self.a

        # Local links: all-to-all routers within each group, both directions.
        self._local: dict[tuple[int, int], int] = {}
        for g in range(self.num_groups):
            for i in range(self.a):
                for j in range(self.a):
                    if i == j:
                        continue
                    ra, rb = g * self.a + i, g * self.a + j
                    self._local[(ra, rb)] = self._add_link(
                        f"r{ra}", f"r{rb}", link_bw
                    )

        # Global links: connect group pairs.  Each router owns ``h`` global
        # link endpoints; group pair (ga, gb) is served by a deterministic
        # router in each group.  With a*h >= num_groups-1 the canonical
        # single-link-per-pair wiring applies; smaller configs reuse links.
        self._global: dict[tuple[int, int], tuple[int, int, int]] = {}
        gbw = link_bw * global_bw_factor
        for ga in range(self.num_groups):
            for gb in range(self.num_groups):
                if ga == gb:
                    continue
                # Router in ga responsible for reaching gb (round-robin over
                # the group's a*h global endpoints).
                slot = gb if gb < ga else gb - 1
                r_src = ga * self.a + (slot // self.h) % self.a
                slot_b = ga if ga < gb else ga - 1
                r_dst = gb * self.a + (slot_b // self.h) % self.a
                lid = self._add_link(f"r{r_src}", f"r{r_dst}", gbw)
                self._global[(ga, gb)] = (lid, r_src, r_dst)

    def router_of(self, node: int) -> int:
        return node // self.p

    def group_of(self, node: int) -> int:
        return self.router_of(node) // self.a

    def _route(self, src_node: int, dst_node: int) -> Tuple[int, ...]:
        rs, rd = self.router_of(src_node), self.router_of(dst_node)
        if rs == rd:
            return ()
        gs, gd = rs // self.a, rd // self.a
        if gs == gd:
            return (self._local[(rs, rd)],)
        glid, g_src_router, g_dst_router = self._global[(gs, gd)]
        path: list[int] = []
        if rs != g_src_router:
            path.append(self._local[(rs, g_src_router)])
        path.append(glid)
        if g_dst_router != rd:
            path.append(self._local[(g_dst_router, rd)])
        return tuple(path)
