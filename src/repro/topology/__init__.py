"""Inter-node network topologies.

The paper motivates HAN's modular design with the diversity of HPC
interconnect topologies (hypercube, polymorphic-torus, fat-tree, dragonfly
-- section I-A).  This package implements those topologies as routed link
graphs; the transport layer (:mod:`repro.netsim`) turns each link into a
fluid resource so inter-switch contention emerges naturally.

All topologies implement the :class:`~repro.topology.base.Topology`
interface: a set of capacity-weighted links plus a deterministic
``route(src_node, dst_node)`` returning the link ids a message crosses.
"""

from repro.topology.base import Link, Topology
from repro.topology.crossbar import Crossbar
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus

__all__ = ["Crossbar", "Dragonfly", "FatTree", "Hypercube", "Link", "Topology", "make_topology"]

_REGISTRY = {
    "crossbar": Crossbar,
    "dragonfly": Dragonfly,
    "fattree": FatTree,
    "hypercube": Hypercube,
    "torus": Torus,
}


def make_topology(kind: str, num_nodes: int, link_bw: float, **params) -> Topology:
    """Instantiate a topology by name.

    Parameters
    ----------
    kind:
        One of ``crossbar``, ``dragonfly``, ``fattree``, ``hypercube``,
        ``torus``.
    num_nodes:
        Number of compute nodes the topology must connect.
    link_bw:
        Base bandwidth (bytes/s) of one inter-switch link.
    params:
        Topology-specific knobs (e.g. ``taper`` for fat-tree,
        ``routers_per_group`` for dragonfly, ``dims`` for torus).
    """
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology {kind!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(num_nodes=num_nodes, link_bw=link_bw, **params)
