"""IMB-style collective benchmark.

One simulated job per (library, machine): every message size is timed
inside the same run, separated by barriers, exactly like IMB's
``-msglog`` sweeps.  The reported number per size is the maximum time
across ranks -- "the maximum value reported by Intel MPI Benchmark (IMB)
and OSU Benchmark" (paper III-A2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comparators.base import MPILibrary
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime

__all__ = ["IMBResult", "imb_run"]


@dataclass(frozen=True)
class IMBResult:
    library: str
    machine: str
    coll: str
    sizes: tuple[float, ...]
    times: tuple[float, ...]  # max across ranks, per size

    def time_at(self, size: float) -> float:
        return self.times[self.sizes.index(size)]

    def speedup_over(self, other: "IMBResult") -> dict[float, float]:
        """other.time / my.time per size (>1 means this library wins)."""
        return {
            s: other.time_at(s) / t for s, t in zip(self.sizes, self.times)
        }


def imb_run(
    machine: MachineSpec,
    library: MPILibrary,
    coll: str,
    sizes,
    root: int = 0,
    iterations: int = 1,
    trace_out: str = "",
) -> IMBResult:
    """Time ``library``'s ``coll`` at every size in ``sizes``.

    ``trace_out`` writes a Perfetto-loadable Chrome trace of the whole
    sweep (one track per rank / CPU / resource) to the given path.
    """
    runtime = MPIRuntime(machine, profile=library.profile)
    per_size: dict[float, dict[int, float]] = {s: {} for s in sizes}

    def prog(comm):
        for s in sizes:
            yield from comm.barrier()
            t0 = comm.now
            for _ in range(iterations):
                if coll == "bcast":
                    yield from library.bcast(comm, s, root=root)
                elif coll == "allreduce":
                    yield from library.allreduce(comm, s)
                elif coll == "barrier":
                    yield from library.barrier(comm)
                elif coll in ("reduce", "gather", "allgather", "alltoall",
                              "scatter"):
                    op = getattr(library, coll, None)
                    if op is None:
                        raise ValueError(
                            f"{library.name} does not implement {coll!r}"
                        )
                    if coll in ("reduce", "gather", "scatter"):
                        yield from op(comm, s, root=root)
                    else:
                        yield from op(comm, s)
                else:
                    raise ValueError(f"imb_run does not know {coll!r}")
            per_size[s][comm.rank] = (comm.now - t0) / iterations

    if trace_out:
        from repro.obs import ObsRecorder, write_chrome_trace

        with ObsRecorder(runtime.engine) as rec:
            runtime.run(prog)
            rec.snapshot_resources(runtime.fabric.solver)
        record = rec.run_record(
            meta={"bench": "imb", "library": library.name, "coll": coll}
        )
        write_chrome_trace(record, trace_out)
    else:
        runtime.run(prog)
    times = tuple(max(per_size[s].values()) for s in sizes)
    return IMBResult(
        library=library.name,
        machine=machine.name,
        coll=coll,
        sizes=tuple(float(s) for s in sizes),
        times=times,
    )
