"""Measurement harnesses mirroring the paper's tools.

- :mod:`repro.bench.imb` -- IMB-style collective timing [33]: loop over
  message sizes, report the max-across-ranks time per size (the paper's
  cost definition, section III-A2).
- :mod:`repro.bench.netpipe` -- Netpipe-style point-to-point sweep [38]
  used for Fig 11.
"""

from repro.bench.imb import imb_run, IMBResult
from repro.bench.netpipe import netpipe_run, NetpipeResult

__all__ = ["IMBResult", "NetpipeResult", "imb_run", "netpipe_run"]
