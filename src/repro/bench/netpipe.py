"""Netpipe-style point-to-point sweep (paper Fig 11).

Ping-pong between two ranks on *different* nodes; reports one-way time
and achieved bandwidth per message size.  Run once per library profile
on the same machine to reproduce the Open MPI vs Cray MPI comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime
from repro.netsim.profiles import P2PProfile

__all__ = ["NetpipeResult", "netpipe_run"]


@dataclass(frozen=True)
class NetpipeResult:
    profile: str
    machine: str
    sizes: tuple[float, ...]
    oneway: tuple[float, ...]  # seconds
    bandwidth: tuple[float, ...]  # bytes/s

    def bandwidth_at(self, size: float) -> float:
        return self.bandwidth[self.sizes.index(float(size))]


def netpipe_run(
    machine: MachineSpec,
    profile: P2PProfile,
    sizes,
    pingpongs: int = 4,
    trace_out: str = "",
) -> NetpipeResult:
    """Ping-pong rank 0 <-> first rank of node 1.

    ``trace_out`` writes a Perfetto-loadable Chrome trace of the whole
    sweep (one track per rank / CPU / resource) to the given path.
    """
    if machine.num_nodes < 2:
        raise ValueError("netpipe needs at least two nodes")
    runtime = MPIRuntime(machine, profile=profile)
    peer = machine.ppn  # first rank of node 1
    oneway: dict[float, float] = {}

    def prog(comm):
        if comm.rank not in (0, peer):
            return
        for s in sizes:
            # one warm-up exchange, then timed ping-pongs
            for _ in range(1):
                yield from _pingpong(comm, peer, s)
            t0 = comm.now
            for _ in range(pingpongs):
                yield from _pingpong(comm, peer, s)
            if comm.rank == 0:
                oneway[s] = (comm.now - t0) / (2 * pingpongs)

    def _pingpong(comm, peer_rank, s):
        if comm.rank == 0:
            yield from comm.send(peer_rank, nbytes=s, tag=1)
            yield from comm.recv(source=peer_rank, tag=2)
        else:
            yield from comm.recv(source=0, tag=1)
            yield from comm.send(0, nbytes=s, tag=2)

    if trace_out:
        from repro.obs import ObsRecorder, write_chrome_trace

        with ObsRecorder(runtime.engine) as rec:
            runtime.run(prog)
            rec.snapshot_resources(runtime.fabric.solver)
        record = rec.run_record(
            meta={"bench": "netpipe", "profile": profile.name}
        )
        write_chrome_trace(record, trace_out)
    else:
        runtime.run(prog)
    sizes_t = tuple(float(s) for s in sizes)
    one = tuple(oneway[s] for s in sizes)
    bw = tuple(float(s) / t for s, t in zip(sizes_t, one))
    return NetpipeResult(
        profile=profile.name,
        machine=machine.name,
        sizes=sizes_t,
        oneway=one,
        bandwidth=bw,
    )
