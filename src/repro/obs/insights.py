"""Automated performance-insight checks (guidelines, stragglers, regressions).

The HAN paper's evaluation leans on structural relations that a correct
collective stack must satisfy regardless of the platform — the kind of
sanity conditions the MPI tuning folklore states as guidelines:

- ``allreduce <= reduce + bcast`` (allreduce can always be implemented
  as the composition, so the dedicated algorithm must not lose to it by
  more than a tolerance);
- ``bcast <= scatter + allgather`` (ditto, the van-de-Geijn identity);
- collective time is monotone non-decreasing in message size;
- HAN must not lose to its flat rivals where the paper says it wins
  (bcast at these geometries; allreduce only at scale, so that relation
  is reported informationally, never enforced).

On top of the structural checks sit two data-driven ones:

- **straggler skew** — the per-rank ``cpu.busy_seconds`` counters from
  the metrics registry give a robust ``max/median`` skew factor; a
  perturbed rank (e.g. :class:`~repro.faults.injectors.RankSlowdown`)
  shows up as a factor-level outlier while a clean symmetric collective
  sits near 1.0.  Per-rank *durations* cannot detect this: a slow rank
  in a synchronized collective inflates everyone's finish time together.
- **cross-run regression** — for every group in a
  :class:`~repro.obs.store.RunStore`, the latest run is compared against
  a MAD tolerance band of all prior runs of the same content-addressed
  point (``median + max(k*MAD, rel_floor*median)``), the same robust
  statistics :func:`~repro.tuning.measure.measure_collective` uses for
  its trial aggregation.
"""

from __future__ import annotations

import bisect
import json
import statistics
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.obs.severity import OK, Severity, grade_excess, severity

__all__ = [
    "Insight",
    "InsightEngine",
    "check_regressions",
    "format_insights",
    "guideline_insights",
    "interference_insight",
    "margin_insights",
    "quick_workload",
    "run_insights",
    "straggler_insight",
]

#: tolerance for the composition guidelines (allreduce vs reduce+bcast
#: sits at ratio ~1.00 on the reference geometry; 5% absorbs simulator
#: scheduling jitter across machine shapes without masking real breaks)
GUIDELINE_TOL = 0.05

#: a larger message may not be *faster* than a smaller one by more than this
MONOTONE_TOL = 0.02

#: HAN bcast must be within this factor of the best flat rival
MARGIN = 1.10

#: per-rank cpu busy-seconds max/median above this flags a straggler
STRAGGLER_THRESHOLD = 2.0

#: loaded/solo slowdown above this flags pathological interference: some
#: contention is the point of a multi-tenant measurement, but a tuned
#: decision whose foreground runs this much slower under the declared
#: background traffic deserves a second look (wrong tenant sizing, a
#: saturated link, or a schedule that deadlocks into serialization)
INTERFERENCE_THRESHOLD = 5.0

#: MAD multiplier / relative floor for regression bands
REGRESS_K = 5.0
REGRESS_REL_FLOOR = 0.02


@dataclass(frozen=True)
class Insight:
    """One checked performance relation.

    ``severity`` is ``"pass"`` / ``"fail"`` for enforced checks and
    ``"info"`` for relations that are reported but never gate (e.g. the
    HAN-vs-rival allreduce margin, which the paper only claims at
    scale).  ``passed`` is ``True`` for info insights so callers can
    gate on ``all(i.passed ...)``.

    ``grade`` / ``cost_seconds`` / ``cost_bytes`` are the PICO-style
    quantification (:mod:`repro.obs.severity`): how much the violated
    relation costs per occurrence and how it ranks on the shared
    ``warn``/``error`` damage scale.  Violations of *info* relations are
    quantified too — they just never gate.
    """

    name: str
    kind: str  # "guideline" | "straggler" | "margin" | "regression" | ...
    passed: bool
    severity: str  # "pass" | "fail" | "info"
    detail: str
    grade: str = "ok"  # "ok" | "warn" | "error"
    cost_seconds: float = 0.0
    cost_bytes: float = 0.0
    data: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        return {
            "name": self.name, "kind": self.kind, "passed": self.passed,
            "severity": self.severity, "detail": self.detail,
            "grade": self.grade, "cost_seconds": self.cost_seconds,
            "cost_bytes": self.cost_bytes,
            "data": dict(self.data),
        }


def _insight(name, kind, ok, detail, enforce=True, sev: Severity = OK,
             **data) -> Insight:
    severity = ("pass" if ok else "fail") if enforce else "info"
    return Insight(name=name, kind=kind, passed=ok or not enforce,
                   severity=severity, detail=detail,
                   grade="ok" if ok else sev.grade,
                   cost_seconds=0.0 if ok else sev.cost_seconds,
                   cost_bytes=0.0 if ok else sev.cost_bytes,
                   data=data)


# -- structural guidelines ----------------------------------------------------------


def guideline_insights(
    times: dict, tol: float = GUIDELINE_TOL,
    mono_tol: float = MONOTONE_TOL,
) -> list[Insight]:
    """Check the composition and monotonicity guidelines.

    ``times`` maps ``(coll, nbytes)`` to measured seconds; only the
    relations whose operands are all present are checked.
    """
    out: list[Insight] = []
    sizes = sorted({nb for _, nb in times})
    colls = sorted({c for c, _ in times})

    compositions = (
        ("allreduce", ("reduce", "bcast")),
        ("bcast", ("scatter", "allgather")),
    )
    for lhs, rhs in compositions:
        for nb in sizes:
            if (lhs, nb) not in times or any((r, nb) not in times for r in rhs):
                continue
            t = times[(lhs, nb)]
            bound = sum(times[(r, nb)] for r in rhs)
            ratio = t / bound if bound > 0 else float("inf")
            ok = ratio <= 1.0 + tol
            out.append(_insight(
                f"{lhs}<= {'+'.join(rhs)} @{_fmt_bytes(nb)}",
                "guideline", ok,
                f"{lhs}={t:.3e}s vs {'+'.join(rhs)}={bound:.3e}s "
                f"(ratio {ratio:.3f}, tol {1 + tol:.2f})",
                sev=severity(t, bound, nbytes=nb, tol=tol),
                ratio=ratio, lhs=t, rhs=bound,
            ))

    for coll in colls:
        pts = [(nb, times[(coll, nb)]) for nb in sizes if (coll, nb) in times]
        if len(pts) < 2:
            continue
        dips = [
            (na, a, nb_, b) for (na, a), (nb_, b) in zip(pts, pts[1:])
            if b < a * (1.0 - mono_tol)
        ]
        ok = not dips
        # each dip costs the smaller point's excess over the larger
        # point's (faster!) time; dips aggregate by summed cost and
        # worst relative excess
        dip_sevs = [severity(a, b, nbytes=na, tol=mono_tol)
                    for na, a, _nb, b in dips]
        sev = OK if ok else Severity(
            grade=grade_excess(max(s.rel_excess for s in dip_sevs)),
            cost_seconds=sum(s.cost_seconds for s in dip_sevs),
            cost_bytes=sum(s.cost_bytes for s in dip_sevs),
            rel_excess=max(s.rel_excess for s in dip_sevs),
        )
        out.append(_insight(
            f"{coll} monotone in nbytes", "guideline", ok,
            "non-decreasing across "
            f"{', '.join(_fmt_bytes(nb) for nb, _ in pts)}"
            + ("" if ok else f" ({len(dips)} dip(s))"),
            sev=sev,
            points=[[nb, t] for nb, t in pts],
        ))
    return out


def margin_insights(
    han_times: dict, rival_times: dict, margin: float = MARGIN,
) -> list[Insight]:
    """HAN vs the best flat rival, per collective and size.

    Enforced for ``bcast`` (the paper's headline win at every scale);
    informational for everything else — HAN allreduce only overtakes the
    flat libraries at node counts far beyond the quick workload.  The
    default rival set is just ``openmpi`` (flat ``tuned``): it shares
    HAN's software stack, so the comparison is a true same-platform
    guideline; hardware-assisted libraries (craympi, intelmpi) model a
    *different* P2P stack and would turn the check into a hardware
    comparison.
    """
    out: list[Insight] = []
    points = sorted({k for k in han_times if k in rival_times})
    for coll, nb in points:
        t = han_times[(coll, nb)]
        best_name, best = min(
            rival_times[(coll, nb)].items(), key=lambda kv: kv[1]
        )
        ratio = t / best if best > 0 else float("inf")
        ok = ratio <= margin
        out.append(_insight(
            f"han {coll} vs rivals @{_fmt_bytes(nb)}", "margin", ok,
            f"han={t:.3e}s best rival {best_name}={best:.3e}s "
            f"(ratio {ratio:.3f}, margin {margin:.2f})",
            enforce=(coll == "bcast"),
            sev=severity(t, best, nbytes=nb, tol=margin - 1.0),
            ratio=ratio, best_rival=best_name,
        ))
    return out


# -- straggler detection ------------------------------------------------------------


def _gauge(metrics_doc: dict, name: str) -> Optional[float]:
    for g in metrics_doc.get("gauges", ()):
        if g["name"] == name and not g["labels"]:
            return g["value"]
    return None


def straggler_insight(
    metrics_doc: dict, threshold: float = STRAGGLER_THRESHOLD,
    label: str = "",
) -> Insight:
    """Flag rank-level skew from a run's metrics registry document.

    The primary signal is ``straggler.cpu_skew`` (max/median of per-rank
    ``cpu.busy_seconds``), derived by the recorder at snapshot time; the
    secondary ``straggler.finish_skew`` (rank finish times) is carried in
    ``data`` for context but not gated on — synchronized collectives
    equalize finish times even under heavy per-rank perturbation.
    """
    cpu = _gauge(metrics_doc, "straggler.cpu_skew")
    finish = _gauge(metrics_doc, "straggler.finish_skew")
    suffix = f" @{label}" if label else ""
    if cpu is None:
        return Insight(
            name=f"straggler skew{suffix}", kind="straggler", passed=True,
            severity="info", detail="no per-rank cpu metrics recorded",
            data={},
        )
    ok = cpu <= threshold
    # skew is a ratio, not seconds; grade from the relative excess over
    # the threshold, with no seconds/bytes estimate (the skewed rank's
    # cpu seconds are not attributable to one collective here)
    sev = OK if ok else Severity(
        grade=grade_excess(cpu / threshold - 1.0),
        cost_seconds=0.0, cost_bytes=0.0,
        rel_excess=cpu / threshold - 1.0,
    )
    return _insight(
        f"straggler skew{suffix}", "straggler", ok,
        f"cpu busy-seconds max/median {cpu:.2f} "
        f"(threshold {threshold:.2f}"
        + (f", finish skew {finish:.2f}" if finish is not None else "")
        + ")",
        sev=sev,
        cpu_skew=cpu, finish_skew=finish, threshold=threshold,
    )


def interference_insight(
    report: dict, threshold: float = INTERFERENCE_THRESHOLD,
) -> Insight:
    """Judge one :func:`repro.tenancy.measure_interference` report.

    Two checks fold into one insight: the slowdown must be physical
    (``>= 1`` up to float fuzz — background tenants can only *add*
    contention, so a speedup means the measurement is broken) and below
    ``threshold`` (pathological interference worth investigating).
    """
    slow = float(report["slowdown"])
    label = report.get("coll", "?")
    physical = slow >= 1.0 - 1e-9
    ok = physical and slow <= threshold
    if not physical:
        detail = (
            f"{label} speeds up under load (x{slow:.3f}) — "
            "the interference measurement is broken"
        )
    else:
        detail = (
            f"{label} slows x{slow:.3f} under {report.get('traffic', 'load')} "
            f"(threshold x{threshold:.1f})"
        )
    solo = report.get("solo_time")
    loaded = report.get("loaded_time")
    if not physical:
        sev = Severity(grade="error", cost_seconds=0.0, cost_bytes=0.0,
                       rel_excess=float("inf"))
    elif ok:
        sev = OK
    else:
        # the damage is real seconds: loaded minus solo wall time
        cost = (float(loaded) - float(solo)
                if loaded is not None and solo is not None else 0.0)
        sev = Severity(grade=grade_excess(slow / threshold - 1.0),
                       cost_seconds=max(cost, 0.0), cost_bytes=0.0,
                       rel_excess=slow / threshold - 1.0)
    return _insight(
        f"interference {label}", "interference", ok, detail,
        sev=sev,
        slowdown=slow, threshold=threshold,
        solo_time=solo,
        loaded_time=loaded,
    )


# -- cross-run regression -----------------------------------------------------------


def mad_band(values: Sequence[float], k: float = REGRESS_K,
             rel_floor: float = REGRESS_REL_FLOOR) -> tuple[float, float]:
    """Robust (center, tolerance) band for a history of run times."""
    med = statistics.median(values)
    mad = (statistics.median(abs(v - med) for v in values)
           if len(values) > 1 else 0.0)
    return med, max(k * mad, rel_floor * abs(med))


def check_regressions(
    store, k: float = REGRESS_K, rel_floor: float = REGRESS_REL_FLOOR,
    min_runs: int = 2,
) -> list[Insight]:
    """Compare each group's latest run against the band of its history.

    Groups with fewer than ``min_runs`` runs are skipped (one run has no
    history to regress against).  A clean store where every point was
    simply measured twice — the CI self-vs-self check — yields all-pass:
    the deterministic simulator reproduces the time exactly, well inside
    the relative floor.

    This is the batch spelling of the incremental path: it folds the
    whole store into an :class:`InsightEngine` and reads the engine's
    regression checks, so batch sweeps and streaming followers are one
    code path (and bit-identical on the same records by construction).
    """
    engine = InsightEngine(k=k, rel_floor=rel_floor, min_runs=min_runs)
    engine.ingest_store(store)
    return engine.regressions()


# -- the incremental engine ---------------------------------------------------------


class InsightEngine:
    """Incremental insight state over a stream of run-store records.

    Feed it records one at a time (:meth:`ingest`), all at once from a
    store (:meth:`ingest_store`), or by following a store's change feed
    (:meth:`follow`, which drives :meth:`~repro.obs.store.RunStore.tail`).
    The resulting insights are a pure function of the ingested record
    *set*: per-group history is kept sorted by the store's deterministic
    ``(wall_time, canonical line)`` order and exact-duplicate records
    fold away, so ingest order never matters and the streaming path is
    bit-identical to the batch sweep over the same records.

    Unlike :func:`quick_workload` (which *measures* a fixed workload),
    the engine judges whatever the store holds: MAD-band regressions per
    group, composition/monotonicity guidelines per measurement context
    (machine, library, fault/traffic state), straggler skew from stored
    metrics gauges, and loaded-vs-quiet interference for points measured
    both ways.
    """

    def __init__(
        self,
        k: float = REGRESS_K,
        rel_floor: float = REGRESS_REL_FLOOR,
        min_runs: int = 2,
        tol: float = GUIDELINE_TOL,
        mono_tol: float = MONOTONE_TOL,
        straggler_threshold: float = STRAGGLER_THRESHOLD,
        interference_threshold: float = INTERFERENCE_THRESHOLD,
    ):
        self.k = k
        self.rel_floor = rel_floor
        self.min_runs = min_runs
        self.tol = tol
        self.mono_tol = mono_tol
        self.straggler_threshold = straggler_threshold
        self.interference_threshold = interference_threshold
        self.records = 0
        self.duplicates = 0
        #: key -> sorted [(order, time)] history
        self._hist: dict[str, list[tuple[tuple[float, str], float]]] = {}
        #: key -> {canonical line} (dedup identity)
        self._seen: dict[str, set[str]] = {}
        #: key -> (order, slim doc) of the newest record
        self._latest: dict[str, tuple[tuple[float, str], dict]] = {}
        #: (machine, library, faulted, traffic) -> {(coll, nb): (order, t)}
        self._ctx: dict[tuple, dict[tuple[str, float],
                                    tuple[tuple[float, str], float]]] = {}
        #: context -> ((cpu_skew, order), gauges-doc, label) worst straggler
        self._strag: dict[tuple, tuple] = {}
        #: (machine, library, coll, nb, config) -> (order, t) quiet latest
        self._quiet: dict[tuple, tuple[tuple[float, str], float]] = {}
        #: same point key -> {traffic_digest: (order, t)} loaded latest
        self._loaded: dict[tuple, dict[str,
                                       tuple[tuple[float, str], float]]] = {}

    # -- ingest ----------------------------------------------------------------

    @staticmethod
    def _order(doc: dict, line: str) -> tuple[float, str]:
        try:
            wt = float(doc.get("wall_time", 0.0))
        except (TypeError, ValueError):
            wt = 0.0
        return (wt, line)

    def ingest(self, doc: dict) -> bool:
        """Fold one run summary in; False for duplicates/unusable docs."""
        key = doc.get("key")
        if not key or doc.get("time") is None:
            return False
        line = json.dumps(doc, sort_keys=True)
        seen = self._seen.setdefault(key, set())
        if line in seen:
            self.duplicates += 1
            return False
        seen.add(line)
        self.records += 1
        order = self._order(doc, line)
        t = float(doc["time"])
        bisect.insort(self._hist.setdefault(key, []), (order, t))

        slim = {f: doc.get(f) for f in (
            "coll", "nbytes", "library", "machine", "band", "loaded",
            "faulted", "traffic_digest", "config_digest", "source",
        )}
        slim["time"] = t
        cur = self._latest.get(key)
        if cur is None or order > cur[0]:
            self._latest[key] = (order, slim)

        machine = str(doc.get("machine", "?"))
        library = str(doc.get("library", "?"))
        coll = str(doc.get("coll", "?"))
        nbytes = float(doc.get("nbytes", 0.0) or 0.0)
        traffic = doc.get("traffic_digest") or None
        ctx = (machine, library, bool(doc.get("faulted")), traffic)
        bucket = self._ctx.setdefault(ctx, {})
        pt = (coll, nbytes)
        old = bucket.get(pt)
        if old is None or order > old[0]:
            bucket[pt] = (order, t)

        # judge skew only on bcast: its cpu work is rank-symmetric, so
        # skew means a straggler; reduction trees concentrate work on
        # interior ranks by design and would false-positive here
        metrics = doc.get("metrics") or {}
        cpu = _gauge(metrics, "straggler.cpu_skew") \
            if coll == "bcast" else None
        if cpu is not None:
            finish = _gauge(metrics, "straggler.finish_skew")
            gauges = [{"name": "straggler.cpu_skew", "labels": [],
                       "value": cpu}]
            if finish is not None:
                gauges.append({"name": "straggler.finish_skew",
                               "labels": [], "value": finish})
            cand = ((cpu, order), {"gauges": gauges},
                    f"{coll} {_fmt_bytes(nbytes)} on {machine}")
            worst = self._strag.get(ctx)
            if worst is None or cand[0] > worst[0]:
                self._strag[ctx] = cand

        pair = (machine, library, coll, nbytes,
                str(doc.get("config_digest", "")))
        if doc.get("loaded") and traffic:
            loads = self._loaded.setdefault(pair, {})
            old = loads.get(traffic)
            if old is None or order > old[0]:
                loads[traffic] = (order, t)
        elif not doc.get("loaded"):
            old = self._quiet.get(pair)
            if old is None or order > old[0]:
                self._quiet[pair] = (order, t)
        return True

    def ingest_store(self, store) -> int:
        """Batch sweep: fold every record of a RunStore; returns count."""
        n = 0
        for _key, runs in store.groups():
            for doc in runs:
                if self.ingest(doc):
                    n += 1
        return n

    def follow(self, store, cursor: Optional[dict] = None) -> dict:
        """Ingest records appended since ``cursor``; returns the new one.

        The streaming spelling of :meth:`ingest_store`: call it after
        (or while) writers append and the engine state advances per
        record instead of per sweep.
        """
        records, cursor = store.tail(cursor)
        for doc in records:
            self.ingest(doc)
        return cursor

    # -- checks ----------------------------------------------------------------

    def regressions(self) -> list[Insight]:
        """MAD-band check of each group's newest run vs its history."""
        out: list[Insight] = []
        for key in sorted(self._hist):
            entries = self._hist[key]
            if len(entries) < self.min_runs:
                continue
            times = [t for _order, t in entries]
            prior, latest = times[:-1], times[-1]
            center, tol = mad_band(prior, k=self.k,
                                   rel_floor=self.rel_floor)
            ok = latest <= center + tol
            slim = self._latest[key][1]
            label = (f"{slim.get('coll', '?')} "
                     f"{_fmt_bytes(slim.get('nbytes') or 0)} "
                     f"[{slim.get('library', '?')}] "
                     f"on {slim.get('machine', '?')}")
            out.append(_insight(
                label, "regression", ok,
                f"latest {latest:.3e}s vs band {center:.3e}s +/- {tol:.3e}s "
                f"({len(prior)} prior run(s))",
                sev=severity(latest, center + tol,
                             nbytes=float(slim.get("nbytes") or 0.0)),
                key=key, latest=latest, center=center, tol=tol,
                runs=len(times), machine=slim.get("machine"),
                band=slim.get("band"),
            ))
        return out

    def _ctx_suffix(self, ctx: tuple) -> str:
        machine, library, faulted, traffic = ctx
        extras = ("+faults" if faulted else "") + ("+load" if traffic else "")
        return f" [{library}{' ' + extras if extras else ''} on {machine}]"

    def guidelines(self) -> list[Insight]:
        """Composition/monotonicity guidelines per measurement context."""
        out: list[Insight] = []
        for ctx in sorted(self._ctx, key=str):
            times = {pt: t for pt, (_order, t) in self._ctx[ctx].items()}
            suffix = self._ctx_suffix(ctx)
            machine, library, faulted, traffic = ctx
            for check in guideline_insights(times, tol=self.tol,
                                            mono_tol=self.mono_tol):
                out.append(replace(
                    check, name=check.name + suffix,
                    data={**check.data, "machine": machine,
                          "library": library, "faulted": faulted,
                          "traffic_digest": traffic},
                ))
        return out

    def stragglers(self) -> list[Insight]:
        """Worst recorded per-rank cpu skew per measurement context."""
        out: list[Insight] = []
        for ctx in sorted(self._strag, key=str):
            (_rank, metrics_doc, label) = self._strag[ctx]
            out.append(straggler_insight(
                metrics_doc, threshold=self.straggler_threshold,
                label=label,
            ))
        return out

    def interference(self) -> list[Insight]:
        """Loaded-vs-quiet slowdown for points measured both ways."""
        out: list[Insight] = []
        for pair in sorted(self._loaded, key=str):
            quiet = self._quiet.get(pair)
            if quiet is None or quiet[1] <= 0:
                continue
            machine, _library, coll, _nbytes, _cfg = pair
            for traffic in sorted(self._loaded[pair]):
                _order, loaded_t = self._loaded[pair][traffic]
                out.append(interference_insight({
                    "coll": f"{coll} on {machine}",
                    "slowdown": loaded_t / quiet[1],
                    "solo_time": quiet[1],
                    "loaded_time": loaded_t,
                    "traffic": f"traffic {traffic[:12]}",
                }, threshold=self.interference_threshold))
        return out

    def insights(self) -> list[Insight]:
        """Every check, in deterministic order."""
        return (self.guidelines() + self.stragglers()
                + self.interference() + self.regressions())

    def machines(self) -> list[dict]:
        """Per-machine rollup of the ingested fleet, label-sorted."""
        agg: dict[str, dict] = {}
        for key, entries in self._hist.items():
            slim = self._latest[key][1]
            label = str(slim.get("machine") or "?")
            a = agg.setdefault(label, {
                "machine": label, "groups": 0, "runs": 0,
                "bands": set(), "libraries": set(), "colls": set(),
            })
            a["groups"] += 1
            a["runs"] += len(entries)
            for field_, val in (("bands", slim.get("band")),
                                ("libraries", slim.get("library")),
                                ("colls", slim.get("coll"))):
                if val:
                    a[field_].add(str(val))
        return [
            {**agg[label],
             "bands": sorted(agg[label]["bands"]),
             "libraries": sorted(agg[label]["libraries"]),
             "colls": sorted(agg[label]["colls"])}
            for label in sorted(agg)
        ]

    def stats(self) -> dict:
        return {
            "records": self.records,
            "duplicates": self.duplicates,
            "groups": len(self._hist),
            "contexts": len(self._ctx),
            "machines": len({slim.get("machine")
                             for _o, slim in self._latest.values()}),
        }


# -- the quick workload -------------------------------------------------------------

QUICK_COLLS = ("bcast", "reduce", "allreduce", "scatter", "gather",
               "allgather")
QUICK_SIZES = (64 * 1024, 1024 * 1024, 4 * 1024 * 1024)
QUICK_RIVALS = ("openmpi",)


def quick_workload(
    machine=None,
    colls: Sequence[str] = QUICK_COLLS,
    sizes: Sequence[float] = QUICK_SIZES,
    config=None,
    rivals: Sequence[str] = QUICK_RIVALS,
    store=None,
    fault_plan=None,
) -> dict:
    """Measure the insight workload; returns times + per-point metrics.

    Each HAN point runs once with a metrics-mode recorder attached (the
    cheap path: aggregates only, no span retention), so the result
    carries both the headline time and the straggler gauges.  Rival
    libraries are timed with the IMB-style sweep; rivals that do not
    implement a collective are skipped.

    ``store`` (a :class:`~repro.obs.store.RunStore`) receives one
    summary line per HAN point — this is how repeated ``insights`` runs
    build the history that ``regress`` checks.  ``fault_plan`` wraps the
    machine in a perturbed twin (realization 0) before measuring; the
    store lines are then keyed separately from clean runs.
    """
    from repro.core.config import HanConfig
    from repro.faults.machine import FaultyMachineSpec
    from repro.obs.record import record_collective
    from repro.obs.store import summarize_record

    if machine is None:
        from repro.hardware.machines import shaheen2

        machine = shaheen2(num_nodes=4, ppn=8)
    if config is None:
        config = HanConfig(fs=512 * 1024)

    target = machine
    plan = None
    if fault_plan is not None and fault_plan.injectors:
        plan = fault_plan.resolve_seed(config.seed)
        target = FaultyMachineSpec.wrap(machine, plan.for_trial(0))

    han_times: dict = {}
    metrics: dict = {}
    for coll in colls:
        for nb in sizes:
            rec = record_collective(target, coll, nb, config=config,
                                    mode="metrics")
            han_times[(coll, nb)] = rec.meta["time"]
            metrics[(coll, nb)] = rec.metrics
            if store is not None:
                doc = summarize_record(
                    rec, machine=machine, config=config,
                    source="obs.insights",
                )
                if plan is not None:
                    from repro.obs.store import run_key

                    doc["key"] = run_key(
                        machine, coll, nb, config,
                        extra={"plan": plan},
                    )
                    doc["faulted"] = True
                store.append(doc)

    rival_times: dict = {}
    if rivals:
        from repro.bench.imb import imb_run
        from repro.comparators import library_by_name

        for name in rivals:
            lib = library_by_name(name)
            for coll in colls:
                if getattr(lib, coll, None) is None:
                    continue
                try:
                    res = imb_run(target, lib, coll, list(sizes))
                except (NotImplementedError, ValueError):
                    continue  # library lacks this collective
                for nb, t in zip(res.sizes, res.times):
                    rival_times.setdefault((coll, nb), {})[name] = t
    return {
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "config": config.describe(),
        "faulted": plan is not None,
        "han_times": han_times,
        "rival_times": rival_times,
        "metrics": metrics,
    }


def run_insights(workload: dict) -> list[Insight]:
    """All insight checks over a :func:`quick_workload` result."""
    out = guideline_insights(workload["han_times"])
    out += margin_insights(workload["han_times"], workload["rival_times"])
    # straggler check over the largest *bcast* point: bcast has no
    # reduction compute, so its per-rank cpu busy-seconds are near-equal
    # on a clean run (skew ~1.0) and a RankSlowdown shows up as exactly
    # its factor.  Rooted/reduction collectives carry structural leader
    # skew (leaders do the arithmetic) that would swamp the signal.
    metrics = workload["metrics"]
    if metrics:
        pick = max(metrics, key=lambda k: (k[0] == "bcast", k[1]))
        out.append(straggler_insight(
            metrics[pick], label=f"{pick[0]} {_fmt_bytes(pick[1])}"
        ))
    return out


# -- rendering ----------------------------------------------------------------------


def _fmt_bytes(nb: float) -> str:
    nb = float(nb)
    for unit, div in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
        if nb >= div:
            v = nb / div
            return f"{v:g}{unit}"
    return f"{nb:g}B"


def format_insights(insights: Sequence[Insight]) -> str:
    """Human-readable check table (one line per insight)."""
    if not insights:
        return "no insights (empty workload or store)"
    width = max(len(i.name) for i in insights)
    mark = {"pass": "PASS", "fail": "FAIL", "info": "info"}
    lines = [
        f"{mark[i.severity]:4s}  {i.name:{width}s}  {i.detail}"
        for i in insights
    ]
    fails = [i for i in insights if not i.passed]
    lines.append(
        f"{len(insights)} check(s): "
        f"{len(insights) - len(fails)} ok, {len(fails)} failing"
    )
    return "\n".join(lines)
