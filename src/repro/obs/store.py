"""Cross-run observatory: a sharded, content-addressed store of run records.

Every experiment in the repo used to emit a one-off JSON under
``results/`` — impossible to compare across runs.  :class:`RunStore` is
the metrics plane's persistence layer: an append-only JSON-lines store
under ``results/store/`` where every measured collective appends one
*run summary* (headline time, per-rank profile, metrics registry
document, provenance), grouped by a content-addressed key so "the same
point, measured again" lands in the same group.

Key contract — deliberately the :class:`~repro.tuning.cache.MeasurementCache`
contract (same :func:`~repro.tuning.cache.canonical` /
:func:`~repro.tuning.cache.digest` machinery, same ``HanConfig.key()``
tuning identity):

- key = SHA-256 of (machine spec, collective, nbytes, config identity,
  library, store schema version) — everything that defines *what* was
  measured, nothing about *when* or *how well* it went;
- values (the JSONL lines) carry the measured outcome plus provenance
  (``source`` experiment, wall-clock timestamp, schema version);
- appends are a single ``O_APPEND`` write of one line, so concurrent
  experiments can share a store directory without locks.

Fleet-scale layout (the :class:`~repro.serve.store.DecisionStore` shard /
segment design, applied to run history):

- **shard** — one directory per key prefix: ``<root>/<key[:2]>/``.
  Writers append to the shard's ``open.jsonl``; a dead writer's torn
  last line is skipped on read.
- **segment** — :meth:`RunStore.compact` folds every file of a shard
  into one immutable ``seg-<digest12>.jsonl``: records are
  re-canonicalized, deduped by canonical line, and sorted by
  ``(key, wall_time, line)``, so the surviving segment bytes are a pure
  function of the record *set* — any append interleaving compacts to
  byte-identical segments.  A sidecar ``seg-<digest12>.idx.json`` maps
  each key to its line offsets, so :meth:`latest` seeks straight to a
  group's newest record and :meth:`keys` never parses segment lines.
- **history order** — :meth:`runs` returns a group sorted by
  ``(wall_time, canonical line)``: a deterministic total order that is
  identical before and after compaction and in any merge order.
- **legacy files** — the pre-sharding layout (one
  ``<key[:2]>/<key>.jsonl`` per group) is read transparently and folded
  into segments by the first :meth:`compact`.
- **tail** — :meth:`tail` is a cursor-based change feed over the
  shards' open files; the incremental insight engine
  (:class:`~repro.obs.insights.InsightEngine`) follows it so insights
  update per appended record instead of per sweep.

The insight engine (:mod:`repro.obs.insights`) consumes these groups
for guideline checks and MAD-band regression detection.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.tuning.cache import digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import HanConfig
    from repro.hardware.spec import MachineSpec
    from repro.obs.core import RunRecord
    from repro.tuning.measure import CollectiveMeasurement

__all__ = [
    "STORE_SCHEMA_VERSION",
    "RunStore",
    "config_digest",
    "machine_band",
    "run_key",
    "summarize_measurement",
    "summarize_point",
    "summarize_record",
    "traffic_digest",
]

#: bump when the summary-line layout changes incompatibly
STORE_SCHEMA_VERSION = 1

#: key-prefix characters that name a shard directory
_SHARD_CHARS = 2


def config_digest(config: Optional["HanConfig"]) -> str:
    """Stable digest of a configuration's tuning identity (seed excluded)."""
    key = list(config.key()) if config is not None else None
    return digest("hanconfig", config=key)


def machine_band(machine: "MachineSpec") -> str:
    """Stable digest of the machine's hardware band (geometry erased).

    The fleet rollup (:mod:`repro.obs.fleet`) groups cross-machine
    findings by this digest: two jobs of different sizes on the same
    hardware share a band, mirroring the serving layer's
    :func:`repro.serve.store.band_digest` notion of fleet identity.
    """
    return digest(
        "runstore-band",
        schema=STORE_SCHEMA_VERSION,
        machine=machine.band(),
    )


def traffic_digest(traffic) -> str:
    """Stable digest of a resolved :class:`~repro.tenancy.TrafficPlan`.

    Identifies one background-traffic realization (tenants + seed +
    trial) so loaded measurements can be grouped, compared and served
    without shipping the whole plan around.
    """
    return digest("trafficplan", traffic=traffic)


def run_key(
    machine: "MachineSpec",
    coll: str,
    nbytes: float,
    config: Optional["HanConfig"] = None,
    library: str = "han",
    extra=None,
) -> str:
    """Content-addressed group key: *what* was measured, never when.

    ``extra`` folds additional platform identity into the key (e.g. the
    resolved fault plan) so perturbed runs never share a group — and
    hence a regression band — with clean ones.
    """
    return digest(
        "runstore",
        schema=STORE_SCHEMA_VERSION,
        machine=machine,
        coll=coll,
        nbytes=float(nbytes),
        config=list(config.key()) if config is not None else None,
        library=library,
        extra=extra,
    )


def summarize_measurement(
    machine: "MachineSpec",
    meas: "CollectiveMeasurement",
    source: str = "measure_collective",
    library: str = "han",
    metrics: Optional[dict] = None,
    plan=None,
    traffic=None,
) -> dict:
    """One store line for a :class:`CollectiveMeasurement`.

    ``plan`` is the resolved fault plan and ``traffic`` the resolved
    background :class:`~repro.tenancy.TrafficPlan` the measurement ran
    under (or ``None``); both are part of the group key, keeping noisy,
    loaded and clean runs in separate comparison groups.  ``traffic_digest``
    lets consumers (serve store, dashboards) group loaded runs by the
    exact traffic plan without re-canonicalizing it.
    """
    extra = {}
    if plan is not None:
        extra["plan"] = plan
    if traffic is not None:
        extra["traffic"] = traffic
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "key": run_key(machine, meas.coll, meas.nbytes, meas.config,
                       library=library, extra=extra or None),
        "faulted": plan is not None,
        "loaded": traffic is not None,
        "traffic_digest": traffic_digest(traffic) if traffic is not None else None,
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "band": machine_band(machine),
        "coll": meas.coll,
        "nbytes": float(meas.nbytes),
        "library": library,
        "config": meas.config.describe(),
        "config_digest": config_digest(meas.config),
        "time": meas.time,
        "per_rank": list(meas.per_rank),
        "trials": len(meas.trial_times) or 1,
        "spread": meas.spread,
        "sim_cost": meas.sim_cost,
        "metrics": dict(metrics) if metrics else {},
        "source": source,
        "wall_time": time.time(),
    }


def summarize_point(
    machine: "MachineSpec",
    coll: str,
    nbytes: float,
    time_s: float,
    config: Optional["HanConfig"] = None,
    library: str = "han",
    source: str = "bench",
    per_rank=(),
    sim_cost: float = 0.0,
) -> dict:
    """One store line for a bare (collective, size, time) data point.

    The escape hatch for benchmarks that only produce a headline number
    (e.g. the IMB-style library sweeps, where rival libraries have no
    :class:`HanConfig` at all).
    """
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "key": run_key(machine, coll, nbytes, config, library=library),
        "faulted": False,
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "band": machine_band(machine),
        "coll": coll,
        "nbytes": float(nbytes),
        "library": library,
        "config": config.describe() if config is not None else "",
        "config_digest": config_digest(config),
        "time": float(time_s),
        "per_rank": list(per_rank),
        "trials": 1,
        "spread": 0.0,
        "sim_cost": float(sim_cost),
        "metrics": {},
        "source": source,
        "wall_time": time.time(),
    }


def summarize_record(
    record: "RunRecord",
    machine: Optional["MachineSpec"] = None,
    config: Optional["HanConfig"] = None,
    source: str = "record_collective",
    library: str = "han",
) -> dict:
    """One store line for an observed run (:class:`RunRecord`).

    When ``machine`` is given the summary gets the content-addressed
    group key; without it the line is stored under a digest of the
    record's own meta (still stable, but only as comparable as the meta).
    """
    meta = record.meta
    coll = meta.get("coll", "?")
    nbytes = float(meta.get("nbytes", 0.0))
    if machine is not None:
        key = run_key(machine, coll, nbytes, config, library=library)
        machine_label = f"{machine.name} {machine.num_nodes}x{machine.ppn}"
        band = machine_band(machine)
    else:
        key = digest(
            "runstore-meta",
            schema=STORE_SCHEMA_VERSION,
            coll=coll, nbytes=nbytes,
            machine=str(meta.get("machine", "?")),
            config=str(meta.get("config", "")),
            library=library,
        )
        machine_label = str(meta.get("machine", "?"))
        band = None
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "key": key,
        "machine": machine_label,
        "band": band,
        "coll": coll,
        "nbytes": nbytes,
        "library": library,
        "config": config.describe() if config is not None
        else str(meta.get("config", "")),
        "config_digest": config_digest(config),
        "time": float(meta.get("time", record.sim_time)),
        "per_rank": list(meta.get("per_rank", ())),
        "trials": 1,
        "spread": 0.0,
        "sim_cost": record.sim_time,
        "metrics": dict(record.metrics),
        "source": source,
        "wall_time": time.time(),
    }


def _canonical(doc: dict) -> str:
    """The canonical JSONL line of a record — its dedup identity."""
    return json.dumps(doc, sort_keys=True)


def _order_key(doc: dict, line: str) -> tuple[float, str]:
    """Deterministic history order: (wall_time, canonical line).

    The tiebreak on the full canonical line makes the order total, so
    sorting is reproducible in any merge/compaction order and identical
    records collapse rather than reorder.
    """
    try:
        wt = float(doc.get("wall_time", 0.0))
    except (TypeError, ValueError):
        wt = 0.0
    return (wt, line)


def _complete_lines(path: Path, start: int = 0) -> tuple[list[str], int]:
    """Newline-terminated lines of ``path`` from byte ``start``.

    Returns ``(lines, end)`` where ``end`` is the offset just past the
    last *complete* line — a torn trailing line (dead or in-flight
    writer) is left unconsumed so a later read can pick it up whole.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(start)
            blob = fh.read()
    except OSError:
        return [], start
    if not blob:
        return [], start
    end = blob.rfind(b"\n")
    if end < 0:
        return [], start
    lines = blob[: end + 1].decode("utf-8", errors="replace").splitlines()
    return [ln for ln in lines if ln.strip()], start + end + 1


def _parse(line: str) -> Optional[dict]:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        return None  # torn line from a dead writer: skip
    return doc if isinstance(doc, dict) else None


class RunStore:
    """Sharded append-only JSON-lines store of run summaries.

    Layout: one shard directory per key prefix (``<root>/<key[:2]>/``)
    holding an ``open.jsonl`` append tail plus zero or more immutable,
    content-named ``seg-*.jsonl`` segments produced by :meth:`compact`
    (each with a ``.idx.json`` sidecar mapping keys to line offsets).
    Appends are a single ``O_APPEND`` write of one line, so concurrent
    experiment processes share a store without locks.  The pre-sharding
    per-group layout (``<key[:2]>/<key>.jsonl``) is read transparently.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.appends = 0
        #: segment-index cache; segments are immutable and content-named,
        #: so a path's index never goes stale
        self._idx_cache: dict[Path, dict] = {}

    # -- layout ----------------------------------------------------------------

    def _shard_dir(self, key: str) -> Path:
        return self.root / key[:_SHARD_CHARS]

    def _open_file(self, key: str) -> Path:
        return self._shard_dir(key) / "open.jsonl"

    def _shards(self) -> list[Path]:
        return sorted(d for d in self.root.iterdir() if d.is_dir())

    @staticmethod
    def _segments(shard: Path) -> list[Path]:
        return sorted(shard.glob("seg-*.jsonl"))

    @staticmethod
    def _mutable_files(shard: Path) -> list[Path]:
        """Files that must be parsed line by line: the open tail,
        mid-compaction ``pend-*`` snapshots, and legacy per-group files."""
        out = []
        for f in sorted(shard.glob("*.jsonl")):
            if not f.name.startswith("seg-"):
                out.append(f)
        return out

    # -- segment indexes -------------------------------------------------------

    @staticmethod
    def _idx_path(seg: Path) -> Path:
        return seg.with_suffix(".idx.json")

    @staticmethod
    def _build_index(seg: Path) -> dict:
        keys: dict[str, list[int]] = {}
        records = 0
        off = 0
        try:
            blob = seg.read_bytes()
        except OSError:
            blob = b""
        for raw in blob.splitlines(keepends=True):
            if raw.strip() and raw.endswith(b"\n"):
                doc = _parse(raw.decode("utf-8", errors="replace"))
                if doc is not None and doc.get("key"):
                    keys.setdefault(doc["key"], []).append(off)
                    records += 1
            off += len(raw)
        return {"schema": STORE_SCHEMA_VERSION, "records": records,
                "keys": keys}

    def _seg_index(self, seg: Path) -> dict:
        idx = self._idx_cache.get(seg)
        if idx is not None:
            return idx
        sidecar = self._idx_path(seg)
        try:
            idx = json.loads(sidecar.read_text())
            if not isinstance(idx.get("keys"), dict):
                raise ValueError("malformed index")
        except (OSError, ValueError, json.JSONDecodeError):
            idx = self._build_index(seg)
            self._write_atomic(sidecar, json.dumps(idx, sort_keys=True))
        self._idx_cache[seg] = idx
        return idx

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        try:
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _seg_records_at(self, seg: Path,
                        offsets) -> Iterator[tuple[dict, str]]:
        try:
            with open(seg, "rb") as fh:
                for off in offsets:
                    fh.seek(off)
                    raw = fh.readline()
                    line = raw.decode("utf-8", errors="replace").strip()
                    doc = _parse(line)
                    if doc is not None:
                        yield doc, line
        except OSError:
            return

    # -- writing ---------------------------------------------------------------

    def append(self, doc: dict) -> str:
        """Append one run summary; returns its group key."""
        key = doc.get("key")
        if not key:
            raise ValueError("run summary must carry a 'key' (see run_key)")
        doc.setdefault("schema_version", STORE_SCHEMA_VERSION)
        f = self._open_file(key)
        f.parent.mkdir(parents=True, exist_ok=True)
        data = (_canonical(doc) + "\n").encode("utf-8")
        for _ in range(16):
            fd = os.open(f, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, data)
                ino = os.fstat(fd).st_ino
            finally:
                os.close(fd)
            # A concurrent compact() may have renamed (or renamed and
            # already unlinked) the tail between our open and write, in
            # which case the line could die with the snapshot.  Re-land
            # it on the live tail; if the snapshot survives long enough
            # to be folded, the duplicate collapses by canonical-line
            # dedup.
            try:
                if os.stat(f).st_ino == ino:
                    break
            except OSError:
                pass
        self.appends += 1
        return key

    def merge_from(self, other: "RunStore") -> int:
        """Append every record of ``other``; returns records copied.

        Records already present collapse on read (dedup by canonical
        line) and fold away at the next :meth:`compact`, so merging is
        idempotent and order-independent at the record-set level.
        """
        copied = 0
        for _key, runs in other.groups():
            for doc in runs:
                self.append(dict(doc))
                copied += 1
        return copied

    # -- reading ---------------------------------------------------------------

    def _shard_mutable(self, shard: Path) -> Iterator[tuple[dict, str]]:
        for f in self._mutable_files(shard):
            lines, _end = _complete_lines(f)
            for line in lines:
                doc = _parse(line)
                if doc is not None and doc.get("key"):
                    yield doc, _canonical(doc)

    def _group_records(self, key: str) -> list[tuple[dict, str]]:
        shard = self._shard_dir(key)
        if not shard.is_dir():
            return []
        seen: dict[str, dict] = {}
        for seg in self._segments(shard):
            offs = self._seg_index(seg)["keys"].get(key, ())
            for doc, line in self._seg_records_at(seg, offs):
                seen[line] = doc
        for doc, line in self._shard_mutable(shard):
            if doc.get("key") == key:
                seen[line] = doc
        return sorted(
            ((doc, line) for line, doc in seen.items()),
            key=lambda pair: _order_key(pair[0], pair[1]),
        )

    def keys(self) -> list[str]:
        """Every group key — from segment indexes plus the open tails."""
        out: set[str] = set()
        for shard in self._shards():
            for seg in self._segments(shard):
                out.update(self._seg_index(seg)["keys"])
            for doc, _line in self._shard_mutable(shard):
                out.add(doc["key"])
        return sorted(out)

    def runs(self, key: str) -> list[dict]:
        """Every stored run for a group, in deterministic history order
        (``wall_time``, then canonical line)."""
        return [doc for doc, _line in self._group_records(key)]

    def latest(self, key: str) -> Optional[dict]:
        """Newest run of a group.

        Fast path: each segment contributes only its index-addressed
        newest record for the key; only the shard's small mutable tail
        (``open.jsonl`` and friends) is parsed in full.
        """
        shard = self._shard_dir(key)
        if not shard.is_dir():
            return None
        best: Optional[tuple[tuple[float, str], dict]] = None
        for seg in self._segments(shard):
            offs = self._seg_index(seg)["keys"].get(key)
            if not offs:
                continue
            # segment lines are sorted by (key, wall_time, line): the
            # key's last offset is its newest record in this segment
            for doc, line in self._seg_records_at(seg, offs[-1:]):
                ok = _order_key(doc, line)
                if best is None or ok > best[0]:
                    best = (ok, doc)
        for doc, line in self._shard_mutable(shard):
            if doc.get("key") != key:
                continue
            ok = _order_key(doc, line)
            if best is None or ok > best[0]:
                best = (ok, doc)
        return best[1] if best is not None else None

    def groups(self) -> Iterator[tuple[str, list[dict]]]:
        """Stream ``(key, runs)`` pairs, one shard in memory at a time."""
        for shard in self._shards():
            by_key: dict[str, dict[str, dict]] = {}
            for seg in self._segments(shard):
                idx = self._seg_index(seg)["keys"]
                for key in idx:
                    bucket = by_key.setdefault(key, {})
                    for doc, line in self._seg_records_at(seg, idx[key]):
                        bucket[line] = doc
            for doc, line in self._shard_mutable(shard):
                by_key.setdefault(doc["key"], {})[line] = doc
            for key in sorted(by_key):
                pairs = sorted(
                    ((doc, line) for line, doc in by_key[key].items()),
                    key=lambda pair: _order_key(pair[0], pair[1]),
                )
                yield key, [doc for doc, _line in pairs]

    def __len__(self) -> int:
        """Total stored runs (not groups); streams shard by shard."""
        return sum(len(runs) for _, runs in self.groups())

    # -- compaction ------------------------------------------------------------

    def compact(self, prefix: Optional[str] = None) -> dict:
        """Fold each shard's files into one immutable, deduped segment.

        Records are re-canonicalized, deduped by canonical line and
        sorted by ``(key, wall_time, line)``, so the surviving segment
        is a pure function of the record *set*: any append interleaving
        of the same records compacts to byte-identical segments, and
        re-compacting an already-compact shard is a no-op.

        Concurrent writers are safe: the open tail is atomically renamed
        to a ``pend-*`` snapshot first (writers holding a stale fd keep
        landing lines in it; writers opening by path start a fresh
        ``open.jsonl``), and after the segment is written any late lines
        in the snapshot are re-appended to the new open tail before the
        snapshot is removed.
        """
        shards_done = 0
        records = 0
        removed = 0
        for shard in self._shards():
            if prefix is not None and shard.name != prefix[:_SHARD_CHARS]:
                continue
            open_f = shard / "open.jsonl"
            if open_f.exists():
                pend = shard / f"pend-{uuid.uuid4().hex[:12]}.jsonl"
                try:
                    os.rename(open_f, pend)
                except OSError:
                    pass
            folded = [f for f in sorted(shard.glob("*.jsonl"))
                      if f.name != "open.jsonl"]
            consumed: dict[Path, int] = {}
            resolved: dict[str, dict] = {}
            for f in folded:
                lines, consumed[f] = _complete_lines(f)
                for line in lines:
                    doc = _parse(line)
                    if doc is not None and doc.get("key"):
                        resolved[_canonical(doc)] = doc
            if not resolved:
                continue
            ordered = sorted(
                resolved,
                key=lambda ln: (resolved[ln]["key"],
                                _order_key(resolved[ln], ln)),
            )
            body = "".join(ln + "\n" for ln in ordered)
            seg_digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
            seg = shard / f"seg-{seg_digest[:12]}.jsonl"
            if not seg.exists():
                self._write_atomic(seg, body)
            keys: dict[str, list[int]] = {}
            off = 0
            for ln in ordered:
                keys.setdefault(resolved[ln]["key"], []).append(off)
                off += len((ln + "\n").encode("utf-8"))
            idx = {"schema": STORE_SCHEMA_VERSION, "records": len(ordered),
                   "keys": keys}
            self._write_atomic(self._idx_path(seg),
                               json.dumps(idx, sort_keys=True))
            self._idx_cache[seg] = idx
            # late lines from in-flight writers: move them to the new
            # open tail before their snapshot disappears
            for f in folded:
                if not f.name.startswith("pend-"):
                    continue
                while True:
                    late, consumed[f] = _complete_lines(f, consumed[f])
                    for line in late:
                        doc = _parse(line)
                        if doc is not None and doc.get("key") and \
                                _canonical(doc) not in resolved:
                            self.append(doc)
                            self.appends -= 1  # a move, not a new record
                    if not late:
                        break
            for f in folded:
                if f == seg:
                    continue
                try:
                    f.unlink()
                    removed += 1
                except OSError:
                    pass
                old_idx = self._idx_path(f)
                if old_idx.exists():
                    try:
                        old_idx.unlink()
                    except OSError:
                        pass
                self._idx_cache.pop(f, None)
            shards_done += 1
            records += len(ordered)
        return {"shards": shards_done, "records": records,
                "removed_files": removed}

    # -- streaming ingest ------------------------------------------------------

    def tail(self, cursor: Optional[dict] = None,
             ) -> tuple[list[dict], dict]:
        """Change feed: records appended since ``cursor``.

        Returns ``(records, cursor)``; pass the cursor back to get only
        newer records.  The cursor is a plain JSON-serializable dict, so
        a follower can persist it across processes.  Steady state reads
        only the bytes appended to each shard's ``open.jsonl``; when a
        shard's file set changed underneath the cursor (a compaction),
        the shard is re-read and already-delivered records are filtered
        out by the cursor's high-water mark (max delivered
        ``(wall_time, line)``), so followers see no duplicates.  Records
        back-dated below the mark that land *during* a compaction window
        may be skipped — followers needing them should re-ingest from
        scratch.
        """
        state = {} if cursor is None else dict(cursor.get("shards", {}))
        batch: list[tuple[tuple[float, str], dict]] = []
        new_state: dict[str, dict] = {}
        for shard in self._shards():
            name = shard.name
            files = {f.name: f for f in sorted(shard.glob("*.jsonl"))}
            st = state.get(name)
            mark = None
            offsets: dict[str, int] = {}
            if st is not None:
                mark = tuple(st["mark"]) if st.get("mark") else None
                offsets = dict(st.get("files", {}))
            tracked = set(offsets)
            same_files = st is not None and tracked == set(files)
            if same_files:
                for fname, f in files.items():
                    try:
                        if f.stat().st_size < offsets.get(fname, 0):
                            same_files = False  # truncated/replaced
                            break
                    except OSError:
                        same_files = False
                        break
            got: list[tuple[tuple[float, str], dict]] = []
            new_offsets: dict[str, int] = {}
            if same_files:
                for fname, f in files.items():
                    start = offsets.get(fname, 0)
                    lines, end = _complete_lines(f, start)
                    new_offsets[fname] = end
                    for line in lines:
                        doc = _parse(line)
                        if doc is not None and doc.get("key"):
                            got.append((_order_key(doc, _canonical(doc)),
                                        doc))
            else:
                # first sight of this shard, or its files changed
                # underneath us (compaction): re-read and dedup by mark
                seen: dict[str, dict] = {}
                for fname, f in files.items():
                    lines, end = _complete_lines(f)
                    new_offsets[fname] = end
                    for line in lines:
                        doc = _parse(line)
                        if doc is not None and doc.get("key"):
                            seen[_canonical(doc)] = doc
                for line, doc in seen.items():
                    ok = _order_key(doc, line)
                    if mark is None or ok > mark:
                        got.append((ok, doc))
            got.sort(key=lambda pair: pair[0])
            if got:
                top = got[-1][0]
                mark = top if mark is None or top > mark else mark
            batch.extend(got)
            new_state[name] = {
                "files": new_offsets,
                "mark": list(mark) if mark is not None else None,
            }
        batch.sort(key=lambda pair: pair[0])
        return ([doc for _ok, doc in batch],
                {"schema": STORE_SCHEMA_VERSION, "shards": new_state})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunStore {self.root} groups={len(self.keys())}>"
