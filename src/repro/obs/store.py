"""Cross-run observatory: a content-addressed store of run records.

Every experiment in the repo used to emit a one-off JSON under
``results/`` — impossible to compare across runs.  :class:`RunStore` is
the metrics plane's persistence layer: an append-only JSON-lines store
under ``results/store/`` where every measured collective appends one
*run summary* (headline time, per-rank profile, metrics registry
document, provenance), grouped by a content-addressed key so "the same
point, measured again" lands in the same group.

Key contract — deliberately the :class:`~repro.tuning.cache.MeasurementCache`
contract (same :func:`~repro.tuning.cache.canonical` /
:func:`~repro.tuning.cache.digest` machinery, same ``HanConfig.key()``
tuning identity):

- key = SHA-256 of (machine spec, collective, nbytes, config identity,
  library, store schema version) — everything that defines *what* was
  measured, nothing about *when* or *how well* it went;
- values (the JSONL lines) carry the measured outcome plus provenance
  (``source`` experiment, wall-clock timestamp, schema version);
- appends are a single ``O_APPEND`` write of one line, so concurrent
  experiments can share a store directory without locks.

The insight engine (:mod:`repro.obs.insights`) consumes these groups
for guideline checks and MAD-band regression detection.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.tuning.cache import digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import HanConfig
    from repro.hardware.spec import MachineSpec
    from repro.obs.core import RunRecord
    from repro.tuning.measure import CollectiveMeasurement

__all__ = [
    "STORE_SCHEMA_VERSION",
    "RunStore",
    "config_digest",
    "run_key",
    "summarize_measurement",
    "summarize_point",
    "summarize_record",
    "traffic_digest",
]

#: bump when the summary-line layout changes incompatibly
STORE_SCHEMA_VERSION = 1


def config_digest(config: Optional["HanConfig"]) -> str:
    """Stable digest of a configuration's tuning identity (seed excluded)."""
    key = list(config.key()) if config is not None else None
    return digest("hanconfig", config=key)


def traffic_digest(traffic) -> str:
    """Stable digest of a resolved :class:`~repro.tenancy.TrafficPlan`.

    Identifies one background-traffic realization (tenants + seed +
    trial) so loaded measurements can be grouped, compared and served
    without shipping the whole plan around.
    """
    return digest("trafficplan", traffic=traffic)


def run_key(
    machine: "MachineSpec",
    coll: str,
    nbytes: float,
    config: Optional["HanConfig"] = None,
    library: str = "han",
    extra=None,
) -> str:
    """Content-addressed group key: *what* was measured, never when.

    ``extra`` folds additional platform identity into the key (e.g. the
    resolved fault plan) so perturbed runs never share a group — and
    hence a regression band — with clean ones.
    """
    return digest(
        "runstore",
        schema=STORE_SCHEMA_VERSION,
        machine=machine,
        coll=coll,
        nbytes=float(nbytes),
        config=list(config.key()) if config is not None else None,
        library=library,
        extra=extra,
    )


def summarize_measurement(
    machine: "MachineSpec",
    meas: "CollectiveMeasurement",
    source: str = "measure_collective",
    library: str = "han",
    metrics: Optional[dict] = None,
    plan=None,
    traffic=None,
) -> dict:
    """One store line for a :class:`CollectiveMeasurement`.

    ``plan`` is the resolved fault plan and ``traffic`` the resolved
    background :class:`~repro.tenancy.TrafficPlan` the measurement ran
    under (or ``None``); both are part of the group key, keeping noisy,
    loaded and clean runs in separate comparison groups.  ``traffic_digest``
    lets consumers (serve store, dashboards) group loaded runs by the
    exact traffic plan without re-canonicalizing it.
    """
    extra = {}
    if plan is not None:
        extra["plan"] = plan
    if traffic is not None:
        extra["traffic"] = traffic
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "key": run_key(machine, meas.coll, meas.nbytes, meas.config,
                       library=library, extra=extra or None),
        "faulted": plan is not None,
        "loaded": traffic is not None,
        "traffic_digest": traffic_digest(traffic) if traffic is not None else None,
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "coll": meas.coll,
        "nbytes": float(meas.nbytes),
        "library": library,
        "config": meas.config.describe(),
        "config_digest": config_digest(meas.config),
        "time": meas.time,
        "per_rank": list(meas.per_rank),
        "trials": len(meas.trial_times) or 1,
        "spread": meas.spread,
        "sim_cost": meas.sim_cost,
        "metrics": dict(metrics) if metrics else {},
        "source": source,
        "wall_time": time.time(),
    }


def summarize_point(
    machine: "MachineSpec",
    coll: str,
    nbytes: float,
    time_s: float,
    config: Optional["HanConfig"] = None,
    library: str = "han",
    source: str = "bench",
    per_rank=(),
    sim_cost: float = 0.0,
) -> dict:
    """One store line for a bare (collective, size, time) data point.

    The escape hatch for benchmarks that only produce a headline number
    (e.g. the IMB-style library sweeps, where rival libraries have no
    :class:`HanConfig` at all).
    """
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "key": run_key(machine, coll, nbytes, config, library=library),
        "faulted": False,
        "machine": f"{machine.name} {machine.num_nodes}x{machine.ppn}",
        "coll": coll,
        "nbytes": float(nbytes),
        "library": library,
        "config": config.describe() if config is not None else "",
        "config_digest": config_digest(config),
        "time": float(time_s),
        "per_rank": list(per_rank),
        "trials": 1,
        "spread": 0.0,
        "sim_cost": float(sim_cost),
        "metrics": {},
        "source": source,
        "wall_time": time.time(),
    }


def summarize_record(
    record: "RunRecord",
    machine: Optional["MachineSpec"] = None,
    config: Optional["HanConfig"] = None,
    source: str = "record_collective",
    library: str = "han",
) -> dict:
    """One store line for an observed run (:class:`RunRecord`).

    When ``machine`` is given the summary gets the content-addressed
    group key; without it the line is stored under a digest of the
    record's own meta (still stable, but only as comparable as the meta).
    """
    meta = record.meta
    coll = meta.get("coll", "?")
    nbytes = float(meta.get("nbytes", 0.0))
    if machine is not None:
        key = run_key(machine, coll, nbytes, config, library=library)
        machine_label = f"{machine.name} {machine.num_nodes}x{machine.ppn}"
    else:
        key = digest(
            "runstore-meta",
            schema=STORE_SCHEMA_VERSION,
            coll=coll, nbytes=nbytes,
            machine=str(meta.get("machine", "?")),
            config=str(meta.get("config", "")),
            library=library,
        )
        machine_label = str(meta.get("machine", "?"))
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "key": key,
        "machine": machine_label,
        "coll": coll,
        "nbytes": nbytes,
        "library": library,
        "config": config.describe() if config is not None
        else str(meta.get("config", "")),
        "config_digest": config_digest(config),
        "time": float(meta.get("time", record.sim_time)),
        "per_rank": list(meta.get("per_rank", ())),
        "trials": 1,
        "spread": 0.0,
        "sim_cost": record.sim_time,
        "metrics": dict(record.metrics),
        "source": source,
        "wall_time": time.time(),
    }


class RunStore:
    """Append-only JSON-lines store of run summaries, grouped by key.

    Layout: one ``<root>/<key[:2]>/<key>.jsonl`` file per group, one
    line per run, appended atomically (single ``O_APPEND`` write), so
    concurrent experiment processes can share a store.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.appends = 0

    def _file_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.jsonl"

    # -- writing ---------------------------------------------------------------

    def append(self, doc: dict) -> str:
        """Append one run summary; returns its group key."""
        key = doc.get("key")
        if not key:
            raise ValueError("run summary must carry a 'key' (see run_key)")
        doc.setdefault("schema_version", STORE_SCHEMA_VERSION)
        f = self._file_for(key)
        f.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(doc, sort_keys=True) + "\n"
        fd = os.open(f, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self.appends += 1
        return key

    # -- reading ---------------------------------------------------------------

    def keys(self) -> list[str]:
        return sorted(f.stem for f in self.root.glob("*/*.jsonl"))

    def runs(self, key: str) -> list[dict]:
        """Every stored run for a group, in append order."""
        f = self._file_for(key)
        if not f.exists():
            return []
        out = []
        with open(f) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn line from a dead writer: skip
        return out

    def latest(self, key: str) -> Optional[dict]:
        runs = self.runs(key)
        return runs[-1] if runs else None

    def groups(self) -> Iterator[tuple[str, list[dict]]]:
        for key in self.keys():
            yield key, self.runs(key)

    def __len__(self) -> int:
        """Total stored runs (not groups)."""
        return sum(len(runs) for _, runs in self.groups())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunStore {self.root} groups={len(self.keys())}>"
