"""One-call recording of an observed collective run.

:func:`record_collective` is the observability twin of
:func:`repro.tuning.measure.measure_collective`: same simulated
benchmark shape (barrier, then the collective), but it returns the full
:class:`~repro.obs.core.RunRecord` instead of a single timing number.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import MPIRuntime
from repro.netsim.profiles import P2PProfile
from repro.obs.core import ObsRecorder, RunRecord

__all__ = ["record_collective"]


def record_collective(
    machine: MachineSpec,
    coll: str,
    nbytes: float,
    config: Optional[HanConfig] = None,
    root: int = 0,
    profile: Optional[P2PProfile] = None,
    meta: Optional[dict] = None,
    limit: int = 2_000_000,
    mode: str = "full",
) -> RunRecord:
    """Run one HAN collective with a recorder attached; return the record.

    The recorded interval covers the whole simulation (including the
    warm-up barrier); the collective itself is bracketed by its ``coll``
    span, so analyses that want just the operation select on that.

    ``mode="metrics"`` keeps only the aggregate metrics registry (no
    spans/messages) — the cheap path the insight engine uses.
    """
    runtime = MPIRuntime(machine, profile=profile)
    han = HanModule(config=config)
    durations: dict[int, float] = {}

    def prog(comm):
        op = getattr(han, coll)
        yield from comm.barrier()
        start = comm.now
        if coll in ("bcast", "reduce", "gather", "scatter"):
            yield from op(comm, nbytes, root=root)
        elif coll == "barrier":
            yield from op(comm)
        else:
            yield from op(comm, nbytes)
        durations[comm.rank] = comm.now - start

    rec = ObsRecorder(runtime.engine, limit=limit, mode=mode)
    with rec:
        runtime.run(prog)
        rec.snapshot_resources(runtime.fabric.solver)
    info = {
        "coll": coll,
        "nbytes": float(nbytes),
        "machine": f"{machine.num_nodes}x{machine.ppn}",
        "root": root,
        "time": max(durations.values()) if durations else 0.0,
        # per-rank finish durations, in rank order: the straggler-skew
        # analysis (repro.obs.insights) works off these
        "per_rank": [durations[r] for r in sorted(durations)],
    }
    if config is not None:
        info["config"] = repr(config)
    info.update(meta or {})
    return rec.run_record(meta=info)
