"""repro.obs — observability for the simulated HAN stack.

- :mod:`repro.obs.core`: the :class:`ObsRecorder` (spans, counters,
  message records) that attaches to an engine as ``engine.obs``;
- :mod:`repro.obs.export`: Chrome ``trace_event`` (Perfetto) export,
  JSONL run records, resource timelines;
- :mod:`repro.obs.critpath`: critical-path extraction, phase overlap,
  run diffing;
- :mod:`repro.obs.record`: one-call observed collective runs;
- :mod:`repro.obs.cli`: ``python -m repro.obs.cli record|report|...``.
"""

from repro.obs.core import (
    CounterSample,
    MessageRecord,
    ObsRecorder,
    RunRecord,
    Span,
)
from repro.obs.critpath import (
    CriticalPath,
    CritSegment,
    critical_path,
    diff_runs,
    phase_overlap,
    phase_totals,
)
from repro.obs.export import (
    chrome_trace,
    load_jsonl,
    resource_timeline,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.record import record_collective

__all__ = [
    "CounterSample",
    "CriticalPath",
    "CritSegment",
    "MessageRecord",
    "ObsRecorder",
    "RunRecord",
    "Span",
    "chrome_trace",
    "critical_path",
    "diff_runs",
    "load_jsonl",
    "phase_overlap",
    "phase_totals",
    "record_collective",
    "resource_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
