"""repro.obs — observability for the simulated HAN stack.

- :mod:`repro.obs.core`: the :class:`ObsRecorder` (spans, counters,
  message records, metrics registry) that attaches to an engine as
  ``engine.obs``;
- :mod:`repro.obs.metrics`: the aggregate metrics plane (counters,
  gauges, fixed-bucket histograms with span-id exemplars);
- :mod:`repro.obs.store`: the cross-run observatory — a sharded,
  compactable append-only store of run summaries under
  ``results/store/`` with a ``tail()`` change feed;
- :mod:`repro.obs.insights`: automated performance-insight checks
  (guidelines, straggler skew, MAD-band regressions) and the
  incremental :class:`InsightEngine` behind them;
- :mod:`repro.obs.severity`: PICO-style severity grading (cost in
  seconds/bytes, warn/error by relative excess);
- :mod:`repro.obs.fleet`: cross-machine rollup report over one or
  several run stores;
- :mod:`repro.obs.export`: Chrome ``trace_event`` (Perfetto) export,
  JSONL run records, resource timelines;
- :mod:`repro.obs.critpath`: critical-path extraction, phase overlap,
  run diffing;
- :mod:`repro.obs.record`: one-call observed collective runs;
- :mod:`repro.obs.cli`: ``python -m repro.obs.cli record|insights|...``.
"""

from repro.obs.core import (
    CounterSample,
    MessageRecord,
    ObsRecorder,
    RunRecord,
    Span,
)
from repro.obs.critpath import (
    CriticalPath,
    CritSegment,
    critical_path,
    diff_runs,
    phase_overlap,
    phase_totals,
)
from repro.obs.export import (
    chrome_trace,
    load_jsonl,
    resource_timeline,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.fleet import fleet_report, format_fleet
from repro.obs.insights import (
    Insight,
    InsightEngine,
    check_regressions,
    format_insights,
    guideline_insights,
    interference_insight,
    quick_workload,
    run_insights,
    straggler_insight,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.record import record_collective
from repro.obs.severity import Severity, grade_excess, severity
from repro.obs.store import (
    RunStore,
    config_digest,
    machine_band,
    run_key,
    summarize_measurement,
    summarize_point,
    summarize_record,
    traffic_digest,
)

__all__ = [
    "Counter",
    "CounterSample",
    "CriticalPath",
    "CritSegment",
    "Gauge",
    "Histogram",
    "Insight",
    "InsightEngine",
    "MessageRecord",
    "MetricsRegistry",
    "ObsRecorder",
    "RunRecord",
    "RunStore",
    "Severity",
    "Span",
    "check_regressions",
    "chrome_trace",
    "config_digest",
    "critical_path",
    "diff_runs",
    "fleet_report",
    "format_fleet",
    "format_insights",
    "grade_excess",
    "guideline_insights",
    "interference_insight",
    "load_jsonl",
    "machine_band",
    "merge_registries",
    "phase_overlap",
    "phase_totals",
    "quick_workload",
    "record_collective",
    "resource_timeline",
    "run_insights",
    "run_key",
    "severity",
    "summarize_measurement",
    "summarize_point",
    "summarize_record",
    "traffic_digest",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
