"""Structured metrics: counters, gauges and fixed-bucket histograms.

The tracing plane (:mod:`repro.obs.core`) answers "what happened in
*this* run, instant by instant"; the metrics plane answers "how much, in
aggregate" — the summary a production system stores per run, diffs
across runs and alerts on.  A :class:`MetricsRegistry` lives on every
:class:`~repro.obs.core.ObsRecorder` and is fed from the *same* hook
points the tracer uses, so the disabled path still pays exactly one
``engine.obs is not None`` attribute test per hook.

Metric model (deliberately Prometheus-shaped, but in-process and
serializable):

- **Counter** — monotonically increasing total (bytes sent, jobs run);
- **Gauge** — last-written value (mean utilization, straggler skew);
- **Histogram** — fixed upper-bound buckets plus ``count``/``sum``;
  every bucket keeps one *exemplar*: the span id of the most recent
  observation that landed in it, which links an aggregate back to a
  concrete interval in the trace (`Perfetto` span / critical path).

Naming scheme (see DESIGN.md §4g): ``<subsystem>.<quantity>_<unit>``,
e.g. ``mpi.bytes_sent``, ``cpu.queue_wait_seconds``.  Labels are a
sorted tuple of ``(key, value)`` pairs; allowed label cardinality is
*bounded by the platform* (rank, resource, collective, category — never
message ids, timestamps or sizes), so a registry stays O(ranks +
resources) however long the run.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "merge_registries",
]

#: default buckets for simulated durations (seconds): 1us .. ~100s, log2-ish
TIME_BUCKETS = tuple(10.0 ** e for e in range(-6, 3))
#: default buckets for message/flow sizes (bytes): 64B .. 1GB, x8 steps
BYTE_BUCKETS = tuple(float(64 << (3 * k)) for k in range(9))

LabelItems = tuple[tuple[str, str], ...]


def _labels(labels: dict) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonic total.  ``inc`` with a negative amount is an error."""

    name: str
    labels: LabelItems = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (plus the running max, free to keep)."""

    name: str
    labels: LabelItems = ()
    value: float = 0.0
    max_value: float = float("-inf")

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.max_value:
            self.max_value = self.value


@dataclass
class Histogram:
    """Fixed-bucket histogram with span-id exemplars.

    ``bounds`` are inclusive upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the overflow.  ``counts`` has
    ``len(bounds) + 1`` entries.  ``exemplars[i]`` is the span id of the
    most recent observation that landed in bucket ``i`` (``-1`` = none),
    which is what lets an alerting layer jump from "p99 queue wait
    regressed" straight to one concrete span in the Perfetto trace.
    """

    name: str
    labels: LabelItems = ()
    bounds: tuple[float, ...] = TIME_BUCKETS
    counts: list[int] = field(default_factory=list)
    exemplars: list[int] = field(default_factory=list)
    sum: float = 0.0

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must increase: {self.bounds}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
            self.exemplars = [-1] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram {self.name}: {len(self.counts)} counts for "
                f"{len(self.bounds)} bounds"
            )

    @property
    def count(self) -> int:
        return sum(self.counts)

    def observe(self, value: float, exemplar: int = -1) -> None:
        i = bisect_left(self.bounds, value)
        self.counts[i] += 1
        if exemplar >= 0:
            self.exemplars[i] = exemplar
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile.

        Coarse by construction (bucket resolution); ``inf`` when the
        quantile falls in the overflow bucket, ``0.0`` when empty.
        """
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        acc = 0
        for i, c in enumerate(self.counts):
            acc += c
            if acc >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
            if other.exemplars[i] >= 0:
                self.exemplars[i] = other.exemplars[i]
        self.sum += other.sum


class MetricsRegistry:
    """All metrics of one run, addressable by (name, labels).

    ``counter``/``gauge``/``histogram`` get-or-create, so hook points
    stay one-liners::

        reg.counter("mpi.bytes_sent", rank=3).inc(nbytes)
        reg.histogram("cpu.queue_wait_seconds").observe(w, exemplar=sid)
    """

    def __init__(self):
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- get-or-create accessors ------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _labels(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _labels(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        key = (name, _labels(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(
                name, key[1],
                tuple(bounds) if bounds is not None else TIME_BUCKETS,
            )
        return h

    # -- iteration ---------------------------------------------------------------

    @property
    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    @property
    def gauges(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    @property
    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- serialization -----------------------------------------------------------

    def to_doc(self) -> dict:
        """JSON-safe document (inverse: :meth:`from_doc`).

        Label pairs are emitted as lists (not tuples) so the document is
        exactly what a json round-trip reproduces — run records compare
        equal whether they were just built or reloaded from disk.
        """
        return {
            "counters": [
                {"name": c.name, "labels": [list(kv) for kv in c.labels],
                 "value": c.value}
                for c in self.counters
            ],
            "gauges": [
                {
                    "name": g.name, "labels": [list(kv) for kv in g.labels],
                    "value": g.value,
                    "max": g.max_value if g.max_value > float("-inf") else None,
                }
                for g in self.gauges
            ],
            "histograms": [
                {
                    "name": h.name, "labels": [list(kv) for kv in h.labels],
                    "bounds": list(h.bounds), "counts": list(h.counts),
                    "exemplars": list(h.exemplars), "sum": h.sum,
                }
                for h in self.histograms
            ],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "MetricsRegistry":
        reg = cls()
        for c in doc.get("counters", ()):
            labels = _items_to_labels(c["labels"])
            reg._counters[(c["name"], labels)] = Counter(
                c["name"], labels, c["value"]
            )
        for g in doc.get("gauges", ()):
            labels = _items_to_labels(g["labels"])
            gauge = Gauge(g["name"], labels, g["value"])
            if g.get("max") is not None:
                gauge.max_value = g["max"]
            reg._gauges[(g["name"], labels)] = gauge
        for h in doc.get("histograms", ()):
            labels = _items_to_labels(h["labels"])
            reg._histograms[(h["name"], labels)] = Histogram(
                h["name"], labels, tuple(h["bounds"]),
                list(h["counts"]), list(h["exemplars"]), h["sum"],
            )
        return reg


def _items_to_labels(items) -> LabelItems:
    return tuple((str(k), str(v)) for k, v in items)


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold many runs' registries into one (counters add, gauges keep
    the last value and running max, histograms merge bucket-wise)."""
    out = MetricsRegistry()
    for reg in registries:
        for c in reg.counters:
            out.counter(c.name, **dict(c.labels)).inc(c.value)
        for g in reg.gauges:
            tgt = out.gauge(g.name, **dict(g.labels))
            tgt.set(g.value)
            if g.max_value > tgt.max_value:
                tgt.max_value = g.max_value
        for h in reg.histograms:
            out.histogram(h.name, h.bounds, **dict(h.labels)).merge(h)
    return out
