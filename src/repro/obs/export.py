"""Exporters: Chrome ``trace_event`` JSON, JSONL run records, timelines.

The Chrome trace format is the `trace_event` JSON understood by Perfetto
(https://ui.perfetto.dev) and the legacy ``chrome://tracing`` viewer:

- one *process* per track family (ranks / CPU progress servers / fluid
  resources), one *thread* per track, named via ``M`` metadata events;
- serial CPU busy spans become ``X`` complete events (they never overlap
  within a track by construction -- the progress server is FIFO);
- everything that may overlap on a track (collective spans, HAN phase
  spans, p2p send/recv lifetimes, fluid flows, queue-wait intervals)
  becomes legacy async ``b``/``e`` event pairs, one id per span, which
  Perfetto renders stacked;
- utilization samples become ``C`` counter events.

Simulated time is seconds; trace timestamps are microseconds.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.obs.core import CounterSample, MessageRecord, RunRecord, Span

__all__ = [
    "chrome_trace",
    "load_jsonl",
    "resource_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

_US = 1e6  # seconds -> microseconds

# track-family -> (pid, display name).  Deterministic ordering in the UI.
_FAMILIES = (
    ("rank", 1, "ranks"),
    ("cpu:", 2, "progress cpus"),
    ("res:", 3, "resources"),
)

#: process id of the synthetic "metrics" track family (aggregate
#: counters / gauges / histogram buckets rendered as counter tracks)
_METRICS_PID = 4


def _family(track: str) -> tuple[int, str]:
    for prefix, pid, label in _FAMILIES:
        if track.startswith(prefix):
            return pid, label
    return 9, "other"


def _tid_map(tracks: Iterable[str]) -> dict[str, tuple[int, int]]:
    """track -> (pid, tid), tids dense per pid in first-seen order."""
    out: dict[str, tuple[int, int]] = {}
    next_tid: dict[int, int] = {}
    for tr in tracks:
        if tr in out:
            continue
        pid, _ = _family(tr)
        tid = next_tid.get(pid, 0)
        next_tid[pid] = tid + 1
        out[tr] = (pid, tid)
    return out


def chrome_trace(record: RunRecord) -> dict:
    """Render a :class:`RunRecord` as a Chrome ``trace_event`` document."""
    tracks: list[str] = []
    for s in record.spans:
        tracks.append(s.track)
    for c in record.counters:
        tracks.append(c.track)
    tids = _tid_map(tracks)

    events: list[dict] = []
    seen_procs: set[int] = set()
    for tr, (pid, tid) in tids.items():
        if pid not in seen_procs:
            seen_procs.add(pid)
            events.append({
                "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                "args": {"name": _family(tr)[1]},
            })
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": tr},
        })

    for s in record.spans:
        pid, tid = tids[s.track]
        ts = s.t0 * _US
        if s.cat == "cpu":
            events.append({
                "ph": "X", "pid": pid, "tid": tid, "name": s.name,
                "cat": s.cat, "ts": ts, "dur": s.dur * _US,
                "args": dict(s.args),
            })
        elif s.cat == "instant":
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "name": s.name,
                "s": "t", "ts": ts, "args": dict(s.args),
            })
        else:
            ident = f"s{s.sid}"
            base = {
                "pid": pid, "tid": tid, "name": s.name, "cat": s.cat or "span",
                "id": ident, "scope": s.track,
            }
            events.append(dict(base, ph="b", ts=ts, args=dict(s.args)))
            events.append(dict(base, ph="e", ts=s.t1 * _US))

    for c in record.counters:
        pid, _tid = tids[c.track]
        events.append({
            "ph": "C", "pid": pid, "tid": 0, "name": f"{c.track}:{c.name}",
            "ts": c.t * _US, "args": {c.name: c.value},
        })

    events.extend(_metric_events(record))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(record.meta),
    }


def _metric_events(record: RunRecord) -> list[dict]:
    """Render the run's aggregate metrics as Perfetto counter tracks.

    Histograms become one counter track per metric with one series per
    bucket (``le_<bound>``), sampled once at the end of the run — the
    stacked counter rendering makes the bucket distribution visible next
    to the spans it summarizes.  Counters and gauges become single-series
    tracks the same way.
    """
    doc = record.metrics
    if not doc:
        return []
    ts = record.sim_time * _US
    events: list[dict] = [{
        "ph": "M", "pid": _METRICS_PID, "tid": 0, "name": "process_name",
        "args": {"name": "metrics"},
    }]

    def track_name(name: str, labels) -> str:
        suffix = ",".join(f"{k}={v}" for k, v in labels)
        return f"metric:{name}" + (f"{{{suffix}}}" if suffix else "")

    for c in doc.get("counters", ()):
        events.append({
            "ph": "C", "pid": _METRICS_PID, "tid": 0,
            "name": track_name(c["name"], c["labels"]),
            "ts": ts, "args": {"total": c["value"]},
        })
    for g in doc.get("gauges", ()):
        events.append({
            "ph": "C", "pid": _METRICS_PID, "tid": 0,
            "name": track_name(g["name"], g["labels"]),
            "ts": ts, "args": {"value": g["value"]},
        })
    for h in doc.get("histograms", ()):
        buckets = {}
        for bound, count in zip(h["bounds"], h["counts"]):
            buckets[f"le_{bound:g}"] = count
        buckets["le_inf"] = h["counts"][-1]
        events.append({
            "ph": "C", "pid": _METRICS_PID, "tid": 0,
            "name": track_name(h["name"], h["labels"]),
            "ts": ts, "args": buckets,
        })
    return events


def write_chrome_trace(record: RunRecord, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(record), fh)


# -- resource timeline -------------------------------------------------------------


def resource_timeline(record: RunRecord) -> list[dict]:
    """Per-resource utilization summary plus the sampled time series.

    Each entry combines the solver's exact time-integrated accounting
    (``busy_time``, ``served_bytes``, ``mean_utilization``) with the
    utilization counter samples recorded on that resource's track.
    """
    by_track: dict[str, list[tuple[float, float]]] = {}
    for c in record.counters:
        if c.name == "utilization":
            by_track.setdefault(c.track, []).append((c.t, c.value))
    out = []
    for res in record.resources:
        track = f"res:{res['name']}"
        out.append(dict(res, track=track, samples=by_track.get(track, [])))
    return out


# -- JSONL run records -------------------------------------------------------------


def write_jsonl(record: RunRecord, path: str) -> None:
    """Compact one-record-per-line serialization (streams, greps, diffs)."""
    with open(path, "w") as fh:
        fh.write(json.dumps({"kind": "meta", **record.meta}) + "\n")
        for s in record.spans:
            fh.write(json.dumps({
                "kind": "span", "sid": s.sid, "track": s.track,
                "name": s.name, "cat": s.cat, "t0": s.t0, "t1": s.t1,
                "args": s.args,
            }) + "\n")
        for m in record.messages:
            fh.write(json.dumps({
                "kind": "msg", "mid": m.mid, "src": m.src, "dst": m.dst,
                "tag": m.tag, "nbytes": m.nbytes, "t_send": m.t_send,
                "t_send_done": m.t_send_done, "t_arrive": m.t_arrive,
                "t_recv_done": m.t_recv_done, "protocol": m.protocol,
            }) + "\n")
        for c in record.counters:
            fh.write(json.dumps({
                "kind": "counter", "track": c.track, "name": c.name,
                "t": c.t, "value": c.value,
            }) + "\n")
        for r in record.resources:
            fh.write(json.dumps({"kind": "resource", **r}) + "\n")
        if record.metrics:
            fh.write(json.dumps({"kind": "metrics", "doc": record.metrics})
                     + "\n")


def load_jsonl(path: str) -> RunRecord:
    """Inverse of :func:`write_jsonl`."""
    meta: dict = {}
    spans: list[Span] = []
    messages: list[MessageRecord] = []
    counters: list[CounterSample] = []
    resources: list[dict] = []
    metrics: dict = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            kind = doc.pop("kind")
            if kind == "meta":
                meta = doc
            elif kind == "span":
                spans.append(Span(**doc))
            elif kind == "msg":
                messages.append(MessageRecord(**doc))
            elif kind == "counter":
                counters.append(CounterSample(**doc))
            elif kind == "resource":
                resources.append(doc)
            elif kind == "metrics":
                metrics = doc["doc"]
            else:  # pragma: no cover - forward compatibility
                continue
    return RunRecord(meta=meta, spans=spans, messages=messages,
                     counters=counters, resources=resources,
                     metrics=metrics)


def validate_chrome_trace(doc: dict) -> Optional[str]:
    """Cheap schema check; returns an error string or ``None`` if valid."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return "missing traceEvents"
    opened: dict = {}
    for i, ev in enumerate(doc["traceEvents"]):
        ph = ev.get("ph")
        if ph not in ("X", "M", "b", "e", "C", "i"):
            return f"event {i}: unknown ph {ph!r}"
        if "pid" not in ev or "name" not in ev:
            return f"event {i}: missing pid/name"
        if ph in ("X", "b", "e", "C", "i") and "ts" not in ev:
            return f"event {i}: missing ts"
        if ph == "X" and ev.get("dur", -1) < 0:
            return f"event {i}: X without non-negative dur"
        if ph == "b":
            opened[(ev.get("cat"), ev.get("id"))] = i
        elif ph == "e":
            if opened.pop((ev.get("cat"), ev.get("id")), None) is None:
                return f"event {i}: e without matching b"
    if opened:
        return f"{len(opened)} async span(s) never closed"
    return None
