"""Fleet rollup: one cross-machine report over any number of run stores.

A single run store answers "did *this* machine regress?"; a fleet of
machines writing stores (or one merged store carrying several
``machine_band`` digests) needs the inverse view: which *bands* of
hardware are regressing, which findings cost the most, where are the
stragglers.  :func:`fleet_report` folds every store through one
:class:`~repro.obs.insights.InsightEngine` — so the rollup is a pure
function of the union of records, independent of how they were sharded
across stores — and emits:

- per-machine and per-band regression **status**: ``"ok"``,
  ``"regressions"``, or ``"insufficient history"`` (no group has enough
  runs to regress against);
- **findings**: every non-``ok``-graded insight, ranked worst first by
  (grade, cost_seconds) so the most damaging violation leads;
- **straggler** and **interference** summaries (worst skew / slowdown
  across the fleet).

``python -m repro.obs.cli fleet <store> [<store> ...]`` renders the
report (``--json`` for the raw document) and exits 0/1/2 like the
``regress`` subcommand.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.insights import (
    REGRESS_K,
    REGRESS_REL_FLOOR,
    Insight,
    InsightEngine,
)

__all__ = [
    "STATUS_INSUFFICIENT",
    "STATUS_OK",
    "STATUS_REGRESSIONS",
    "fleet_report",
    "format_fleet",
    "status_exit_code",
]

STATUS_OK = "ok"
STATUS_REGRESSIONS = "regressions"
STATUS_INSUFFICIENT = "insufficient history"

#: process exit code per rollup status (shared with ``cli regress``)
_EXIT_CODES = {STATUS_OK: 0, STATUS_REGRESSIONS: 1, STATUS_INSUFFICIENT: 2}

_GRADE_RANK = {"ok": 0, "warn": 1, "error": 2}


def status_exit_code(status: str) -> int:
    """0 for ``ok``, 1 for ``regressions``, 2 for insufficient history."""
    return _EXIT_CODES.get(status, 1)


def _status(checked: int, failed: int) -> str:
    if checked == 0:
        return STATUS_INSUFFICIENT
    return STATUS_REGRESSIONS if failed else STATUS_OK


def _rank(insight: Insight) -> tuple:
    return (-_GRADE_RANK.get(insight.grade, 1), -insight.cost_seconds,
            insight.name)


def fleet_report(
    stores: Iterable,
    k: float = REGRESS_K,
    rel_floor: float = REGRESS_REL_FLOOR,
    min_runs: int = 2,
    engine: Optional[InsightEngine] = None,
) -> dict:
    """Roll one or several run stores into a cross-machine report.

    ``stores`` is any iterable of :class:`~repro.obs.store.RunStore`;
    pass a pre-loaded ``engine`` instead to report on records already
    ingested (the streaming path).  The report is deterministic for a
    given union of records.
    """
    stores = list(stores)
    if engine is None:
        engine = InsightEngine(k=k, rel_floor=rel_floor, min_runs=min_runs)
    for store in stores:
        engine.ingest_store(store)

    regressions = engine.regressions()
    others = (engine.guidelines() + engine.stragglers()
              + engine.interference())
    failed_regs = [i for i in regressions if not i.passed]

    # per-machine and per-band regression status
    machines = engine.machines()
    by_machine: dict[str, list[Insight]] = {}
    by_band: dict[str, list[Insight]] = {}
    for reg in regressions:
        by_machine.setdefault(str(reg.data.get("machine") or "?"),
                              []).append(reg)
        by_band.setdefault(str(reg.data.get("band") or "?"), []).append(reg)
    for m in machines:
        regs = by_machine.get(m["machine"], [])
        bad = sum(1 for r in regs if not r.passed)
        m.update(checked=len(regs), regressed=bad,
                 status=_status(len(regs), bad))
    bands = []
    for band in sorted(by_band):
        regs = by_band[band]
        bad = sum(1 for r in regs if not r.passed)
        bands.append({
            "band": band,
            "machines": sorted({str(r.data.get("machine") or "?")
                                for r in regs}),
            "checked": len(regs), "regressed": bad,
            "status": _status(len(regs), bad),
        })

    findings = sorted(
        (i for i in regressions + others if i.grade != "ok"), key=_rank
    )

    strag = [i for i in others if i.kind == "straggler"]
    inter = [i for i in others if i.kind == "interference"]
    report = {
        "schema": 1,
        "stores": [str(getattr(s, "root", s)) for s in stores],
        "status": _status(len(regressions), len(failed_regs)),
        "counts": engine.stats(),
        "machines": machines,
        "bands": bands,
        "regressions": {"checked": len(regressions),
                        "regressed": len(failed_regs)},
        "findings": [i.to_doc() for i in findings],
        "stragglers": {
            "checked": len(strag),
            "flagged": sum(1 for i in strag if not i.passed),
            "worst_cpu_skew": max(
                (i.data.get("cpu_skew", 0.0) for i in strag), default=0.0),
        },
        "interference": {
            "checked": len(inter),
            "flagged": sum(1 for i in inter
                           if not i.passed or i.grade != "ok"),
            "worst_slowdown": max(
                (i.data.get("slowdown", 0.0) for i in inter), default=0.0),
        },
    }
    report["exit_code"] = status_exit_code(report["status"])
    return report


def format_fleet(report: dict, limit: int = 20) -> str:
    """Human-readable rendering of a :func:`fleet_report` document."""
    out = []
    counts = report["counts"]
    out.append(
        f"fleet: {counts['records']} record(s) in {counts['groups']} "
        f"group(s) across {counts['machines']} machine(s) "
        f"[{len(report['stores'])} store(s)] -- status: {report['status']}"
    )
    for m in report["machines"]:
        out.append(
            f"  {m['machine']:24s} {m['runs']:5d} run(s) "
            f"{m['groups']:4d} group(s)  colls={len(m['colls'])} "
            f"libs={','.join(m['libraries']) or '-'}  {m['status']}"
        )
    if report["bands"]:
        out.append("bands:")
        for b in report["bands"]:
            out.append(
                f"  {b['band'][:16]:16s} {','.join(b['machines']):32s} "
                f"{b['regressed']}/{b['checked']} regressed  {b['status']}"
            )
    sg, it = report["stragglers"], report["interference"]
    out.append(
        f"stragglers: {sg['flagged']}/{sg['checked']} flagged "
        f"(worst cpu skew {sg['worst_cpu_skew']:.2f}); "
        f"interference: {it['flagged']}/{it['checked']} flagged "
        f"(worst slowdown {it['worst_slowdown']:.2f}x)"
    )
    findings = report["findings"]
    if not findings:
        out.append("findings: none")
    else:
        out.append(f"findings (worst first, {min(len(findings), limit)} "
                   f"of {len(findings)}):")
        for f in findings[:limit]:
            cost = f" cost={f['cost_seconds']:.3e}s" \
                if f.get("cost_seconds") else ""
            out.append(f"  [{f['grade']:5s}] {f['name']}:{cost} "
                       f"{f['detail']}")
    return "\n".join(out)
