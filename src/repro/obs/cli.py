"""Observability command line: ``python -m repro.obs.cli <cmd>``.

Subcommands:

- ``record``   -- simulate one HAN collective with the recorder attached;
  write a JSONL run record and/or a Perfetto-loadable Chrome trace.
- ``report``   -- summarize a run record (spans, messages, resources).
- ``critpath`` -- extract and print the critical path of a run record.
- ``diff``     -- compare two run records (phases, resources, path).
- ``export``   -- convert a JSONL run record to a Chrome trace.
- ``metrics``  -- print the aggregate metrics registry of a run record
  (or of a freshly simulated collective).
- ``insights`` -- run the quick insight workload: guideline checks,
  HAN-vs-rival margins, straggler skew; optionally append every point
  to a run store.
- ``regress``  -- MAD-band cross-run regression check over a run store
  (exit 0 clean, 1 regressed, 2 insufficient history).
- ``compact``  -- fold a run store's mutable shard tails into immutable
  deduplicated segments.
- ``fleet``    -- roll one or several run stores into a cross-machine
  report: per-band regression status, severity-ranked findings,
  straggler and interference summaries.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import critpath as cp
from repro.obs import export as ex
from repro.obs.record import record_collective

_SUFFIX = {"": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_nbytes(text: str) -> float:
    """``"64"``, ``"64K"``, ``"1M"``, ``"2G"`` -> bytes."""
    t = text.strip().lower().rstrip("b")
    for suf, mult in _SUFFIX.items():
        if suf and t.endswith(suf):
            return float(t[: -len(suf)]) * mult
    return float(t)


def _machine(name: str, nodes: int, ppn: int):
    from repro.hardware import machines

    try:
        factory = getattr(machines, name)
    except AttributeError:
        raise SystemExit(
            f"unknown machine {name!r}; see repro.hardware.machines"
        )
    return factory(num_nodes=nodes, ppn=ppn)


def _load(path: str):
    return ex.load_jsonl(path)


# -- subcommands -------------------------------------------------------------


def cmd_record(ns: argparse.Namespace) -> int:
    machine = _machine(ns.machine, ns.nodes, ns.ppn)
    record = record_collective(
        machine, ns.coll, parse_nbytes(ns.nbytes), root=ns.root
    )
    if ns.out:
        ex.write_jsonl(record, ns.out)
    if ns.trace_out:
        ex.write_chrome_trace(record, ns.trace_out)
    meta = record.meta
    print(
        f"{meta['coll']} {int(meta['nbytes'])}B on {meta['machine']}: "
        f"time={meta['time']:.6e}s sim_time={record.sim_time:.6e}s "
        f"spans={len(record.spans)} msgs={len(record.messages)}"
    )
    for dst, what in ((ns.out, "run record"), (ns.trace_out, "chrome trace")):
        if dst:
            print(f"wrote {what}: {dst}")
    return 0


def cmd_report(ns: argparse.Namespace) -> int:
    record = _load(getattr(ns, "in"))
    print("meta:")
    for k, v in sorted(record.meta.items()):
        print(f"  {k}: {v}")
    by_cat: dict[str, int] = {}
    for s in record.spans:
        by_cat[s.cat] = by_cat.get(s.cat, 0) + 1
    print("spans:")
    for cat in sorted(by_cat):
        print(f"  {cat:8s} {by_cat[cat]}")
    print(f"messages: {len(record.messages)}")
    phases = cp.phase_totals(record)
    if phases:
        print("phases (count / total / union seconds):")
        for name in sorted(phases):
            d = phases[name]
            print(
                f"  {name:4s} {d['count']:4d}  {d['total']:.6e}"
                f"  {d['union']:.6e}"
            )
    timeline = ex.resource_timeline(record)
    busy = [r for r in timeline if r["busy_time"] > 0]
    if busy:
        print("resources (busy seconds / mean utilization):")
        for r in sorted(busy, key=lambda r: -r["busy_time"])[: ns.top]:
            print(
                f"  {r['name']:14s} {r['busy_time']:.6e}"
                f"  {r['mean_utilization']:.3f}"
            )
    return 0


def cmd_critpath(ns: argparse.Namespace) -> int:
    record = _load(getattr(ns, "in"))
    path = cp.critical_path(record)
    att = path.attribution
    if ns.segments:
        print(f"{'t0':>13s} {'t1':>13s} {'dur':>12s} kind  what")
        for seg in path.segments:
            where = f" @ {seg.track}" if seg.track else ""
            print(
                f"{seg.t0:13.6e} {seg.t1:13.6e} {seg.dur:12.4e}"
                f" {seg.kind:4s}  {seg.label}{where}"
            )
    end = att["end"] or 1.0
    print(f"end of path: {att['end']:.6e}s (coverage {att['coverage']:.1%})")
    for kind in ("cpu", "net", "wait"):
        print(f"  {kind:4s} {att[kind]:.6e}s  ({att[kind] / end:.1%})")
    return 0


def cmd_diff(ns: argparse.Namespace) -> int:
    d = cp.diff_runs(_load(ns.a), _load(ns.b))
    if ns.json:
        print(json.dumps(d, indent=2))
        return 0

    def row(name, e):
        print(f"  {name:14s} {e['a']:.6e} -> {e['b']:.6e}  ({e['delta']:+.3e})")

    print("totals:")
    for key in ("sim_time", "messages", "spans"):
        row(key, d[key])
    if d["phases"]:
        print("phase totals:")
        for name, e in d["phases"].items():
            row(name, e)
    if d["resources"]:
        print("resource busy time:")
        for name, e in d["resources"].items():
            row(name, e)
    print("critical path:")
    for kind, e in d["critical_path"].items():
        row(kind, e)
    return 0


def cmd_export(ns: argparse.Namespace) -> int:
    record = _load(getattr(ns, "in"))
    doc = ex.chrome_trace(record)
    err = ex.validate_chrome_trace(doc)
    if err is not None:
        print(f"internal error: invalid trace: {err}", file=sys.stderr)
        return 1
    with open(ns.trace_out, "w") as fh:
        json.dump(doc, fh)
    print(
        f"wrote {ns.trace_out}: {len(doc['traceEvents'])} events "
        "(open at https://ui.perfetto.dev)"
    )
    return 0


def cmd_metrics(ns: argparse.Namespace) -> int:
    src = getattr(ns, "in")
    if src:
        doc = _load(src).metrics
        if not doc:
            print(f"{src}: no metrics recorded", file=sys.stderr)
            return 1
    else:
        machine = _machine(ns.machine, ns.nodes, ns.ppn)
        record = record_collective(
            machine, ns.coll, parse_nbytes(ns.nbytes), root=ns.root,
            mode="metrics",
        )
        doc = record.metrics
    if ns.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    def label(entry):
        suffix = ",".join(f"{k}={v}" for k, v in entry["labels"])
        return entry["name"] + (f"{{{suffix}}}" if suffix else "")

    if doc.get("counters"):
        print("counters:")
        for c in doc["counters"]:
            print(f"  {label(c):42s} {c['value']:.6g}")
    if doc.get("gauges"):
        print("gauges:")
        for g in doc["gauges"]:
            print(f"  {label(g):42s} {g['value']:.6g}")
    if doc.get("histograms"):
        from repro.obs.metrics import MetricsRegistry

        print("histograms (count / sum / ~p50 / ~p99):")
        for h in MetricsRegistry.from_doc(doc).histograms:
            print(
                f"  {label({'name': h.name, 'labels': h.labels}):42s}"
                f" {h.count:8d}  {h.sum:.6g}"
                f"  {h.quantile(0.5):.3g}  {h.quantile(0.99):.3g}"
            )
    return 0


def cmd_insights(ns: argparse.Namespace) -> int:
    from repro.obs import insights as ins

    machine = _machine(ns.machine, ns.nodes, ns.ppn)
    store = None
    if ns.store_dir:
        from repro.obs.store import RunStore

        store = RunStore(ns.store_dir)
    colls = tuple(c.strip() for c in ns.colls.split(",") if c.strip())
    sizes = tuple(parse_nbytes(s) for s in ns.sizes.split(",") if s.strip())
    rivals = () if ns.no_rivals else tuple(
        r.strip() for r in ns.rivals.split(",") if r.strip()
    )
    workload = ins.quick_workload(
        machine=machine, colls=colls, sizes=sizes, rivals=rivals,
        store=store,
    )
    checks = ins.run_insights(workload)
    if ns.json:
        print(json.dumps({
            "machine": workload["machine"],
            "config": workload["config"],
            "insights": [i.to_doc() for i in checks],
        }, indent=2))
    else:
        print(f"insight workload on {workload['machine']} "
              f"[{workload['config']}]")
        print(ins.format_insights(checks))
        if store is not None:
            print(f"appended {store.appends} run(s) to {store.root}")
    return 0 if all(i.passed for i in checks) else 1


def cmd_regress(ns: argparse.Namespace) -> int:
    from repro.obs import fleet as fl
    from repro.obs import insights as ins
    from repro.obs.store import RunStore

    store = RunStore(ns.store_dir)
    checks = ins.check_regressions(
        store, k=ns.k, rel_floor=ns.rel_floor, min_runs=ns.min_runs
    )
    failed = [i for i in checks if not i.passed]
    status = (fl.STATUS_INSUFFICIENT if not checks
              else fl.STATUS_REGRESSIONS if failed else fl.STATUS_OK)
    code = fl.status_exit_code(status)
    if ns.json:
        print(json.dumps({
            "status": status, "exit_code": code,
            "checked": len(checks), "regressed": len(failed),
            "checks": [i.to_doc() for i in checks],
        }, indent=2))
    else:
        print(f"store {store.root}: {len(store.keys())} group(s), "
              f"status: {status}")
        print(ins.format_insights(checks))
    return code


def cmd_compact(ns: argparse.Namespace) -> int:
    from repro.obs.store import RunStore

    store = RunStore(ns.store_dir)
    res = store.compact(prefix=ns.prefix or None)
    print(f"compacted {store.root}: {res['records']} record(s) in "
          f"{res['shards']} shard(s), {res['removed_files']} mutable "
          f"file(s) folded into segments")
    return 0


def cmd_fleet(ns: argparse.Namespace) -> int:
    from repro.obs import fleet as fl
    from repro.obs.store import RunStore

    report = fl.fleet_report(
        [RunStore(d) for d in ns.store_dirs],
        k=ns.k, rel_floor=ns.rel_floor, min_runs=ns.min_runs,
    )
    if ns.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(fl.format_fleet(report, limit=ns.limit))
    return report["exit_code"]


# -- argument plumbing -------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.obs.cli",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = p.add_subparsers(dest="cmd", required=True)

    rec = sub.add_parser("record", help="simulate + record one collective")
    rec.add_argument("--coll", default="bcast")
    rec.add_argument("--nbytes", default="1M",
                     help="message size (suffixes K/M/G)")
    rec.add_argument("--machine", default="small_cluster",
                     help="factory name in repro.hardware.machines")
    rec.add_argument("--nodes", type=int, default=2)
    rec.add_argument("--ppn", type=int, default=4)
    rec.add_argument("--root", type=int, default=0)
    rec.add_argument("--out", default="", help="JSONL run record path")
    rec.add_argument("--trace-out", default="", help="Chrome trace path")
    rec.set_defaults(fn=cmd_record)

    rep = sub.add_parser("report", help="summarize a run record")
    rep.add_argument("in", help="JSONL run record")
    rep.add_argument("--top", type=int, default=12,
                     help="resources to list")
    rep.set_defaults(fn=cmd_report)

    cri = sub.add_parser("critpath", help="critical path of a run record")
    cri.add_argument("in", help="JSONL run record")
    cri.add_argument("--segments", action="store_true",
                     help="print every path segment")
    cri.set_defaults(fn=cmd_critpath)

    dif = sub.add_parser("diff", help="compare two run records")
    dif.add_argument("a")
    dif.add_argument("b")
    dif.add_argument("--json", action="store_true")
    dif.set_defaults(fn=cmd_diff)

    exp = sub.add_parser("export", help="JSONL record -> Chrome trace")
    exp.add_argument("in", help="JSONL run record")
    exp.add_argument("trace_out", help="output Chrome trace path")
    exp.set_defaults(fn=cmd_export)

    met = sub.add_parser("metrics", help="print a run's metrics registry")
    met.add_argument("in", nargs="?", default="",
                     help="JSONL run record (omit to simulate fresh)")
    met.add_argument("--coll", default="bcast")
    met.add_argument("--nbytes", default="1M")
    met.add_argument("--machine", default="small_cluster")
    met.add_argument("--nodes", type=int, default=2)
    met.add_argument("--ppn", type=int, default=4)
    met.add_argument("--root", type=int, default=0)
    met.add_argument("--json", action="store_true")
    met.set_defaults(fn=cmd_metrics)

    insp = sub.add_parser(
        "insights",
        help="guideline + straggler + margin checks on a quick workload",
    )
    insp.add_argument("--machine", default="shaheen2")
    insp.add_argument("--nodes", type=int, default=4)
    insp.add_argument("--ppn", type=int, default=8)
    insp.add_argument("--colls",
                      default="bcast,reduce,allreduce,scatter,gather,"
                              "allgather")
    insp.add_argument("--sizes", default="64K,1M,4M",
                      help="comma-separated (suffixes K/M/G)")
    insp.add_argument("--rivals", default="openmpi",
                      help="comma-separated comparator library names")
    insp.add_argument("--no-rivals", action="store_true",
                      help="skip the HAN-vs-rival margin checks")
    insp.add_argument("--store-dir", default="",
                      help="append every measured point to this run store")
    insp.add_argument("--json", action="store_true")
    insp.set_defaults(fn=cmd_insights)

    reg = sub.add_parser(
        "regress", help="cross-run regression check over a run store",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  every group with history is inside its MAD band\n"
            "  1  at least one group regressed beyond its band\n"
            "  2  insufficient history (no group has >= --min-runs runs;\n"
            "     nothing was actually checked)\n"
        ),
    )
    reg.add_argument("store_dir", help="run store directory")
    reg.add_argument("--k", type=float, default=5.0,
                     help="MAD multiplier of the tolerance band")
    reg.add_argument("--rel-floor", type=float, default=0.02,
                     help="relative tolerance floor")
    reg.add_argument("--min-runs", type=int, default=2,
                     help="skip groups with fewer runs than this")
    reg.add_argument("--json", action="store_true")
    reg.set_defaults(fn=cmd_regress)

    cmp_ = sub.add_parser(
        "compact",
        help="fold a run store's mutable tails into immutable segments",
    )
    cmp_.add_argument("store_dir", help="run store directory")
    cmp_.add_argument("--prefix", default="",
                      help="compact only this shard prefix")
    cmp_.set_defaults(fn=cmd_compact)

    flt = sub.add_parser(
        "fleet",
        help="cross-machine rollup report over one or more run stores",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes (same convention as regress):\n"
            "  0  ok  1  regressions  2  insufficient history\n"
        ),
    )
    flt.add_argument("store_dirs", nargs="+", help="run store directories")
    flt.add_argument("--k", type=float, default=5.0,
                     help="MAD multiplier of the tolerance band")
    flt.add_argument("--rel-floor", type=float, default=0.02,
                     help="relative tolerance floor")
    flt.add_argument("--min-runs", type=int, default=2,
                     help="skip groups with fewer runs than this")
    flt.add_argument("--limit", type=int, default=20,
                     help="findings to print (text mode)")
    flt.add_argument("--json", action="store_true")
    flt.set_defaults(fn=cmd_fleet)
    return p


def main(argv=None) -> int:
    ns = build_parser().parse_args(argv)
    return ns.fn(ns)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
