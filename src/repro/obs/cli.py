"""Observability command line: ``python -m repro.obs.cli <cmd>``.

Subcommands:

- ``record``   -- simulate one HAN collective with the recorder attached;
  write a JSONL run record and/or a Perfetto-loadable Chrome trace.
- ``report``   -- summarize a run record (spans, messages, resources).
- ``critpath`` -- extract and print the critical path of a run record.
- ``diff``     -- compare two run records (phases, resources, path).
- ``export``   -- convert a JSONL run record to a Chrome trace.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import critpath as cp
from repro.obs import export as ex
from repro.obs.record import record_collective

_SUFFIX = {"": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_nbytes(text: str) -> float:
    """``"64"``, ``"64K"``, ``"1M"``, ``"2G"`` -> bytes."""
    t = text.strip().lower().rstrip("b")
    for suf, mult in _SUFFIX.items():
        if suf and t.endswith(suf):
            return float(t[: -len(suf)]) * mult
    return float(t)


def _machine(name: str, nodes: int, ppn: int):
    from repro.hardware import machines

    try:
        factory = getattr(machines, name)
    except AttributeError:
        raise SystemExit(
            f"unknown machine {name!r}; see repro.hardware.machines"
        )
    return factory(num_nodes=nodes, ppn=ppn)


def _load(path: str):
    return ex.load_jsonl(path)


# -- subcommands -------------------------------------------------------------


def cmd_record(ns: argparse.Namespace) -> int:
    machine = _machine(ns.machine, ns.nodes, ns.ppn)
    record = record_collective(
        machine, ns.coll, parse_nbytes(ns.nbytes), root=ns.root
    )
    if ns.out:
        ex.write_jsonl(record, ns.out)
    if ns.trace_out:
        ex.write_chrome_trace(record, ns.trace_out)
    meta = record.meta
    print(
        f"{meta['coll']} {int(meta['nbytes'])}B on {meta['machine']}: "
        f"time={meta['time']:.6e}s sim_time={record.sim_time:.6e}s "
        f"spans={len(record.spans)} msgs={len(record.messages)}"
    )
    for dst, what in ((ns.out, "run record"), (ns.trace_out, "chrome trace")):
        if dst:
            print(f"wrote {what}: {dst}")
    return 0


def cmd_report(ns: argparse.Namespace) -> int:
    record = _load(getattr(ns, "in"))
    print("meta:")
    for k, v in sorted(record.meta.items()):
        print(f"  {k}: {v}")
    by_cat: dict[str, int] = {}
    for s in record.spans:
        by_cat[s.cat] = by_cat.get(s.cat, 0) + 1
    print("spans:")
    for cat in sorted(by_cat):
        print(f"  {cat:8s} {by_cat[cat]}")
    print(f"messages: {len(record.messages)}")
    phases = cp.phase_totals(record)
    if phases:
        print("phases (count / total / union seconds):")
        for name in sorted(phases):
            d = phases[name]
            print(
                f"  {name:4s} {d['count']:4d}  {d['total']:.6e}"
                f"  {d['union']:.6e}"
            )
    timeline = ex.resource_timeline(record)
    busy = [r for r in timeline if r["busy_time"] > 0]
    if busy:
        print("resources (busy seconds / mean utilization):")
        for r in sorted(busy, key=lambda r: -r["busy_time"])[: ns.top]:
            print(
                f"  {r['name']:14s} {r['busy_time']:.6e}"
                f"  {r['mean_utilization']:.3f}"
            )
    return 0


def cmd_critpath(ns: argparse.Namespace) -> int:
    record = _load(getattr(ns, "in"))
    path = cp.critical_path(record)
    att = path.attribution
    if ns.segments:
        print(f"{'t0':>13s} {'t1':>13s} {'dur':>12s} kind  what")
        for seg in path.segments:
            where = f" @ {seg.track}" if seg.track else ""
            print(
                f"{seg.t0:13.6e} {seg.t1:13.6e} {seg.dur:12.4e}"
                f" {seg.kind:4s}  {seg.label}{where}"
            )
    end = att["end"] or 1.0
    print(f"end of path: {att['end']:.6e}s (coverage {att['coverage']:.1%})")
    for kind in ("cpu", "net", "wait"):
        print(f"  {kind:4s} {att[kind]:.6e}s  ({att[kind] / end:.1%})")
    return 0


def cmd_diff(ns: argparse.Namespace) -> int:
    d = cp.diff_runs(_load(ns.a), _load(ns.b))
    if ns.json:
        print(json.dumps(d, indent=2))
        return 0

    def row(name, e):
        print(f"  {name:14s} {e['a']:.6e} -> {e['b']:.6e}  ({e['delta']:+.3e})")

    print("totals:")
    for key in ("sim_time", "messages", "spans"):
        row(key, d[key])
    if d["phases"]:
        print("phase totals:")
        for name, e in d["phases"].items():
            row(name, e)
    if d["resources"]:
        print("resource busy time:")
        for name, e in d["resources"].items():
            row(name, e)
    print("critical path:")
    for kind, e in d["critical_path"].items():
        row(kind, e)
    return 0


def cmd_export(ns: argparse.Namespace) -> int:
    record = _load(getattr(ns, "in"))
    doc = ex.chrome_trace(record)
    err = ex.validate_chrome_trace(doc)
    if err is not None:
        print(f"internal error: invalid trace: {err}", file=sys.stderr)
        return 1
    with open(ns.trace_out, "w") as fh:
        json.dump(doc, fh)
    print(
        f"wrote {ns.trace_out}: {len(doc['traceEvents'])} events "
        "(open at https://ui.perfetto.dev)"
    )
    return 0


# -- argument plumbing -------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.obs.cli",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = p.add_subparsers(dest="cmd", required=True)

    rec = sub.add_parser("record", help="simulate + record one collective")
    rec.add_argument("--coll", default="bcast")
    rec.add_argument("--nbytes", default="1M",
                     help="message size (suffixes K/M/G)")
    rec.add_argument("--machine", default="small_cluster",
                     help="factory name in repro.hardware.machines")
    rec.add_argument("--nodes", type=int, default=2)
    rec.add_argument("--ppn", type=int, default=4)
    rec.add_argument("--root", type=int, default=0)
    rec.add_argument("--out", default="", help="JSONL run record path")
    rec.add_argument("--trace-out", default="", help="Chrome trace path")
    rec.set_defaults(fn=cmd_record)

    rep = sub.add_parser("report", help="summarize a run record")
    rep.add_argument("in", help="JSONL run record")
    rep.add_argument("--top", type=int, default=12,
                     help="resources to list")
    rep.set_defaults(fn=cmd_report)

    cri = sub.add_parser("critpath", help="critical path of a run record")
    cri.add_argument("in", help="JSONL run record")
    cri.add_argument("--segments", action="store_true",
                     help="print every path segment")
    cri.set_defaults(fn=cmd_critpath)

    dif = sub.add_parser("diff", help="compare two run records")
    dif.add_argument("a")
    dif.add_argument("b")
    dif.add_argument("--json", action="store_true")
    dif.set_defaults(fn=cmd_diff)

    exp = sub.add_parser("export", help="JSONL record -> Chrome trace")
    exp.add_argument("in", help="JSONL run record")
    exp.add_argument("trace_out", help="output Chrome trace path")
    exp.set_defaults(fn=cmd_export)
    return p


def main(argv=None) -> int:
    ns = build_parser().parse_args(argv)
    return ns.fn(ns)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
