"""Observability core: spans, counters and message records.

An :class:`ObsRecorder` attaches to a simulation :class:`~repro.sim.Engine`
(``engine.obs``); instrumented components — the fluid solver, the fabric,
the per-rank progress servers, the MPI runtime and the HAN module — emit

- **spans** (named intervals on a *track*: one track per rank, per CPU
  progress server, per fluid resource),
- **counters** (sampled values, e.g. per-resource utilization),
- **message records** (one per point-to-point message: sender, receiver,
  tag, size, and the send/arrive/complete timestamps that let the
  analysis layer reconstruct cross-rank dependencies).

Every hook point is guarded by a single ``engine.obs is not None`` check,
so a simulation without a recorder attached pays one attribute test per
hook — simulated costs are bit-identical with and without the subsystem
compiled in, and wall-clock overhead is noise-level.

The recorder's contents serialize to a :class:`RunRecord` (a plain-dict
document) which the exporters (:mod:`repro.obs.export`) turn into Chrome
``trace_event`` JSON for Perfetto, a JSONL run record, or a resource
timeline, and which the analysis layer (:mod:`repro.obs.critpath`)
consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.engine import Engine

__all__ = [
    "CounterSample",
    "MessageRecord",
    "ObsRecorder",
    "RunRecord",
    "Span",
]

#: span categories used by the built-in hook points
CAT_COLL = "coll"    # collective entry/exit (HanModule and friends)
CAT_PHASE = "phase"  # HAN task phases: ib / sb / sr / ir, with segment index
CAT_P2P = "p2p"      # MPI send / recv lifetimes
CAT_CPU = "cpu"      # progress-server busy time
CAT_FLOW = "flow"    # fluid flows, one span per resource crossed
CAT_MODULE = "module"  # non-blocking module schedules (adapt.ibcast, ...)


@dataclass
class Span:
    """One named interval on a track.  ``t1 < 0`` means still open."""

    sid: int
    track: str
    name: str
    cat: str
    t0: float
    t1: float = -1.0
    args: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.t1 < 0.0

    @property
    def dur(self) -> float:
        return max(0.0, self.t1 - self.t0)


@dataclass
class MessageRecord:
    """Timing skeleton of one point-to-point message.

    ``t_send`` is the send call, ``t_send_done`` the completion of the
    sender-side software overhead (when the wire work is handed off),
    ``t_arrive`` the instant the last byte lands at the receiver, and
    ``t_recv_done`` the completion of the receiver-side overhead (when
    the matching recv request succeeds).  ``-1`` marks "not yet".
    """

    mid: int
    src: int  # world rank
    dst: int  # world rank
    tag: int
    nbytes: float
    t_send: float
    t_send_done: float = -1.0
    t_arrive: float = -1.0
    t_recv_done: float = -1.0
    protocol: str = ""


@dataclass(frozen=True)
class CounterSample:
    track: str
    name: str
    t: float
    value: float


class ObsRecorder:
    """Span/counter/message registry bound to one engine.

    Use as a context manager (or call :meth:`attach`/:meth:`detach`)::

        rec = ObsRecorder(engine)
        with rec:
            runtime.run(prog)
        doc = rec.run_record(meta={"coll": "bcast"})

    Attaching nests: detaching restores whatever recorder (usually
    ``None``) was installed before.
    """

    def __init__(self, engine: Engine, limit: int = 2_000_000):
        self.engine = engine
        #: hard cap on stored spans+counters; hook points stop recording
        #: (and count drops) past it, so a runaway run cannot OOM
        self.limit = limit
        self.spans: list[Span] = []
        self.counters: list[CounterSample] = []
        self.messages: dict[int, MessageRecord] = {}
        self.dropped = 0
        self.resources: list[dict] = []  # filled by snapshot_resources()
        self.solver_stats: dict = {}  # fluid-solver work counters, ditto
        self._next_sid = 0
        self._next_mid = 0
        self._open: dict[int, Span] = {}
        self._last_counter: dict[tuple[str, str], float] = {}
        self._prev: Any = None
        self._attached = False

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "ObsRecorder":
        if self._attached:
            return self
        self._prev = self.engine.obs
        self.engine.obs = self
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached and self.engine.obs is self:
            self.engine.obs = self._prev
        self._attached = False

    def __enter__(self) -> "ObsRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- spans -------------------------------------------------------------

    def begin(self, track: str, name: str, cat: str = "", **args) -> int:
        """Open a span at the current simulated time; returns its id."""
        if len(self.spans) >= self.limit:
            self.dropped += 1
            return -1
        sid = self._next_sid
        self._next_sid += 1
        sp = Span(sid, track, name, cat, self.engine.now, args=args)
        self.spans.append(sp)
        self._open[sid] = sp
        return sid

    def end(self, sid: int, **args) -> None:
        """Close an open span at the current simulated time."""
        sp = self._open.pop(sid, None)
        if sp is None:
            return
        sp.t1 = self.engine.now
        if args:
            sp.args.update(args)

    def complete(
        self, track: str, name: str, t0: float, t1: float, cat: str = "", **args
    ) -> int:
        """Record an already-finished span (both endpoints known)."""
        if len(self.spans) >= self.limit:
            self.dropped += 1
            return -1
        sid = self._next_sid
        self._next_sid += 1
        self.spans.append(Span(sid, track, name, cat, t0, t1, args))
        return sid

    def instant(self, track: str, name: str, **args) -> None:
        self.complete(track, name, self.engine.now, self.engine.now, "instant",
                      **args)

    # -- counters -------------------------------------------------------------

    def counter(self, track: str, name: str, value: float) -> None:
        """Sample a counter; consecutive identical values are deduped."""
        key = (track, name)
        if self._last_counter.get(key) == value:
            return
        if len(self.counters) >= self.limit:
            self.dropped += 1
            return
        self._last_counter[key] = value
        self.counters.append(
            CounterSample(track, name, self.engine.now, float(value))
        )

    # -- messages -------------------------------------------------------------

    def msg_begin(self, src: int, dst: int, tag: int, nbytes: float,
                  protocol: str = "") -> int:
        mid = self._next_mid
        self._next_mid += 1
        self.messages[mid] = MessageRecord(
            mid, src, dst, tag, float(nbytes), self.engine.now,
            protocol=protocol,
        )
        return mid

    def msg_send_done(self, mid: int) -> None:
        m = self.messages.get(mid)
        if m is not None and m.t_send_done < 0:
            m.t_send_done = self.engine.now

    def msg_arrived(self, mid: int) -> None:
        m = self.messages.get(mid)
        if m is not None:
            m.t_arrive = self.engine.now

    def msg_recv_done(self, mid: int) -> None:
        m = self.messages.get(mid)
        if m is not None:
            m.t_recv_done = self.engine.now

    # -- export -------------------------------------------------------------

    def snapshot_resources(self, solver) -> None:
        """Capture the fluid solver's time-integrated resource accounting."""
        solver.sync_accounting()
        stats = getattr(solver, "kernel_stats", None)
        self.solver_stats = stats() if callable(stats) else {}
        horizon = self.engine.now
        self.resources = [
            {
                "rid": rid,
                "name": solver.resource_name(rid) or f"res{rid}",
                "capacity": solver.capacity(rid),
                "busy_time": solver.busy_time(rid),
                "served_bytes": solver.served_bytes(rid),
                "mean_utilization": (
                    solver.served_bytes(rid)
                    / (solver.capacity(rid) * horizon)
                    if horizon > 0 and solver.capacity(rid) > 0
                    else 0.0
                ),
            }
            for rid in range(solver.num_resources)
        ]

    def run_record(self, meta: Optional[dict] = None) -> "RunRecord":
        """Freeze the recorder into a serializable :class:`RunRecord`."""
        extra = {"solver": self.solver_stats} if self.solver_stats else {}
        return RunRecord(
            meta=dict(meta or {}, sim_time=self.engine.now,
                      dropped=self.dropped, **extra),
            spans=[s for s in self.spans if not s.open],
            messages=sorted(self.messages.values(), key=lambda m: m.mid),
            counters=list(self.counters),
            resources=list(self.resources),
        )


@dataclass
class RunRecord:
    """Everything one observed run produced, decoupled from the engine."""

    meta: dict
    spans: list[Span]
    messages: list[MessageRecord]
    counters: list[CounterSample]
    resources: list[dict]

    # -- convenience selectors ----------------------------------------------

    def spans_by_cat(self, cat: str) -> list[Span]:
        return [s for s in self.spans if s.cat == cat]

    def phase_spans(self, name: Optional[str] = None) -> list[Span]:
        return [
            s
            for s in self.spans
            if s.cat == CAT_PHASE and (name is None or s.name == name)
        ]

    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track, None)
        return list(seen)

    @property
    def sim_time(self) -> float:
        return float(self.meta.get("sim_time", 0.0))
